// Integrity ablation: recovery outcome and repair latency across seeded
// disk-fault schedules against a jobmon primary with one sync standby.
//
// Each trial drives a workload over a FaultyWalStorage that rots bytes at
// rest and latches the write path (torn appends / failed fsyncs) on a
// seeded schedule. The scrubber runs every step; a quarantine triggers
// repair-from-standby. Reported:
//   - detection: injected corruptions vs scrub detections (must be 1:1 —
//     CRC framing catches every single-byte flip)
//   - repair latency: wall-clock p50/p99 of repair_from_standby, split by
//     what triggered it (bit rot vs write-path latch)
//   - acked-write loss: updates acknowledged to the caller that the
//     post-chaos recovered store does NOT hold. Must be 0 in every trial.
#include <chrono>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_json.h"
#include "common/clock.h"
#include "common/rng.h"
#include "common/wal.h"
#include "exec/job.h"
#include "ha/replication.h"
#include "jobmon/db_manager.h"
#include "storage/faulty_storage.h"
#include "storage/health.h"
#include "storage/repair.h"
#include "storage/scrubber.h"
#include "supervision/supervisor.h"

using namespace gae;

namespace {

constexpr int kTrials = 20;
constexpr int kSteps = 300;

struct TrialResult {
  std::uint64_t injected = 0;   // corruptions + latches injected
  std::uint64_t detected = 0;   // scrub quarantines + latch surfacings
  std::uint64_t repairs = 0;
  int acked = 0;
  int lost = 0;
};

exec::TaskInfo make_task(const std::string& id, double progress) {
  exec::TaskInfo info;
  info.spec.id = id;
  info.spec.owner = "bench";
  info.spec.work_seconds = 50.0;
  info.state = exec::TaskState::kRunning;
  info.progress = progress;
  return info;
}

double wall_us(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - start)
      .count();
}

TrialResult run_trial(int seed, double rot_rate, double latch_rate,
                      std::vector<double>& rot_repair_us,
                      std::vector<double>& latch_repair_us) {
  TrialResult result;
  ManualClock clock;

  MemoryWalStorage primary_media, standby_media;
  storage::FaultyWalStorage faulty(&primary_media, {});
  ha::StandbyReplica replica("jobmon", &standby_media);
  ha::LocalShipperTransport transport(&replica);
  ha::LogShipper shipper("jobmon", {});
  shipper.add_standby(&transport);
  shipper.set_epoch(1);
  ha::ReplicatedWalStorage replicated(&faulty, &shipper);
  Wal wal(&replicated);
  storage::StoreHealth health("jobmon");
  jobmon::DBManager db(nullptr, &wal);
  db.attach_health(&health);

  storage::ScrubberOptions scrub_options;
  scrub_options.interval = 0;  // scrub whenever ticked
  storage::Scrubber scrubber(clock, scrub_options);
  scrubber.add_target({"jobmon", &faulty, &health});

  storage::RepairOptions repair;
  repair.stream = "jobmon";
  repair.storage = &faulty;
  repair.source = &transport;
  repair.health = &health;
  repair.scrubber = &scrubber;
  repair.replay = [&db]() { return db.recover(); };

  Rng chaos(static_cast<std::uint64_t>(seed) * 7919 + 17);
  std::map<std::string, std::string> acked;  // task -> encoded record
  bool pending_rot = false;   // what the next repair is attributed to
  bool pending_latch = false;

  for (int step = 0; step < kSteps; ++step) {
    // Inject at most one fault per step, and only into a healthy store, so
    // every injection maps to exactly one detection (1:1 accounting).
    const bool healthy =
        faulty.writable() && health.state() == storage::StoreState::kHealthy;
    if (healthy && chaos.bernoulli(rot_rate) && !primary_media.bytes().empty()) {
      faulty.rot_byte(static_cast<std::size_t>(chaos.uniform_int(
          0, static_cast<std::int64_t>(primary_media.bytes().size()) - 1)));
      ++result.injected;
      pending_rot = true;
    } else if (healthy && chaos.bernoulli(latch_rate)) {
      faulty.force_latch();
      ++result.injected;
      pending_latch = true;
    }

    const std::string id = "t" + std::to_string(step % 20);
    const exec::TaskInfo info = make_task(id, 0.01 * (step % 100));
    const std::uint64_t before = wal.appends();
    db.update(id, info, "site-a", from_seconds(step));
    if (wal.appends() > before) {
      jobmon::JobRecord rec;
      rec.info = info;
      rec.site = "site-a";
      rec.updated_at = from_seconds(step);
      ++result.acked;
      acked[id] = jobmon::encode_job_record(id, rec);
    }

    // Detection: the scrubber finds at-rest rot; the health surface picks
    // up a latched write path the same step it bites (a failed append may
    // already have marked it read-only — escalate to quarantine either way).
    if (!faulty.writable() &&
        health.state() != storage::StoreState::kQuarantined) {
      health.mark_read_only("storage latched");
      health.quarantine("latched media needs standby resync");
      ++result.detected;
    }
    const auto before_scrub = scrubber.stats().corruptions_found;
    clock.advance_by(from_millis(100));
    scrubber.tick();
    result.detected += scrubber.stats().corruptions_found - before_scrub;

    if (health.state() == storage::StoreState::kQuarantined) {
      const auto start = std::chrono::steady_clock::now();
      auto fixed = storage::repair_from_standby(repair);
      const double us = wall_us(start);
      if (fixed.is_ok()) {
        ++result.repairs;
        // Attribute to the dominant trigger this window (rot wins ties —
        // it is what the scrubber actually detected).
        (pending_rot ? rot_repair_us : latch_repair_us).push_back(us);
        pending_rot = pending_latch = false;
      }
    }
  }

  // Final heal + loss accounting.
  if (health.state() != storage::StoreState::kHealthy) {
    (void)storage::repair_from_standby(repair);
  }
  Wal verify_wal(&primary_media);
  jobmon::DBManager verify(nullptr, &verify_wal);
  if (!verify.recover().is_ok()) {
    result.lost = result.acked;
    return result;
  }
  for (const auto& [id, encoded] : acked) {
    auto got = verify.get(id);
    if (!got.is_ok() || jobmon::encode_job_record(id, got.value()) != encoded) {
      ++result.lost;
    }
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<double> rot_repair_us, latch_repair_us;
  TrialResult total;
  int trials_with_loss = 0;

  for (int seed = 1; seed <= kTrials; ++seed) {
    const TrialResult r =
        run_trial(seed, /*rot_rate=*/0.05, /*latch_rate=*/0.03, rot_repair_us,
                  latch_repair_us);
    total.injected += r.injected;
    total.detected += r.detected;
    total.repairs += r.repairs;
    total.acked += r.acked;
    total.lost += r.lost;
    if (r.lost > 0) ++trials_with_loss;
  }

  std::printf("abl_integrity: %d seeded fault schedules, %d steps each\n",
              kTrials, kSteps);
  std::printf("  faults injected:   %llu\n",
              static_cast<unsigned long long>(total.injected));
  std::printf("  faults detected:   %llu\n",
              static_cast<unsigned long long>(total.detected));
  std::printf("  repairs completed: %llu\n",
              static_cast<unsigned long long>(total.repairs));
  std::printf("  acked writes:      %d (lost: %d, trials with loss: %d)\n",
              total.acked, total.lost, trials_with_loss);

  const auto rot = bench::summarize("repair_after_bit_rot", rot_repair_us);
  const auto latch = bench::summarize("repair_after_latch", latch_repair_us);
  std::printf("  repair latency (bit rot): p50 %.1fus p99 %.1fus over %zu\n",
              rot.p50_us, rot.p99_us, rot.iterations);
  std::printf("  repair latency (latch):   p50 %.1fus p99 %.1fus over %zu\n",
              latch.p50_us, latch.p99_us, latch.iterations);

  const std::string json = bench::bench_json_path(argc, argv);
  if (!json.empty()) {
    std::vector<std::string> extra;
    extra.push_back("\"trials\": " + std::to_string(kTrials));
    extra.push_back("\"faults_injected\": " + std::to_string(total.injected));
    extra.push_back("\"faults_detected\": " + std::to_string(total.detected));
    extra.push_back("\"repairs\": " + std::to_string(total.repairs));
    extra.push_back("\"acked_writes\": " + std::to_string(total.acked));
    extra.push_back("\"acked_writes_lost\": " + std::to_string(total.lost));
    extra.push_back("\"trials_with_loss\": " + std::to_string(trials_with_loss));
    if (!bench::write_bench_json(json, "abl_integrity", {rot, latch}, extra)) {
      std::fprintf(stderr, "failed to write %s\n", json.c_str());
      return 1;
    }
    std::printf("  wrote %s\n", json.c_str());
  }
  return total.lost == 0 ? 0 : 1;
}
