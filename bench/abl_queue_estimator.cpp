// Ablation E5: queue-time estimator accuracy.
//
// The §6.2 algorithm predicts a task's queue wait as the summed remaining
// estimated runtimes of the work ahead of it. This bench measures predicted
// vs actual queue waits over randomized backlogs and compares the paper's
// exact formula against two refinements (equal-priority-ahead counting and
// dividing by the pool size).
#include <cmath>
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "estimators/queue_time_estimator.h"
#include "sim/load.h"

#include "common/log.h"

using namespace gae;


namespace {

struct Accuracy {
  RunningStats abs_err_pct;  // |predicted - actual| / actual * 100 (actual > 0)
  RunningStats signed_err_s;
};

Accuracy measure(estimators::QueueTimeOptions qopts, int nodes, std::uint64_t seed,
                 bool noisy_estimates) {
  Rng rng(seed);
  Accuracy acc;

  for (int round = 0; round < 30; ++round) {
    sim::Simulation sim;
    sim::Grid grid;
    auto& site = grid.add_site("s");
    for (int n = 0; n < nodes; ++n) site.add_node("n" + std::to_string(n), 1.0, nullptr);
    exec::ExecutionService exec(sim, grid, "s");
    auto db = std::make_shared<estimators::EstimateDatabase>();

    // Random backlog: runners + queued tasks with mixed priorities.
    const int backlog = 3 + static_cast<int>(rng.uniform_int(0, 12));
    for (int i = 0; i < backlog; ++i) {
      exec::TaskSpec s;
      s.id = "b" + std::to_string(i);
      s.work_seconds = rng.uniform(20, 300);
      s.priority = static_cast<int>(rng.uniform_int(0, 3));
      // The submit-time estimate the database would hold; optionally noisy.
      const double est =
          noisy_estimates ? s.work_seconds * rng.uniform(0.8, 1.25) : s.work_seconds;
      db->put(s.id, est);
      exec.submit(s);
    }
    sim.run_until(from_seconds(rng.uniform(0, 60)));  // partially drain

    exec::TaskSpec target;
    target.id = "target";
    target.work_seconds = 50;
    target.priority = 0;  // queues behind everything
    exec.submit(target);
    db->put(target.id, 50);

    estimators::QueueTimeEstimator qte(exec, db, qopts);
    auto predicted = qte.estimate("target");
    if (!predicted.is_ok()) continue;

    const SimTime asked_at = sim.now();
    sim.run();
    auto info = exec.query("target");
    if (!info.is_ok() || info.value().start_time == kSimTimeNever) continue;
    const double actual = to_seconds(info.value().start_time - asked_at);

    acc.signed_err_s.add(predicted.value().seconds - actual);
    if (actual > 1.0) {
      acc.abs_err_pct.add(std::fabs(predicted.value().seconds - actual) / actual * 100);
    }
  }
  return acc;
}

void report(const char* label, const Accuracy& acc) {
  std::printf("%-34s %10.1f %14.1f %12.1f\n", label, acc.abs_err_pct.mean(),
              acc.signed_err_s.mean(), acc.signed_err_s.stddev());
}

}  // namespace

int main() {
  set_log_level(LogLevel::kWarn);  // keep demo output clean
  std::printf("Ablation E5: queue-time estimator accuracy (30 random backlogs per "
              "row)\n\n");
  std::printf("%-34s %10s %14s %12s\n", "variant", "|err|_%", "bias_s(mean)",
              "bias_s(sd)");

  estimators::QueueTimeOptions paper;
  paper.include_equal_priority_ahead = false;
  paper.divide_by_nodes = false;

  estimators::QueueTimeOptions with_equal = paper;
  with_equal.include_equal_priority_ahead = true;

  estimators::QueueTimeOptions divided = with_equal;
  divided.divide_by_nodes = true;

  std::printf("-- 1-node pool (paper's setting), exact estimates --\n");
  report("paper formula (priority> only)", measure(paper, 1, 42, false));
  report("+ equal-priority-ahead", measure(with_equal, 1, 42, false));
  report("+ divide-by-nodes", measure(divided, 1, 42, false));

  std::printf("\n-- 4-node pool, exact estimates --\n");
  report("paper formula (priority> only)", measure(paper, 4, 43, false));
  report("+ equal-priority-ahead", measure(with_equal, 4, 43, false));
  report("+ divide-by-nodes", measure(divided, 4, 43, false));

  std::printf("\n-- 4-node pool, noisy (+-25%%) runtime estimates --\n");
  report("paper formula (priority> only)", measure(paper, 4, 44, true));
  report("+ equal-priority-ahead", measure(with_equal, 4, 44, true));
  report("+ divide-by-nodes", measure(divided, 4, 44, true));
  return 0;
}
