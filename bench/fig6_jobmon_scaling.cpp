// Figure 6 reproduction: Job Monitoring Service response time vs number of
// concurrent clients.
//
// Paper setup (§7): the JMS hosted on a (Windows-XP) JClarens server;
// several clients call service methods in parallel; the figure reports the
// average time to fulfil a request per concurrency level, and the paper
// concludes the service "scales well ... as long as they do not exceed a
// certain limit".
//
// Here the JMS runs on the C++ Clarens host over real loopback TCP with a
// fixed worker pool, and real client threads hammer jobmon.* methods. The
// expected shape: flat response time up to roughly the worker count, then a
// graceful linear-ish rise as connections queue.
#include <atomic>
#include <cstdio>
#include <numeric>
#include <thread>
#include <vector>

#include "clarens/host.h"
#include "common/clock.h"
#include "common/stats.h"
#include "estimators/estimate_db.h"
#include "jobmon/rpc_binding.h"
#include "jobmon/service.h"
#include "rpc/client.h"
#include "sim/engine.h"

#include "common/log.h"

using namespace gae;


namespace {

struct Level {
  int clients;
  double mean_ms;
  double p95_ms;
  double throughput_rps;
};

}  // namespace

int main(int argc, char** argv) {
  set_log_level(LogLevel::kWarn);  // keep demo output clean
  const int calls_per_client = argc > 1 ? std::atoi(argv[1]) : 200;

  // --- Server side: one site, a few monitored jobs, JMS on a Clarens host.
  sim::Simulation sim;
  sim::Grid grid;
  grid.add_site("site-a").add_node("a0", 1.0, nullptr);
  exec::ExecutionService exec(sim, grid, "site-a");
  auto estimates = std::make_shared<estimators::EstimateDatabase>();
  jobmon::JobMonitoringService jms(sim.clock(), nullptr, estimates);
  jms.attach_site("site-a", &exec);

  for (int i = 0; i < 10; ++i) {
    exec::TaskSpec spec;
    spec.id = "job-" + std::to_string(i);
    spec.owner = "alice";
    spec.work_seconds = 1e7;  // stays RUNNING/QUEUED for the whole benchmark
    estimates->put(spec.id, 1e7);
    exec.submit(spec);
  }
  sim.run_until(from_seconds(100));

  WallClock wall;
  clarens::HostOptions hopts;
  hopts.require_auth = false;     // fig. 6 measures service time, not auth
  hopts.rpc_workers = 8;          // the "certain limit" of the conclusion
  clarens::ClarensHost host("jm-host", wall, hopts);
  jobmon::register_jobmon_methods(host, jms);
  auto port = host.serve(0);
  if (!port.is_ok()) {
    std::fprintf(stderr, "serve failed: %s\n", port.status().to_string().c_str());
    return 1;
  }

  std::printf("Figure 6: Response times for queries to Job Monitoring Service\n");
  std::printf("(loopback TCP, %zu server workers, %d calls/client)\n\n",
              hopts.rpc_workers, calls_per_client);
  std::printf("%-10s %14s %12s %16s\n", "clients", "avg_ms/req", "p95_ms", "req/s total");

  auto run_level = [&](int clients, rpc::Protocol protocol) {
    std::vector<std::thread> threads;
    std::vector<std::vector<double>> latencies(static_cast<std::size_t>(clients));
    std::atomic<int> errors{0};

    const auto wall_start = std::chrono::steady_clock::now();
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        rpc::RpcClient client("127.0.0.1", port.value(), protocol);
        auto& lats = latencies[static_cast<std::size_t>(c)];
        lats.reserve(static_cast<std::size_t>(calls_per_client));
        for (int k = 0; k < calls_per_client; ++k) {
          const auto t0 = std::chrono::steady_clock::now();
          auto r = client.call("jobmon.info",
                               {rpc::Value("job-" + std::to_string(k % 10))});
          const auto t1 = std::chrono::steady_clock::now();
          if (!r.is_ok()) {
            errors.fetch_add(1);
            continue;
          }
          lats.push_back(
              std::chrono::duration<double, std::milli>(t1 - t0).count());
        }
      });
    }
    for (auto& t : threads) t.join();
    const double wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start)
            .count();

    std::vector<double> all;
    for (auto& v : latencies) all.insert(all.end(), v.begin(), v.end());
    if (errors.load() > 0) {
      std::fprintf(stderr, "%d request errors at %d clients\n", errors.load(), clients);
    }
    Level level;
    level.clients = clients;
    level.mean_ms = mean_of(all);
    level.p95_ms = percentile(all, 95);
    level.throughput_rps = static_cast<double>(all.size()) / wall_seconds;
    return level;
  };

  std::vector<Level> results;
  for (int clients : {1, 2, 4, 6, 8, 12, 16, 24, 32, 48}) {
    const Level level = run_level(clients, rpc::Protocol::kXmlRpc);
    results.push_back(level);
    std::printf("%-10d %14.3f %12.3f %16.0f\n", level.clients, level.mean_ms,
                level.p95_ms, level.throughput_rps);
  }

  std::printf("\n-- wire-format comparison (8 clients) --\n");
  std::printf("%-10s %14s %12s %16s\n", "protocol", "avg_ms/req", "p95_ms",
              "req/s total");
  const Level xml = run_level(8, rpc::Protocol::kXmlRpc);
  std::printf("%-10s %14.3f %12.3f %16.0f\n", "xmlrpc", xml.mean_ms, xml.p95_ms,
              xml.throughput_rps);
  const Level json = run_level(8, rpc::Protocol::kJsonRpc);
  std::printf("%-10s %14.3f %12.3f %16.0f\n", "jsonrpc", json.mean_ms, json.p95_ms,
              json.throughput_rps);

  // Shape check for EXPERIMENTS.md: flat region vs saturated region.
  const double flat = results.front().mean_ms;
  const double saturated = results.back().mean_ms;
  std::printf("\nmean latency @1 client: %.3f ms; @%d clients: %.3f ms (%.1fx)\n", flat,
              results.back().clients, saturated, saturated / flat);
  std::printf("served %llu requests total\n",
              static_cast<unsigned long long>(
                  std::accumulate(results.begin(), results.end(), 0ULL,
                                  [&](unsigned long long acc, const Level& l) {
                                    return acc + static_cast<unsigned long long>(
                                                     l.clients) *
                                                     calls_per_client;
                                  })));
  host.stop();
  return 0;
}
