// Ablation E11: fair-share dispatch vs strict FIFO.
//
// One heavy user floods the queue, one light user submits occasionally.
// Metrics: each user's mean queue wait, the light:heavy wait ratio, and the
// makespan. Fair share should cut the light user's waits hard while barely
// moving total throughput (same work, same nodes).
#include <algorithm>
#include <cstdio>
#include <map>

#include "common/rng.h"
#include "common/stats.h"
#include "exec/execution_service.h"
#include "sim/load.h"

#include "common/log.h"

using namespace gae;


namespace {

struct Outcome {
  double heavy_wait_s = 0;
  double light_wait_s = 0;
  double makespan_s = 0;
  double wait_ratio = 0;  // light over heavy: << 1 means light jobs flow past
};

Outcome run(bool fair_share, std::uint64_t seed) {
  sim::Simulation sim;
  sim::Grid grid;
  auto& site = grid.add_site("s");
  site.add_node("n0", 1.0, nullptr);
  site.add_node("n1", 1.0, nullptr);
  exec::ExecOptions opts;
  opts.fair_share = fair_share;
  exec::ExecutionService exec(sim, grid, "s", opts);

  Rng rng(seed);
  int counter = 0;
  // Heavy user: 40 tasks in a burst at t=0. Light user: one task every 200 s.
  for (int i = 0; i < 40; ++i) {
    exec::TaskSpec spec;
    spec.id = "heavy-" + std::to_string(counter++);
    spec.owner = "heavy";
    spec.work_seconds = rng.uniform(60, 180);
    exec.submit(spec);
  }
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(from_seconds(200.0 * i), [&exec, &rng, i] {
      exec::TaskSpec spec;
      spec.id = "light-" + std::to_string(i);
      spec.owner = "light";
      spec.work_seconds = 30;
      exec.submit(spec);
    });
  }
  sim.run();

  std::map<std::string, RunningStats> waits;
  SimTime last = 0;
  for (const auto& info : exec.list_tasks()) {
    waits[info.spec.owner].add(to_seconds(info.start_time - info.submit_time));
    last = std::max(last, info.completion_time);
  }
  Outcome out;
  out.heavy_wait_s = waits["heavy"].mean();
  out.light_wait_s = waits["light"].mean();
  out.makespan_s = to_seconds(last);
  out.wait_ratio = out.light_wait_s / std::max(1.0, out.heavy_wait_s);
  return out;
}

}  // namespace

int main() {
  set_log_level(LogLevel::kWarn);  // keep demo output clean
  std::printf("Ablation E11: fair-share dispatch (2 nodes; heavy user bursts 40 tasks, "
              "light user trickles 10)\n\n");
  std::printf("%-12s %14s %14s %12s %12s\n", "policy", "heavy_wait_s", "light_wait_s",
              "makespan_s", "light/heavy");
  for (int seed = 1; seed <= 3; ++seed) {
    const Outcome fifo = run(false, static_cast<std::uint64_t>(seed));
    const Outcome fair = run(true, static_cast<std::uint64_t>(seed));
    std::printf("seed %d\n", seed);
    std::printf("%-12s %14.1f %14.1f %12.1f %12.3f\n", "  fifo", fifo.heavy_wait_s,
                fifo.light_wait_s, fifo.makespan_s, fifo.wait_ratio);
    std::printf("%-12s %14.1f %14.1f %12.1f %12.3f\n", "  fair-share", fair.heavy_wait_s,
                fair.light_wait_s, fair.makespan_s, fair.wait_ratio);
  }
  std::printf("\nfair share trades a small rise in the heavy user's wait for a large "
              "drop in the light user's,\nwith makespan unchanged (same total work on "
              "the same nodes).\n");
  return 0;
}
