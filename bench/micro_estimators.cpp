// E8 micro-benchmarks: estimator core costs (similarity search + statistical
// estimate) as history grows.
#include <benchmark/benchmark.h>

#include <memory>

#include "common/rng.h"
#include "estimators/runtime_estimator.h"
#include "workload/paragon_trace.h"
#include "workload/task_generator.h"

namespace {

using namespace gae;

std::shared_ptr<estimators::TaskHistoryStore> make_history(std::size_t n,
                                                           std::uint64_t seed) {
  Rng rng(seed);
  auto population = workload::ApplicationPopulation::make(rng, {});
  workload::TraceOptions topts;
  topts.num_records = n;
  const auto trace = workload::generate_trace(population, rng, topts);
  auto store = std::make_shared<estimators::TaskHistoryStore>();
  for (const auto& rec : trace) {
    store->add({workload::record_attributes(rec), rec.runtime_seconds(),
                rec.complete_time, rec.successful});
  }
  return store;
}

void BM_Estimate(benchmark::State& state) {
  auto store = make_history(static_cast<std::size_t>(state.range(0)), 7);
  estimators::RuntimeEstimator estimator(store);
  const auto& probe = store->entries().back().attributes;
  for (auto _ : state) {
    benchmark::DoNotOptimize(estimator.estimate(probe));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Estimate)->Range(64, 8192)->Complexity();

void BM_Record(benchmark::State& state) {
  auto store = std::make_shared<estimators::TaskHistoryStore>(
      static_cast<std::size_t>(state.range(0)));
  estimators::RuntimeEstimator estimator(store);
  const std::map<std::string, std::string> attrs = {
      {"executable", "app1"}, {"login", "u"}, {"queue", "q"}, {"nodes", "8"}};
  for (auto _ : state) {
    estimator.record(attrs, 123.0, 0);
  }
}
BENCHMARK(BM_Record)->Arg(1024);

void BM_TraceGeneration(benchmark::State& state) {
  for (auto _ : state) {
    Rng rng(11);
    auto population = workload::ApplicationPopulation::make(rng, {});
    workload::TraceOptions topts;
    topts.num_records = static_cast<std::size_t>(state.range(0));
    benchmark::DoNotOptimize(workload::generate_trace(population, rng, topts));
  }
}
BENCHMARK(BM_TraceGeneration)->Arg(100)->Arg(1000);

}  // namespace

BENCHMARK_MAIN();
