// Telemetry overhead bench: the micro_rpc hot path (loopback echo round
// trip) with telemetry disarmed vs fully armed (per-method metrics, client
// counters, tracing on both hops). Emits BENCH_telemetry.json via
// --bench_json=PATH with per-scenario p50/p95/p99 + throughput and the
// relative overhead, which the issue budget caps at 5% on the round-trip
// path.
//
// Usage: micro_telemetry [--bench_json=PATH] [--iters=N]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_json.h"
#include "rpc/client.h"
#include "rpc/server.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace {

using namespace gae;
using namespace gae::rpc;

Value sample_struct(int entries) {
  Struct s;
  for (int i = 0; i < entries; ++i) {
    const std::string key = "field" + std::to_string(i);
    switch (i % 4) {
      case 0: s[key] = Value(static_cast<std::int64_t>(i * 1234)); break;
      case 1: s[key] = Value(i * 0.5); break;
      case 2: s[key] = Value("value-" + std::to_string(i)); break;
      default: s[key] = Value(Array{Value(i), Value("x"), Value(true)});
    }
  }
  return Value(std::move(s));
}

/// One scenario: `iters` echo round trips over loopback, returning per-call
/// latencies. Telemetry is armed on both ends when registries are non-null.
std::vector<double> run_round_trips(std::size_t iters,
                                    telemetry::MetricsRegistry* metrics,
                                    telemetry::Tracer* tracer) {
  auto dispatcher = std::make_shared<Dispatcher>();
  dispatcher->register_method(
      "echo", [](const Array& params, const CallContext&) -> gae::Result<Value> {
        return params.empty() ? Value() : params.front();
      });
  if (metrics || tracer) dispatcher->set_telemetry(metrics, tracer, "bench-host");

  ServerOptions server_options;
  server_options.port = 0;
  server_options.num_workers = 2;
  server_options.metrics = metrics;
  RpcServer server(dispatcher, server_options);
  auto port = server.start();
  if (!port.is_ok()) {
    std::fprintf(stderr, "server start failed: %s\n", port.status().message().c_str());
    return {};
  }

  ClientOptions client_options;
  client_options.metrics = metrics;
  client_options.tracer = tracer;
  RpcClient client({{"127.0.0.1", port.value()}}, Protocol::kXmlRpc, client_options);

  const Value payload = sample_struct(8);
  // Warmup: connection setup, registry handle creation, branch predictors.
  for (int i = 0; i < 200; ++i) {
    if (!client.call("echo", {payload}).is_ok()) return {};
  }

  std::vector<double> latencies_us;
  latencies_us.reserve(iters);
  for (std::size_t i = 0; i < iters; ++i) {
    const auto start = std::chrono::steady_clock::now();
    auto r = client.call("echo", {payload});
    const auto elapsed = std::chrono::steady_clock::now() - start;
    if (!r.is_ok()) {
      std::fprintf(stderr, "call failed: %s\n", r.status().message().c_str());
      return {};
    }
    latencies_us.push_back(std::chrono::duration<double, std::micro>(elapsed).count());
  }
  server.stop();
  return latencies_us;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t iters = 3000;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--iters=", 8) == 0) {
      iters = static_cast<std::size_t>(std::atoll(argv[i] + 8));
    }
  }

  // Interleave the scenarios so machine-level drift (thermal, noisy
  // neighbours) hits all of them equally instead of biasing one. The
  // metrics-only and trace-only scenarios localise a budget regression to
  // the registry or the span path.
  std::vector<double> off_us, metrics_us, trace_us, on_us;
  telemetry::MetricsRegistry metrics;
  telemetry::Tracer tracer;  // default capacity — the deployed configuration
  struct Scenario {
    telemetry::MetricsRegistry* metrics;
    telemetry::Tracer* tracer;
    std::vector<double>* sink;
    std::vector<double> round_p50s;
  };
  Scenario scenarios[] = {{nullptr, nullptr, &off_us, {}},
                          {&metrics, nullptr, &metrics_us, {}},
                          {nullptr, &tracer, &trace_us, {}},
                          {&metrics, &tracer, &on_us, {}}};
  constexpr int kRounds = 8;
  for (int round = 0; round < kRounds; ++round) {
    // Rotate the running order every round: whichever scenario runs first in
    // a round sees a systematically different machine (cold caches, turbo
    // headroom), and a fixed order would bake that into the comparison.
    for (int i = 0; i < 4; ++i) {
      Scenario& s = scenarios[(round + i) % 4];
      auto lat = run_round_trips(iters / kRounds, s.metrics, s.tracer);
      if (lat.empty()) return 1;
      std::vector<double> sorted = lat;
      std::sort(sorted.begin(), sorted.end());
      s.round_p50s.push_back(sorted[sorted.size() / 2]);
      s.sink->insert(s.sink->end(), lat.begin(), lat.end());
    }
  }
  // Overhead headline: median of per-round paired p50 ratios. Pairing each
  // round's on/off (which run seconds apart) before aggregating cancels
  // machine drift that a pooled p50 comparison absorbs as noise; the median
  // across rounds discards bursts that land inside a single round.
  std::vector<double> ratios;
  for (int r = 0; r < kRounds; ++r) {
    if (scenarios[0].round_p50s[r] > 0) {
      ratios.push_back(scenarios[3].round_p50s[r] / scenarios[0].round_p50s[r]);
    }
  }
  std::sort(ratios.begin(), ratios.end());
  const double overhead_pct =
      ratios.empty() ? 0.0 : 100.0 * (ratios[ratios.size() / 2] - 1.0);

  const auto base = gae::bench::summarize("round_trip_telemetry_off", std::move(off_us));
  const auto metrics_scn =
      gae::bench::summarize("round_trip_metrics_only", std::move(metrics_us));
  const auto trace_scn = gae::bench::summarize("round_trip_trace_only", std::move(trace_us));
  const auto armed = gae::bench::summarize("round_trip_telemetry_on", std::move(on_us));

  std::printf("telemetry off: p50 %.1fus p95 %.1fus p99 %.1fus  %.0f req/s\n",
              base.p50_us, base.p95_us, base.p99_us, base.throughput_rps);
  std::printf("metrics only:  p50 %.1fus p95 %.1fus p99 %.1fus  %.0f req/s\n",
              metrics_scn.p50_us, metrics_scn.p95_us, metrics_scn.p99_us,
              metrics_scn.throughput_rps);
  std::printf("trace only:    p50 %.1fus p95 %.1fus p99 %.1fus  %.0f req/s\n",
              trace_scn.p50_us, trace_scn.p95_us, trace_scn.p99_us,
              trace_scn.throughput_rps);
  std::printf("telemetry on:  p50 %.1fus p95 %.1fus p99 %.1fus  %.0f req/s\n",
              armed.p50_us, armed.p95_us, armed.p99_us, armed.throughput_rps);
  std::printf("p50 overhead: %.2f%% (budget 5%%)\n", overhead_pct);

  const std::string path = gae::bench::bench_json_path(argc, argv);
  if (!path.empty()) {
    char overhead[64];
    std::snprintf(overhead, sizeof overhead, "\"p50_overhead_pct\": %.2f", overhead_pct);
    if (!gae::bench::write_bench_json(path, "micro_telemetry",
                                      {base, metrics_scn, trace_scn, armed}, {overhead})) {
      std::fprintf(stderr, "failed to write %s\n", path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", path.c_str());
  }
  return 0;
}
