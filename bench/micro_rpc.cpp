// E7 micro-benchmarks: codec and transport costs of the web-service layer.
#include <benchmark/benchmark.h>

#include <memory>

#include "rpc/client.h"
#include "rpc/jsonrpc.h"
#include "rpc/server.h"
#include "rpc/xmlrpc.h"

namespace {

using namespace gae;
using namespace gae::rpc;

Value sample_struct(int entries) {
  Struct s;
  for (int i = 0; i < entries; ++i) {
    const std::string key = "field" + std::to_string(i);
    switch (i % 4) {
      case 0: s[key] = Value(static_cast<std::int64_t>(i * 1234)); break;
      case 1: s[key] = Value(i * 0.5); break;
      case 2: s[key] = Value("value-" + std::to_string(i)); break;
      default: s[key] = Value(Array{Value(i), Value("x"), Value(true)});
    }
  }
  return Value(std::move(s));
}

void BM_XmlRpcEncode(benchmark::State& state) {
  const Value v = sample_struct(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(xmlrpc::encode_response(v));
  }
}
BENCHMARK(BM_XmlRpcEncode)->Arg(4)->Arg(16)->Arg(64);

void BM_XmlRpcDecode(benchmark::State& state) {
  const std::string xml =
      xmlrpc::encode_response(sample_struct(static_cast<int>(state.range(0))));
  for (auto _ : state) {
    benchmark::DoNotOptimize(xmlrpc::decode_response(xml));
  }
}
BENCHMARK(BM_XmlRpcDecode)->Arg(4)->Arg(16)->Arg(64);

void BM_JsonEncode(benchmark::State& state) {
  const Value v = sample_struct(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(json::encode(v));
  }
}
BENCHMARK(BM_JsonEncode)->Arg(4)->Arg(16)->Arg(64);

void BM_JsonDecode(benchmark::State& state) {
  const std::string text = json::encode(sample_struct(static_cast<int>(state.range(0))));
  for (auto _ : state) {
    benchmark::DoNotOptimize(json::decode(text));
  }
}
BENCHMARK(BM_JsonDecode)->Arg(4)->Arg(16)->Arg(64);

/// Full round trip over loopback TCP, one blocking client.
void BM_RoundTrip(benchmark::State& state) {
  auto dispatcher = std::make_shared<Dispatcher>();
  dispatcher->register_method(
      "echo", [](const Array& params, const CallContext&) -> gae::Result<Value> {
        return params.empty() ? Value() : params.front();
      });
  RpcServer server(dispatcher, ServerOptions{0, 2});
  auto port = server.start();
  if (!port.is_ok()) {
    state.SkipWithError("server start failed");
    return;
  }
  const Protocol protocol = state.range(0) == 0 ? Protocol::kXmlRpc : Protocol::kJsonRpc;
  RpcClient client("127.0.0.1", port.value(), protocol);
  const Value payload = sample_struct(8);
  for (auto _ : state) {
    auto r = client.call("echo", {payload});
    if (!r.is_ok()) {
      state.SkipWithError("call failed");
      return;
    }
  }
  server.stop();
}
BENCHMARK(BM_RoundTrip)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
