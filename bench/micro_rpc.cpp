// E7 micro-benchmarks: codec and transport costs of the web-service layer,
// plus a faulty-transport scenario measuring what retry buys (and costs)
// at different fault rates.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <vector>

#include "bench_json.h"
#include "common/rng.h"
#include "rpc/client.h"
#include "rpc/jsonrpc.h"
#include "rpc/server.h"
#include "rpc/xmlrpc.h"

namespace {

using namespace gae;
using namespace gae::rpc;

Value sample_struct(int entries) {
  Struct s;
  for (int i = 0; i < entries; ++i) {
    const std::string key = "field" + std::to_string(i);
    switch (i % 4) {
      case 0: s[key] = Value(static_cast<std::int64_t>(i * 1234)); break;
      case 1: s[key] = Value(i * 0.5); break;
      case 2: s[key] = Value("value-" + std::to_string(i)); break;
      default: s[key] = Value(Array{Value(i), Value("x"), Value(true)});
    }
  }
  return Value(std::move(s));
}

void BM_XmlRpcEncode(benchmark::State& state) {
  const Value v = sample_struct(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(xmlrpc::encode_response(v));
  }
}
BENCHMARK(BM_XmlRpcEncode)->Arg(4)->Arg(16)->Arg(64);

void BM_XmlRpcDecode(benchmark::State& state) {
  const std::string xml =
      xmlrpc::encode_response(sample_struct(static_cast<int>(state.range(0))));
  for (auto _ : state) {
    benchmark::DoNotOptimize(xmlrpc::decode_response(xml));
  }
}
BENCHMARK(BM_XmlRpcDecode)->Arg(4)->Arg(16)->Arg(64);

void BM_JsonEncode(benchmark::State& state) {
  const Value v = sample_struct(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(json::encode(v));
  }
}
BENCHMARK(BM_JsonEncode)->Arg(4)->Arg(16)->Arg(64);

void BM_JsonDecode(benchmark::State& state) {
  const std::string text = json::encode(sample_struct(static_cast<int>(state.range(0))));
  for (auto _ : state) {
    benchmark::DoNotOptimize(json::decode(text));
  }
}
BENCHMARK(BM_JsonDecode)->Arg(4)->Arg(16)->Arg(64);

/// Full round trip over loopback TCP, one blocking client.
void BM_RoundTrip(benchmark::State& state) {
  auto dispatcher = std::make_shared<Dispatcher>();
  dispatcher->register_method(
      "echo", [](const Array& params, const CallContext&) -> gae::Result<Value> {
        return params.empty() ? Value() : params.front();
      });
  RpcServer server(dispatcher, ServerOptions{0, 2});
  auto port = server.start();
  if (!port.is_ok()) {
    state.SkipWithError("server start failed");
    return;
  }
  const Protocol protocol = state.range(0) == 0 ? Protocol::kXmlRpc : Protocol::kJsonRpc;
  RpcClient client("127.0.0.1", port.value(), protocol);
  const Value payload = sample_struct(8);
  for (auto _ : state) {
    auto r = client.call("echo", {payload});
    if (!r.is_ok()) {
      state.SkipWithError("call failed");
      return;
    }
  }
  server.stop();
}
BENCHMARK(BM_RoundTrip)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);

/// Round trips over a transport that fails a seeded fraction of calls with
/// UNAVAILABLE (injected via a dispatcher interceptor, so keep-alive framing
/// stays intact and the sweep isolates the retry policy itself).
///
/// Args: {fault rate in percent, retry on/off}. Reported counters:
/// success_rate, p50_us, p99_us.
void BM_FaultyTransport(benchmark::State& state) {
  const double fault_rate = static_cast<double>(state.range(0)) / 100.0;
  const bool with_retry = state.range(1) != 0;

  auto dispatcher = std::make_shared<Dispatcher>();
  dispatcher->register_method(
      "echo", [](const Array& params, const CallContext&) -> gae::Result<Value> {
        return params.empty() ? Value() : params.front();
      });
  // Deterministic per-call faults: same seed, same fault sequence.
  auto rng = std::make_shared<Rng>(20'260'806);
  auto rng_mutex = std::make_shared<std::mutex>();
  dispatcher->add_interceptor(
      [fault_rate, rng, rng_mutex](const std::string&, const CallContext&) -> Status {
        std::lock_guard<std::mutex> lock(*rng_mutex);
        if (rng->bernoulli(fault_rate)) {
          return unavailable_error("injected transport fault");
        }
        return Status::ok();
      });

  RpcServer server(dispatcher, ServerOptions{0, 2});
  auto port = server.start();
  if (!port.is_ok()) {
    state.SkipWithError("server start failed");
    return;
  }

  ClientOptions options;
  options.default_call.retry.max_attempts = with_retry ? 4 : 1;
  options.default_call.retry.initial_backoff_ms = 1;
  options.default_call.retry.max_backoff_ms = 8;
  options.default_call.retry.jitter_fraction = 0.0;
  options.breaker.min_samples = 1u << 30;  // sweep the policy, not the breaker
  RpcClient client({{"127.0.0.1", port.value()}}, Protocol::kXmlRpc, options);

  const Value payload = sample_struct(8);
  std::uint64_t ok_calls = 0, failed_calls = 0;
  std::vector<double> latencies_us;
  for (auto _ : state) {
    const auto start = std::chrono::steady_clock::now();
    auto r = client.call("echo", {payload});
    const auto elapsed = std::chrono::steady_clock::now() - start;
    latencies_us.push_back(
        std::chrono::duration<double, std::micro>(elapsed).count());
    if (r.is_ok()) {
      ++ok_calls;
    } else {
      ++failed_calls;
    }
  }
  server.stop();

  std::sort(latencies_us.begin(), latencies_us.end());
  auto percentile = [&](double p) {
    if (latencies_us.empty()) return 0.0;
    const auto idx = static_cast<std::size_t>(p * (latencies_us.size() - 1));
    return latencies_us[idx];
  };
  state.counters["success_rate"] =
      benchmark::Counter(static_cast<double>(ok_calls) /
                         std::max<double>(1.0, static_cast<double>(ok_calls + failed_calls)));
  state.counters["p50_us"] = benchmark::Counter(percentile(0.50));
  state.counters["p99_us"] = benchmark::Counter(percentile(0.99));
  state.counters["retries"] =
      benchmark::Counter(static_cast<double>(client.stats().retries));
}
BENCHMARK(BM_FaultyTransport)
    ->Args({1, 0})->Args({1, 1})
    ->Args({5, 0})->Args({5, 1})
    ->Args({20, 0})->Args({20, 1})
    ->Unit(benchmark::kMicrosecond);

/// --bench_json mode: a direct percentile measurement of the loopback round
/// trip per protocol, written as BENCH_rpc.json for CI artifact upload
/// (google-benchmark's own JSON lacks percentiles without repetition sweeps).
int run_bench_json(const std::string& path) {
  constexpr std::size_t kIters = 3000;
  std::vector<gae::bench::Scenario> scenarios;
  for (const Protocol protocol : {Protocol::kXmlRpc, Protocol::kJsonRpc}) {
    auto dispatcher = std::make_shared<Dispatcher>();
    dispatcher->register_method(
        "echo", [](const Array& params, const CallContext&) -> gae::Result<Value> {
          return params.empty() ? Value() : params.front();
        });
    RpcServer server(dispatcher, ServerOptions{0, 2});
    auto port = server.start();
    if (!port.is_ok()) {
      std::fprintf(stderr, "server start failed: %s\n", port.status().message().c_str());
      return 1;
    }
    RpcClient client("127.0.0.1", port.value(), protocol);
    const Value payload = sample_struct(8);
    for (int i = 0; i < 200; ++i) {
      if (!client.call("echo", {payload}).is_ok()) return 1;
    }
    std::vector<double> latencies_us;
    latencies_us.reserve(kIters);
    for (std::size_t i = 0; i < kIters; ++i) {
      const auto start = std::chrono::steady_clock::now();
      auto r = client.call("echo", {payload});
      const auto elapsed = std::chrono::steady_clock::now() - start;
      if (!r.is_ok()) {
        std::fprintf(stderr, "call failed: %s\n", r.status().message().c_str());
        return 1;
      }
      latencies_us.push_back(
          std::chrono::duration<double, std::micro>(elapsed).count());
    }
    server.stop();
    scenarios.push_back(gae::bench::summarize(
        protocol == Protocol::kXmlRpc ? "round_trip_xmlrpc" : "round_trip_jsonrpc",
        std::move(latencies_us)));
  }
  for (const auto& s : scenarios) {
    std::printf("%s: p50 %.1fus p95 %.1fus p99 %.1fus  %.0f req/s\n", s.name.c_str(),
                s.p50_us, s.p95_us, s.p99_us, s.throughput_rps);
  }
  if (!gae::bench::write_bench_json(path, "micro_rpc", scenarios)) {
    std::fprintf(stderr, "failed to write %s\n", path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = gae::bench::bench_json_path(argc, argv);
  if (!json_path.empty()) return run_bench_json(json_path);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
