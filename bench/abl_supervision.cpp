// Supervision ablation: what a mid-run jobmon crash costs the fig-7
// steering scenario, with and without the supervisor.
//
// The steering optimizer consults the Job Monitoring Service for progress;
// when that service dies, no steering decision can be made. Three runs of
// the identical 283 s prime job on the loaded site-a grid:
//   1. no crash                 — the fig-7 baseline (steered to site-b)
//   2. crash, no supervision    — jobmon stays dead; the job crawls at site-a
//   3. crash + supervised restart — the WAL-recovered jobmon comes back,
//      steering resumes and the completion lands near the no-crash run.
// Also reported: registry convergence (lease lapse -> fresh lease) and the
// byte-equality of the recovered monitoring repository.
#include <cstdio>
#include <map>
#include <memory>
#include <string>

#include "clarens/registry.h"
#include "common/log.h"
#include "common/wal.h"
#include "estimators/estimate_db.h"
#include "estimators/runtime_estimator.h"
#include "jobmon/service.h"
#include "monalisa/repository.h"
#include "sim/engine.h"
#include "sim/grid.h"
#include "sim/load.h"
#include "sphinx/scheduler.h"
#include "steering/service.h"
#include "supervision/failure_detector.h"
#include "supervision/supervisor.h"

using namespace gae;

namespace {

constexpr double kJobSeconds = 283.0;
constexpr double kSiteALoad = 0.8;
constexpr double kLeaseTtlS = 10.0;
constexpr double kHeartbeatS = 5.0;
constexpr double kCrashAtS = 40.0;

struct RunResult {
  double completion_s = -1;   // first instance to finish (steered or not)
  double restart_at_s = -1;   // supervised restart instant (-1: none)
  bool state_recovered = false;  // recovered repository byte-equal pre-crash
  std::uint64_t wal_appends = 0;
  std::uint64_t expirations = 0;
};

RunResult run_scenario(bool crash, bool supervised) {
  sim::Simulation sim;
  sim::Grid grid;
  grid.add_site("site-a").add_node("a0", 1.0,
                                   std::make_shared<sim::ConstantLoad>(kSiteALoad));
  grid.add_site("site-b").add_node("b0", 1.0, nullptr);
  grid.set_default_link({100e6, 0});

  exec::ExecutionService exec_a(sim, grid, "site-a");
  exec::ExecutionService exec_b(sim, grid, "site-b");
  monalisa::Repository monitoring;
  clarens::ServiceRegistry registry("gae-host", &sim.clock(),
                                    clarens::RegistryOptions{from_seconds(kLeaseTtlS)});
  MemoryWalStorage wal_storage;
  Wal wal(&wal_storage);

  auto estimate_db = std::make_shared<estimators::EstimateDatabase>();
  std::map<std::string, std::string> attrs = {{"executable", "primes"},
                                              {"login", "alice"},
                                              {"queue", "short"},
                                              {"nodes", "1"}};
  auto est_a = std::make_shared<estimators::RuntimeEstimator>(
      std::make_shared<estimators::TaskHistoryStore>());
  auto est_b = std::make_shared<estimators::RuntimeEstimator>(
      std::make_shared<estimators::TaskHistoryStore>());
  for (int i = 0; i < 8; ++i) {
    est_a->record(attrs, kJobSeconds, 0);
    est_b->record(attrs, kJobSeconds, 0);
  }

  sphinx::SphinxScheduler scheduler(sim, grid, &monitoring, estimate_db);
  scheduler.add_site("site-a", {&exec_a, est_a});
  scheduler.add_site("site-b", {&exec_b, est_b});

  auto jms = std::make_unique<jobmon::JobMonitoringService>(sim.clock(), &monitoring,
                                                            estimate_db, &wal);
  jms->attach_site("site-a", &exec_a);
  jms->attach_site("site-b", &exec_b);

  steering::SteeringService::Deps deps;
  deps.sim = &sim;
  deps.scheduler = &scheduler;
  deps.jobmon = jms.get();
  deps.services = {{"site-a", &exec_a}, {"site-b", &exec_b}};
  deps.monitoring = &monitoring;
  steering::SteeringOptions sopts;
  sopts.auto_steer = true;
  sopts.optimizer_interval_seconds = 15;
  sopts.min_observation_seconds = 30;
  sopts.keep_original_on_move = true;
  steering::SteeringService steering(deps, sopts);

  supervision::FailureDetector detector(
      sim.clock(),
      {from_seconds(kHeartbeatS), /*suspect_after_missed=*/1, /*dead_after_missed=*/2},
      &monitoring);
  supervision::SupervisorOptions sup_opts;
  sup_opts.restart_backoff = RetryPolicy{3, 1000, 2.0, 60'000, 0.0, 1};
  supervision::Supervisor supervisor(sim.clock(), sup_opts, &monitoring);
  supervisor.attach(detector);

  clarens::ServiceInfo jm_info;
  jm_info.name = "jobmon";
  jm_info.host = "127.0.0.1";
  jm_info.port = 9000;
  clarens::Lease lease = registry.register_service(jm_info);
  detector.watch("jobmon");

  RunResult result;
  std::string pre_crash;
  if (supervised) {
    supervisor.manage({"jobmon", [&]() -> Status {
                         jms = std::make_unique<jobmon::JobMonitoringService>(
                             sim.clock(), &monitoring, estimate_db, &wal);
                         const Status s = jms->mutable_db().recover();
                         if (!s.is_ok()) return s;
                         result.state_recovered = jms->db().export_state() == pre_crash;
                         result.restart_at_s = to_seconds(sim.clock().now());
                         jms->attach_site("site-a", &exec_a);
                         jms->attach_site("site-b", &exec_b);
                         steering.rebind_jobmon(jms.get());
                         lease = registry.register_service(jm_info);
                         return Status::ok();
                       }});
  }

  // Heartbeat plane: renew + beat while alive, then sweep/check/tick.
  for (double t = kHeartbeatS; t <= 600; t += kHeartbeatS) {
    sim.schedule_at(from_seconds(t), [&] {
      if (jms) {
        detector.heartbeat("jobmon");
        registry.renew("jobmon", lease.id);
      }
      registry.sweep();
      detector.check();
      supervisor.tick();
    });
  }

  exec::TaskSpec job;
  job.id = "primes-1";
  job.owner = "alice";
  job.executable = "primes";
  job.work_seconds = kJobSeconds;
  job.attributes = attrs;
  sphinx::JobDescription desc;
  desc.id = "analysis-job";
  desc.owner = "alice";
  desc.tasks.push_back({job, {}});
  auto plan = scheduler.submit(desc);
  if (!plan.is_ok() || plan.value().placements[0].site != "site-a") {
    std::fprintf(stderr, "unexpected initial placement\n");
    return result;
  }

  if (crash) {
    sim.schedule_at(from_seconds(kCrashAtS), [&] {
      pre_crash = jms->db().export_state();
      steering.rebind_jobmon(nullptr);
      jms.reset();
    });
  }

  sim.run_until(from_seconds(2000));

  // First completion wins: steered copy at site-b, or the site-a crawl.
  for (auto* svc : {&exec_b, &exec_a}) {
    auto q = svc->query("primes-1");
    if (q.is_ok() && q.value().state == exec::TaskState::kCompleted) {
      result.completion_s = to_seconds(q.value().completion_time);
      break;
    }
  }
  result.wal_appends = wal.appends();
  result.expirations = registry.expirations();
  return result;
}

}  // namespace

int main() {
  set_log_level(LogLevel::kError);
  std::printf("Supervision ablation: fig-7 steering vs a jobmon crash at t=%.0f s\n",
              kCrashAtS);
  std::printf("(283 s prime job; site-a load %.0f%%; lease TTL %.0f s; heartbeat %.0f s)\n\n",
              kSiteALoad * 100, kLeaseTtlS, kHeartbeatS);

  const RunResult baseline = run_scenario(/*crash=*/false, /*supervised=*/false);
  const RunResult unsupervised = run_scenario(/*crash=*/true, /*supervised=*/false);
  const RunResult supervised = run_scenario(/*crash=*/true, /*supervised=*/true);

  std::printf("%-34s %14s %14s %14s\n", "", "no crash", "crash alone",
              "crash+superv");
  std::printf("%-34s %14.1f %14.1f %14.1f\n", "job completion (s)",
              baseline.completion_s, unsupervised.completion_s,
              supervised.completion_s);
  std::printf("%-34s %14s %14s %14.1f\n", "supervised restart at (s)", "-", "-",
              supervised.restart_at_s);
  std::printf("%-34s %14s %14s %14s\n", "recovered state byte-equal", "-", "-",
              supervised.state_recovered ? "yes" : "NO");
  std::printf("%-34s %14llu %14llu %14llu\n", "lease expirations",
              static_cast<unsigned long long>(baseline.expirations),
              static_cast<unsigned long long>(unsupervised.expirations),
              static_cast<unsigned long long>(supervised.expirations));
  std::printf("%-34s %14llu %14llu %14llu\n", "jobmon WAL appends",
              static_cast<unsigned long long>(baseline.wal_appends),
              static_cast<unsigned long long>(unsupervised.wal_appends),
              static_cast<unsigned long long>(supervised.wal_appends));

  if (unsupervised.completion_s > 0 && supervised.completion_s > 0) {
    std::printf("\ncrash penalty without supervision : %7.1f s\n",
                unsupervised.completion_s - baseline.completion_s);
    std::printf("crash penalty with supervision    : %7.1f s\n",
                supervised.completion_s - baseline.completion_s);
  }
  return 0;
}
