// Ablation E4: runtime-estimator accuracy vs history size, statistical
// estimator kind, and similarity-template hierarchy.
//
// Extends fig. 5: the paper fixes history = 100 jobs and a single estimator;
// this sweep shows how the 13-ish % error regime depends on those choices.
#include <cmath>
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "estimators/runtime_estimator.h"
#include "workload/paragon_trace.h"
#include "workload/task_generator.h"

#include "common/log.h"

using namespace gae;


namespace {

constexpr std::size_t kTestCases = 50;
constexpr int kTrials = 5;  // different seeds averaged per cell

double mean_abs_pct_error(std::size_t history_size,
                          estimators::RuntimeEstimatorOptions opts,
                          estimators::SimilarityMatcher matcher, std::uint64_t seed) {
  Rng rng(seed);
  workload::PopulationOptions popts;
  popts.sigma_within = 0.18;
  auto population = workload::ApplicationPopulation::make(rng, popts);
  workload::TraceOptions topts;
  topts.num_records = history_size + kTestCases;
  topts.failure_rate = 0.0;
  const auto trace = workload::generate_trace(population, rng, topts);

  auto store = std::make_shared<estimators::TaskHistoryStore>();
  estimators::RuntimeEstimator estimator(store, std::move(matcher), opts);
  for (std::size_t i = 0; i < history_size; ++i) {
    estimator.record(workload::record_attributes(trace[i]), trace[i].runtime_seconds(),
                     trace[i].complete_time);
  }
  double total = 0;
  std::size_t counted = 0;
  for (std::size_t i = history_size; i < trace.size(); ++i) {
    auto est = estimator.estimate(workload::record_attributes(trace[i]));
    if (!est.is_ok()) continue;
    const double actual = trace[i].runtime_seconds();
    total += std::fabs(actual - est.value().seconds) / actual * 100.0;
    ++counted;
  }
  return counted ? total / static_cast<double>(counted) : -1.0;
}

double averaged(std::size_t history, estimators::EstimatorKind kind,
                std::vector<estimators::SimilarityTemplate> templates) {
  estimators::RuntimeEstimatorOptions opts;
  opts.kind = kind;
  double sum = 0;
  for (int t = 0; t < kTrials; ++t) {
    sum += mean_abs_pct_error(history, opts,
                              estimators::SimilarityMatcher(templates),
                              1000 + static_cast<std::uint64_t>(t));
  }
  return sum / kTrials;
}

}  // namespace

int main() {
  set_log_level(LogLevel::kWarn);  // keep demo output clean
  std::printf("Ablation E4: runtime estimator accuracy (mean |%%error|, %d seeds, "
              "%zu test cases each)\n\n",
              kTrials, kTestCases);

  const auto full = estimators::default_templates();
  const std::vector<estimators::SimilarityTemplate> exe_only = {
      {{"executable"}}, {{}}};
  const std::vector<estimators::SimilarityTemplate> user_only = {{{"login"}}, {{}}};
  const std::vector<estimators::SimilarityTemplate> any_only = {{{}}};

  std::printf("-- history size sweep (hybrid estimator, full template hierarchy) --\n");
  std::printf("%-10s %12s\n", "history", "mean_err_%");
  for (std::size_t history : {25u, 50u, 100u, 200u, 400u, 800u}) {
    std::printf("%-10zu %12.2f\n", history,
                averaged(history, estimators::EstimatorKind::kHybrid, full));
  }

  std::printf("\n-- estimator kind (history = 100) --\n");
  std::printf("%-10s %12s\n", "kind", "mean_err_%");
  for (auto kind : {estimators::EstimatorKind::kMean,
                    estimators::EstimatorKind::kLinearRegression,
                    estimators::EstimatorKind::kHybrid}) {
    std::printf("%-10s %12.2f\n", estimators::estimator_kind_name(kind),
                averaged(100, kind, full));
  }

  std::printf("\n-- similarity templates (history = 100, hybrid) --\n");
  std::printf("%-22s %12s\n", "templates", "mean_err_%");
  std::printf("%-22s %12.2f\n", "full hierarchy",
              averaged(100, estimators::EstimatorKind::kHybrid, full));
  std::printf("%-22s %12.2f\n", "executable only",
              averaged(100, estimators::EstimatorKind::kHybrid, exe_only));
  std::printf("%-22s %12.2f\n", "login only",
              averaged(100, estimators::EstimatorKind::kHybrid, user_only));
  std::printf("%-22s %12.2f\n", "(any) - global mean",
              averaged(100, estimators::EstimatorKind::kHybrid, any_only));
  return 0;
}
