// Figure 7 reproduction: job completion at different sites, with and without
// steering.
//
// Paper setup (§7): a prime-counting job needing 283 s on a free CPU is
// placed on site A, which has significant background CPU load. The steering
// service watches its progress through the Job Monitoring Service, decides
// it is running too slowly, and reschedules it to a free site B — while the
// original instance is left running at A "for testing purposes". The figure
// plots job progress (0-100 %) against time for three series: the 283 s
// estimate, the loaded site-A run, and the steered run (paper: completed at
// 369 s, far ahead of site A). The paper also notes the job would finish
// sooner still if it were checkpointable with flocking enabled.
//
// The same scenario runs here in virtual time on the simulated grid. Shape
// criteria: steered completion lands within a few decision intervals of
// 283 s and far below the loaded site-A completion; the checkpointable
// variant beats the plain restart.
#include <cstdio>
#include <map>
#include <vector>

#include "estimators/estimate_db.h"
#include "estimators/runtime_estimator.h"
#include "jobmon/service.h"
#include "monalisa/repository.h"
#include "sim/load.h"
#include "sphinx/scheduler.h"
#include "steering/service.h"

#include "common/log.h"

using namespace gae;


namespace {

constexpr double kJobSeconds = 283.0;  // the paper's prime-counting job
constexpr double kSiteALoad = 0.8;     // "significant CPU load" at site A

struct RunResult {
  std::vector<std::pair<double, double>> progress_a;        // (t, %) at site A
  std::vector<std::pair<double, double>> progress_steered;  // (t, %) at site B
  double completion_a = -1;
  double completion_steered = -1;
  double move_time = -1;
};

RunResult run_scenario(bool auto_steer, bool checkpointable) {
  sim::Simulation sim;
  sim::Grid grid;
  grid.add_site("site-a").add_node("a0", 1.0,
                                   std::make_shared<sim::ConstantLoad>(kSiteALoad));
  grid.add_site("site-b").add_node("b0", 1.0, nullptr);
  grid.set_default_link({100e6, 0});

  exec::ExecutionService exec_a(sim, grid, "site-a");
  exec::ExecutionService exec_b(sim, grid, "site-b");
  monalisa::Repository monitoring;
  auto estimate_db = std::make_shared<estimators::EstimateDatabase>();

  // "This estimate is calculated by running the job many times on different
  // machines that have negligible CPU load": seed both site histories with
  // 283 s observations.
  std::map<std::string, std::string> attrs = {{"executable", "primes"},
                                              {"login", "alice"},
                                              {"queue", "short"},
                                              {"nodes", "1"}};
  auto est_a = std::make_shared<estimators::RuntimeEstimator>(
      std::make_shared<estimators::TaskHistoryStore>());
  auto est_b = std::make_shared<estimators::RuntimeEstimator>(
      std::make_shared<estimators::TaskHistoryStore>());
  for (int i = 0; i < 8; ++i) {
    est_a->record(attrs, kJobSeconds, 0);
    est_b->record(attrs, kJobSeconds, 0);
  }

  sphinx::SphinxScheduler scheduler(sim, grid, &monitoring, estimate_db);
  scheduler.add_site("site-a", {&exec_a, est_a});
  scheduler.add_site("site-b", {&exec_b, est_b});

  jobmon::JobMonitoringService jms(sim.clock(), &monitoring, estimate_db);
  jms.attach_site("site-a", &exec_a);
  jms.attach_site("site-b", &exec_b);

  steering::SteeringService::Deps deps;
  deps.sim = &sim;
  deps.scheduler = &scheduler;
  deps.jobmon = &jms;
  deps.services = {{"site-a", &exec_a}, {"site-b", &exec_b}};
  steering::SteeringOptions sopts;
  sopts.auto_steer = auto_steer;
  sopts.optimizer_interval_seconds = 15;
  sopts.min_observation_seconds = 30;
  sopts.keep_original_on_move = true;  // the paper's "testing purposes" mode
  steering::SteeringService steering(deps, sopts);

  RunResult result;
  steering.subscribe([&](const steering::Notification& n) {
    if (n.kind == "moved") result.move_time = to_seconds(n.time);
  });

  exec::TaskSpec job;
  job.id = "primes-1";
  job.owner = "alice";
  job.executable = "primes";
  job.work_seconds = kJobSeconds;
  job.checkpointable = checkpointable;
  job.attributes = attrs;
  sphinx::JobDescription desc;
  desc.id = "analysis-job";
  desc.owner = "alice";
  desc.tasks.push_back({job, {}});

  // Both sites estimate 283 s with no queue; the alphabetical tie lands the
  // job on loaded site-a, exactly the situation fig. 7 engineers.
  auto plan = scheduler.submit(desc);
  if (!plan.is_ok() || plan.value().placements[0].site != "site-a") {
    std::fprintf(stderr, "unexpected initial placement\n");
    return result;
  }

  // Sample both instances' progress every 5 virtual seconds.
  for (double t = 0; t <= 2000; t += 5) {
    sim.schedule_at(from_seconds(t), [&, t] {
      auto a = exec_a.query("primes-1");
      if (a.is_ok() && !a.value().spec.id.empty()) {
        result.progress_a.emplace_back(t, a.value().progress * 100.0);
        if (a.value().state == exec::TaskState::kCompleted &&
            result.completion_a < 0) {
          result.completion_a = to_seconds(a.value().completion_time);
        }
      }
      auto b = exec_b.query("primes-1");
      if (b.is_ok()) {
        result.progress_steered.emplace_back(t, b.value().progress * 100.0);
        if (b.value().state == exec::TaskState::kCompleted &&
            result.completion_steered < 0) {
          result.completion_steered = to_seconds(b.value().completion_time);
        }
      }
    });
  }
  sim.run_until(from_seconds(2001));
  // Exact completion times (the sampler may quantise).
  auto fin_a = exec_a.query("primes-1");
  if (fin_a.is_ok() && fin_a.value().completion_time != kSimTimeNever) {
    result.completion_a = to_seconds(fin_a.value().completion_time);
  }
  auto fin_b = exec_b.query("primes-1");
  if (fin_b.is_ok() && fin_b.value().completion_time != kSimTimeNever) {
    result.completion_steered = to_seconds(fin_b.value().completion_time);
  }
  return result;
}

void print_series(const char* label, const std::vector<std::pair<double, double>>& xs,
                  double step) {
  std::printf("%s\n  t_s  : ", label);
  for (const auto& [t, p] : xs) {
    if (static_cast<long>(t) % static_cast<long>(step) == 0) std::printf("%6.0f", t);
  }
  std::printf("\n  prog%%: ");
  for (const auto& [t, p] : xs) {
    if (static_cast<long>(t) % static_cast<long>(step) == 0) std::printf("%6.1f", p);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  set_log_level(LogLevel::kWarn);  // keep demo output clean
  std::printf("Figure 7: Job Completion at different sites\n");
  std::printf("(283 s prime job; site A background load %.0f %%; site B free)\n\n",
              kSiteALoad * 100);

  std::printf("estimated completion on a free CPU: %.0f s (dashed line)\n\n",
              kJobSeconds);

  const RunResult steered = run_scenario(/*auto_steer=*/true, /*checkpointable=*/false);
  print_series("job at site A (significant CPU load):", steered.progress_a, 100);
  std::printf("\n");
  print_series("steered copy at site B:", steered.progress_steered, 100);

  std::printf("\nsteering decision (move A -> B) at : %7.1f s\n", steered.move_time);
  std::printf("steered job completed at           : %7.1f s   (paper: 369 s)\n",
              steered.completion_steered);
  std::printf("site-A instance completed at       : %7.1f s   (ran to completion "
              "under load)\n",
              steered.completion_a);

  const RunResult ckpt = run_scenario(true, /*checkpointable=*/true);
  std::printf("\nwith checkpointing (flocking-style migration, progress carried):\n");
  std::printf("steered job completed at           : %7.1f s   (paper: \"even "
              "quicker than 369 s\")\n",
              ckpt.completion_steered);

  const RunResult unsteered = run_scenario(/*auto_steer=*/false, false);
  std::printf("\nwithout steering (baseline)        : %7.1f s\n",
              unsteered.completion_a);

  const double speedup = unsteered.completion_a / steered.completion_steered;
  std::printf("\nsteering speedup over loaded site  : %7.2fx\n", speedup);
  return 0;
}
