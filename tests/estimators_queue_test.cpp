#include "estimators/queue_time_estimator.h"

#include <gtest/gtest.h>

#include "sim/load.h"

namespace gae::estimators {
namespace {

exec::TaskSpec spec(const std::string& id, double work, int priority = 0) {
  exec::TaskSpec s;
  s.id = id;
  s.work_seconds = work;
  s.priority = priority;
  return s;
}

class QueueEstimatorTest : public ::testing::Test {
 protected:
  QueueEstimatorTest() {
    grid_.add_site("s").add_node("n0", 1.0, nullptr);
    service_ = std::make_unique<exec::ExecutionService>(sim_, grid_, "s");
    db_ = std::make_shared<EstimateDatabase>();
  }

  sim::Simulation sim_;
  sim::Grid grid_;
  std::unique_ptr<exec::ExecutionService> service_;
  std::shared_ptr<EstimateDatabase> db_;
};

TEST_F(QueueEstimatorTest, UnknownTaskIsError) {
  QueueTimeEstimator est(*service_, db_);
  EXPECT_EQ(est.estimate("nope").status().code(), StatusCode::kNotFound);
}

TEST_F(QueueEstimatorTest, RunningTaskWaitsZero) {
  ASSERT_TRUE(service_->submit(spec("t1", 100)).is_ok());
  sim_.run_until(from_seconds(1));
  QueueTimeEstimator est(*service_, db_);
  auto r = est.estimate("t1");
  ASSERT_TRUE(r.is_ok());
  EXPECT_DOUBLE_EQ(r.value().seconds, 0.0);
  EXPECT_EQ(r.value().tasks_ahead, 0u);
}

TEST_F(QueueEstimatorTest, SumsRemainingOfTasksAhead) {
  // running (est 100), then high-priority queued (est 50), then the target.
  ASSERT_TRUE(service_->submit(spec("running", 100, 0)).is_ok());
  db_->put("running", 100);
  sim_.run_until(from_seconds(20));  // running has 20 s elapsed
  ASSERT_TRUE(service_->submit(spec("high", 50, 5)).is_ok());
  db_->put("high", 50);
  ASSERT_TRUE(service_->submit(spec("target", 10, 1)).is_ok());

  QueueTimeEstimator est(*service_, db_);
  auto r = est.estimate("target");
  ASSERT_TRUE(r.is_ok());
  // running: 100 - 20 = 80 remaining; high: 50. Total 130.
  EXPECT_NEAR(r.value().seconds, 130.0, 1e-6);
  EXPECT_EQ(r.value().tasks_ahead, 2u);

  // The paper's formula tracks the actual start time on a 1-node pool:
  sim_.run();
  const SimTime started = service_->query("target").value().start_time;
  EXPECT_NEAR(to_seconds(started - from_seconds(20)), 130.0, 1.0);
}

TEST_F(QueueEstimatorTest, EqualPriorityAheadCountsByOption) {
  ASSERT_TRUE(service_->submit(spec("running", 100)).is_ok());
  db_->put("running", 100);
  ASSERT_TRUE(service_->submit(spec("ahead", 30, 1)).is_ok());
  db_->put("ahead", 30);
  ASSERT_TRUE(service_->submit(spec("target", 10, 1)).is_ok());

  QueueTimeOptions with;
  with.include_equal_priority_ahead = true;
  EXPECT_NEAR(QueueTimeEstimator(*service_, db_, with).estimate("target").value().seconds,
              130.0, 1e-6);

  QueueTimeOptions without;
  without.include_equal_priority_ahead = false;
  // Paper-faithful: only strictly higher priorities + running tasks.
  EXPECT_NEAR(
      QueueTimeEstimator(*service_, db_, without).estimate("target").value().seconds,
      100.0, 1e-6);
}

TEST_F(QueueEstimatorTest, LowerPriorityQueuedTasksIgnored) {
  ASSERT_TRUE(service_->submit(spec("running", 100)).is_ok());
  db_->put("running", 100);
  ASSERT_TRUE(service_->submit(spec("target", 10, 5)).is_ok());
  ASSERT_TRUE(service_->submit(spec("low", 500, 0)).is_ok());
  db_->put("low", 500);

  QueueTimeEstimator est(*service_, db_);
  EXPECT_NEAR(est.estimate("target").value().seconds, 100.0, 1e-6);
}

TEST_F(QueueEstimatorTest, SuspendedTasksDoNotCount) {
  ASSERT_TRUE(service_->submit(spec("running", 100)).is_ok());
  db_->put("running", 100);
  ASSERT_TRUE(service_->submit(spec("parked", 300, 9)).is_ok());
  db_->put("parked", 300);
  ASSERT_TRUE(service_->suspend("parked").is_ok());
  ASSERT_TRUE(service_->submit(spec("target", 10, 1)).is_ok());

  QueueTimeEstimator est(*service_, db_);
  EXPECT_NEAR(est.estimate("target").value().seconds, 100.0, 1e-6);
}

TEST_F(QueueEstimatorTest, FallbackEstimateForUnknownTasks) {
  ASSERT_TRUE(service_->submit(spec("running", 100)).is_ok());
  // No db entry for "running".
  ASSERT_TRUE(service_->submit(spec("target", 10, 0)).is_ok());
  QueueTimeOptions opts;
  opts.fallback_estimate_seconds = 250.0;
  QueueTimeEstimator est(*service_, db_, opts);
  EXPECT_NEAR(est.estimate("target").value().seconds, 250.0, 1e-6);
}

TEST_F(QueueEstimatorTest, DivideByNodesSpreadsBacklog) {
  sim::Grid grid;
  auto& site = grid.add_site("multi");
  site.add_node("n0", 1.0, nullptr);
  site.add_node("n1", 1.0, nullptr);
  exec::ExecutionService service(sim_, grid, "multi");
  auto db = std::make_shared<EstimateDatabase>();

  ASSERT_TRUE(service.submit(spec("r1", 100)).is_ok());
  ASSERT_TRUE(service.submit(spec("r2", 100)).is_ok());
  ASSERT_TRUE(service.submit(spec("q1", 100, 1)).is_ok());
  ASSERT_TRUE(service.submit(spec("target", 10, 0)).is_ok());
  for (const char* id : {"r1", "r2", "q1"}) db->put(id, 100);

  QueueTimeOptions plain;
  EXPECT_NEAR(QueueTimeEstimator(service, db, plain).estimate("target").value().seconds,
              300.0, 1e-6);
  QueueTimeOptions divided;
  divided.divide_by_nodes = true;
  EXPECT_NEAR(QueueTimeEstimator(service, db, divided).estimate("target").value().seconds,
              150.0, 1e-6);
}

TEST_F(QueueEstimatorTest, OverdueTasksContributeZeroNotNegative) {
  ASSERT_TRUE(service_->submit(spec("running", 100)).is_ok());
  db_->put("running", 30);  // estimate was far too low
  sim_.run_until(from_seconds(60));  // elapsed 60 > estimate 30
  ASSERT_TRUE(service_->submit(spec("target", 10, 0)).is_ok());
  QueueTimeEstimator est(*service_, db_);
  EXPECT_DOUBLE_EQ(est.estimate("target").value().seconds, 0.0);
}

}  // namespace
}  // namespace gae::estimators
