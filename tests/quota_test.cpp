#include "quota/quota_service.h"

#include <gtest/gtest.h>

namespace gae::quota {
namespace {

TEST(Quota, SiteRates) {
  QuotaAccountingService q;
  EXPECT_FALSE(q.site_rate("a").is_ok());
  q.set_site_rate("a", 2.0);
  EXPECT_DOUBLE_EQ(q.site_rate("a").value(), 2.0);
  q.set_site_rate("a", 3.0);  // update
  EXPECT_DOUBLE_EQ(q.site_rate("a").value(), 3.0);
}

TEST(Quota, CheapestSite) {
  QuotaAccountingService q;
  q.set_site_rate("a", 3.0);
  q.set_site_rate("b", 1.0);
  q.set_site_rate("c", 2.0);
  EXPECT_EQ(q.cheapest_site({"a", "b", "c"}).value(), "b");
  EXPECT_EQ(q.cheapest_site({"a", "c"}).value(), "c");
  // Unpriced candidates are skipped; all-unpriced is NOT_FOUND.
  EXPECT_EQ(q.cheapest_site({"a", "unknown"}).value(), "a");
  EXPECT_EQ(q.cheapest_site({"zz"}).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(q.cheapest_site({}).status().code(), StatusCode::kNotFound);
}

TEST(Quota, EstimateCost) {
  QuotaAccountingService q;
  q.set_site_rate("a", 2.5);
  EXPECT_DOUBLE_EQ(q.estimate_cost("a", 4.0).value(), 10.0);
  EXPECT_FALSE(q.estimate_cost("zz", 1.0).is_ok());
}

TEST(Quota, Accounts) {
  QuotaAccountingService q;
  ASSERT_TRUE(q.create_account("alice", 100).is_ok());
  EXPECT_EQ(q.create_account("alice", 0).code(), StatusCode::kAlreadyExists);
  EXPECT_DOUBLE_EQ(q.balance("alice").value(), 100.0);
  EXPECT_FALSE(q.balance("bob").is_ok());
  ASSERT_TRUE(q.grant("alice", 50).is_ok());
  EXPECT_DOUBLE_EQ(q.balance("alice").value(), 150.0);
  EXPECT_EQ(q.grant("bob", 1).code(), StatusCode::kNotFound);
}

TEST(Quota, ChargeDeductsAndLogs) {
  QuotaAccountingService q;
  q.set_site_rate("a", 2.0);
  q.create_account("alice", 100);
  ASSERT_TRUE(q.charge("alice", "a", 10.0).is_ok());  // 20 credits
  EXPECT_DOUBLE_EQ(q.balance("alice").value(), 80.0);
  ASSERT_EQ(q.charge_log().size(), 1u);
  EXPECT_EQ(q.charge_log()[0].user, "alice");
  EXPECT_DOUBLE_EQ(q.charge_log()[0].cost, 20.0);
}

TEST(Quota, InsufficientCreditRejectedAtomically) {
  QuotaAccountingService q;
  q.set_site_rate("a", 10.0);
  q.create_account("alice", 50);
  EXPECT_EQ(q.charge("alice", "a", 10.0).code(), StatusCode::kResourceExhausted);
  EXPECT_DOUBLE_EQ(q.balance("alice").value(), 50.0);  // nothing deducted
  EXPECT_TRUE(q.charge_log().empty());
}

TEST(Quota, ChargeValidation) {
  QuotaAccountingService q;
  q.create_account("alice", 100);
  EXPECT_EQ(q.charge("bob", "a", 1).code(), StatusCode::kNotFound);
  EXPECT_EQ(q.charge("alice", "unpriced", 1).code(), StatusCode::kNotFound);
}

TEST(Quota, CanAfford) {
  QuotaAccountingService q;
  q.set_site_rate("a", 2.0);
  q.create_account("alice", 100);
  EXPECT_TRUE(q.can_afford("alice", "a", 50.0).value());
  EXPECT_FALSE(q.can_afford("alice", "a", 51.0).value());
  EXPECT_FALSE(q.can_afford("bob", "a", 1.0).is_ok());
}

}  // namespace
}  // namespace gae::quota
