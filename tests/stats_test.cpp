#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace gae {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(42.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 42.0);
  EXPECT_DOUBLE_EQ(s.max(), 42.0);
}

TEST(RunningStats, KnownMeanAndVariance) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 = 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.sum(), 40.0, 1e-9);
}

TEST(RunningStats, MergeMatchesCombinedStream) {
  Rng rng(123);
  RunningStats all, a, b;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.normal(10, 3);
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  const double mean = a.mean();
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), mean);
}

TEST(LinearRegression, PerfectLine) {
  LinearRegression reg;
  for (double x = 0; x < 10; ++x) reg.add(x, 3.0 * x + 7.0);
  const LinearFit fit = reg.fit();
  ASSERT_TRUE(fit.valid);
  EXPECT_NEAR(fit.slope, 3.0, 1e-9);
  EXPECT_NEAR(fit.intercept, 7.0, 1e-9);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-9);
  EXPECT_NEAR(fit.predict(20.0), 67.0, 1e-9);
}

TEST(LinearRegression, TooFewPointsInvalid) {
  LinearRegression reg;
  EXPECT_FALSE(reg.fit().valid);
  reg.add(1.0, 2.0);
  EXPECT_FALSE(reg.fit().valid);
}

TEST(LinearRegression, AllSameXInvalid) {
  LinearRegression reg;
  reg.add(5.0, 1.0);
  reg.add(5.0, 2.0);
  reg.add(5.0, 3.0);
  EXPECT_FALSE(reg.fit().valid);
}

TEST(LinearRegression, NoisyLineRecoversSlope) {
  Rng rng(7);
  LinearRegression reg;
  for (int i = 0; i < 2000; ++i) {
    const double x = rng.uniform(0, 100);
    reg.add(x, 2.5 * x + 10 + rng.normal(0, 1));
  }
  const LinearFit fit = reg.fit();
  ASSERT_TRUE(fit.valid);
  EXPECT_NEAR(fit.slope, 2.5, 0.05);
  EXPECT_GT(fit.r_squared, 0.99);
}

TEST(LinearRegression, LargeMagnitudeTimestampsKeepPrecision) {
  // Regression: the old sxx - sx^2/n form cancelled catastrophically when x
  // is an epoch-microsecond timestamp (~1.7e15) with small deltas, flipping
  // slopes and even dividing by a negative "variance". The centered
  // accumulation recovers the exact line.
  const double epoch_us = 1.7e15;
  LinearRegression reg;
  for (int i = 0; i < 100; ++i) {
    const double x = epoch_us + 1000.0 * i;  // one sample per millisecond
    reg.add(x, 0.25 * (x - epoch_us) + 42.0);
  }
  const LinearFit fit = reg.fit();
  ASSERT_TRUE(fit.valid);
  EXPECT_NEAR(fit.slope, 0.25, 1e-6);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-9);
  EXPECT_NEAR(fit.predict(epoch_us + 200'000.0), 0.25 * 200'000.0 + 42.0, 1e-3);
}

TEST(LinearRegression, LargeXOffsetIdenticalXStaysInvalid) {
  // All-identical large-magnitude x must still report "slope undefined"
  // rather than fabricating one out of rounding noise.
  LinearRegression reg;
  for (int i = 0; i < 10; ++i) reg.add(1.7e15, static_cast<double>(i));
  EXPECT_FALSE(reg.fit().valid);
}

TEST(Percentile, EmptyAndSingle) {
  EXPECT_DOUBLE_EQ(percentile({}, 50), 0.0);
  EXPECT_DOUBLE_EQ(percentile({5.0}, 0), 5.0);
  EXPECT_DOUBLE_EQ(percentile({5.0}, 100), 5.0);
}

TEST(Percentile, InterpolatesAndClamps) {
  std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 25), 2.0);
  EXPECT_DOUBLE_EQ(percentile(v, 110), 5.0);   // clamped
  EXPECT_DOUBLE_EQ(percentile(v, -10), 1.0);   // clamped
  EXPECT_DOUBLE_EQ(percentile({1, 2}, 50), 1.5);
}

TEST(Percentile, UnsortedInput) {
  EXPECT_DOUBLE_EQ(percentile({9, 1, 5}, 50), 5.0);
}

TEST(MeanOf, Basics) {
  EXPECT_DOUBLE_EQ(mean_of({}), 0.0);
  EXPECT_DOUBLE_EQ(mean_of({2, 4, 6}), 4.0);
}

/// Property sweep: Welford matches the naive two-pass computation for
/// assorted distributions.
class StatsPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StatsPropertyTest, WelfordMatchesTwoPass) {
  Rng rng(GetParam());
  std::vector<double> xs;
  RunningStats s;
  const int n = 100 + static_cast<int>(rng.uniform_int(0, 400));
  for (int i = 0; i < n; ++i) {
    const double x = rng.lognormal(2.0, 1.5);
    xs.push_back(x);
    s.add(x);
  }
  double mean = 0;
  for (double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  double var = 0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= static_cast<double>(xs.size() - 1);
  EXPECT_NEAR(s.mean(), mean, 1e-9 * std::abs(mean));
  EXPECT_NEAR(s.variance(), var, 1e-6 * var);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StatsPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace gae
