// Write-ahead log edge cases and crash-consistent service state.
//
// The WAL half of the robustness layer: framing round-trips, torn tails,
// mid-log corruption, snapshot+truncate, and the recover() paths of the
// three adopters (jobmon DBManager, estimator database, task history).
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "common/kvcodec.h"
#include "common/wal.h"
#include "estimators/estimate_db.h"
#include "estimators/history.h"
#include "jobmon/db_manager.h"
#include "monalisa/repository.h"

namespace gae {
namespace {

// ---------------------------------------------------------------------------
// CRC + kv codec
// ---------------------------------------------------------------------------

TEST(Crc32, MatchesKnownVectors) {
  // The classic IEEE 802.3 check value.
  EXPECT_EQ(crc32(std::string("123456789")), 0xCBF43926u);
  EXPECT_EQ(crc32(std::string("")), 0x00000000u);
  // Sensitive to every byte.
  EXPECT_NE(crc32(std::string("a")), crc32(std::string("b")));
}

TEST(KvCodec, RoundTripsAwkwardCharacters) {
  std::map<std::string, std::string> fields = {
      {"plain", "value"},
      {"spaces and = signs", "100% weird\nnewline\rcarriage"},
      {"empty", ""},
  };
  auto decoded = kv::decode(kv::encode(fields));
  ASSERT_TRUE(decoded.is_ok()) << decoded.status();
  EXPECT_EQ(decoded.value(), fields);
}

TEST(KvCodec, RejectsMalformedLine) {
  EXPECT_FALSE(kv::decode("no-equals-sign").is_ok());
  EXPECT_FALSE(kv::decode("bad%zzescape=1").is_ok());
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

TEST(Wal, EmptyLogReadsAsEmpty) {
  MemoryWalStorage storage;
  Wal wal(&storage);
  auto read = wal.read();
  ASSERT_TRUE(read.is_ok()) << read.status();
  EXPECT_TRUE(read.value().records.empty());
  EXPECT_FALSE(read.value().torn_tail);
  EXPECT_FALSE(read.value().corrupt);
  EXPECT_EQ(read.value().replay_start(), 0u);
  EXPECT_EQ(read.value().snapshot_index(), WalReadResult::npos);
}

TEST(Wal, MissingFileReadsAsEmpty) {
  FileWalStorage storage(::testing::TempDir() + "gae_wal_never_written.wal");
  Wal wal(&storage);
  auto read = wal.read();
  ASSERT_TRUE(read.is_ok()) << read.status();
  EXPECT_TRUE(read.value().records.empty());
}

TEST(Wal, AppendsRoundTripInOrder) {
  MemoryWalStorage storage;
  Wal wal(&storage);
  const std::string binary("three\nwith\0binary", 17);  // embedded NUL
  ASSERT_TRUE(wal.append("one").is_ok());
  ASSERT_TRUE(wal.append("").is_ok());  // empty payloads are legal
  ASSERT_TRUE(wal.append(binary).is_ok());
  auto read = wal.read();
  ASSERT_TRUE(read.is_ok());
  ASSERT_EQ(read.value().records.size(), 3u);
  EXPECT_EQ(read.value().records[0].payload, "one");
  EXPECT_EQ(read.value().records[1].payload, "");
  EXPECT_EQ(read.value().records[2].payload, binary);
  EXPECT_EQ(read.value().valid_bytes, storage.bytes().size());
  EXPECT_EQ(wal.appends(), 3u);
}

TEST(Wal, SnapshotTruncatesAndReplayStartsAfterIt) {
  MemoryWalStorage storage;
  Wal wal(&storage);
  ASSERT_TRUE(wal.append("old-1").is_ok());
  ASSERT_TRUE(wal.append("old-2").is_ok());
  ASSERT_TRUE(wal.write_snapshot("state-at-2").is_ok());
  ASSERT_TRUE(wal.append("tail-1").is_ok());

  auto read = wal.read();
  ASSERT_TRUE(read.is_ok());
  const WalReadResult& log = read.value();
  ASSERT_EQ(log.records.size(), 2u);  // history truncated
  EXPECT_EQ(log.records[0].type, WalRecord::Type::kSnapshot);
  EXPECT_EQ(log.records[0].payload, "state-at-2");
  EXPECT_EQ(log.snapshot_index(), 0u);
  EXPECT_EQ(log.replay_start(), 0u);  // fold starts at the snapshot
  EXPECT_EQ(log.records[1].payload, "tail-1");
}

TEST(Wal, SnapshotWithEmptyTail) {
  MemoryWalStorage storage;
  Wal wal(&storage);
  ASSERT_TRUE(wal.append("x").is_ok());
  ASSERT_TRUE(wal.write_snapshot("snap").is_ok());

  auto read = wal.read();
  ASSERT_TRUE(read.is_ok());
  const WalReadResult& log = read.value();
  ASSERT_EQ(log.records.size(), 1u);
  EXPECT_EQ(log.snapshot_index(), 0u);
  EXPECT_EQ(log.replay_start(), 0u);
  EXPECT_FALSE(log.torn_tail);
  EXPECT_FALSE(log.corrupt);
}

TEST(Wal, TornTailIsDroppedSilently) {
  MemoryWalStorage storage;
  Wal wal(&storage);
  ASSERT_TRUE(wal.append("kept").is_ok());
  const std::size_t intact = storage.bytes().size();
  ASSERT_TRUE(wal.append("torn-away").is_ok());

  // Crash mid-append: every truncation point inside the second frame must
  // yield the same one-record prefix with torn_tail set.
  const std::string full = storage.bytes();
  for (std::size_t cut = intact + 1; cut < full.size(); ++cut) {
    WalReadResult log = Wal::decode(full.substr(0, cut));
    ASSERT_EQ(log.records.size(), 1u) << "cut at " << cut;
    EXPECT_EQ(log.records[0].payload, "kept");
    EXPECT_TRUE(log.torn_tail) << "cut at " << cut;
    EXPECT_FALSE(log.corrupt) << "cut at " << cut;
    EXPECT_EQ(log.valid_bytes, intact);
  }
}

TEST(Wal, CorruptMiddleRecordStopsReplayAndKeepsPrefix) {
  MemoryWalStorage storage;
  Wal wal(&storage);
  ASSERT_TRUE(wal.append("first").is_ok());
  const std::size_t first_end = storage.bytes().size();
  ASSERT_TRUE(wal.append("second").is_ok());
  ASSERT_TRUE(wal.append("third").is_ok());

  // Flip one payload byte inside the middle record (header is 9 bytes).
  storage.mutable_bytes()[first_end + 9] ^= 0x40;

  WalReadResult log = Wal::decode(storage.bytes());
  ASSERT_EQ(log.records.size(), 1u);
  EXPECT_EQ(log.records[0].payload, "first");
  EXPECT_TRUE(log.corrupt);
  EXPECT_FALSE(log.torn_tail);
  EXPECT_EQ(log.valid_bytes, first_end);
}

TEST(Wal, CorruptLengthFieldDoesNotOverread) {
  MemoryWalStorage storage;
  Wal wal(&storage);
  ASSERT_TRUE(wal.append("only").is_ok());
  // An absurd length in the header must read as a torn tail (frame extends
  // past the log), never as an out-of-bounds access.
  storage.mutable_bytes()[0] = static_cast<char>(0xFF);
  storage.mutable_bytes()[1] = static_cast<char>(0xFF);
  WalReadResult log = Wal::decode(storage.bytes());
  EXPECT_TRUE(log.records.empty());
  EXPECT_TRUE(log.torn_tail);
}

TEST(Wal, CorruptLengthPrefixMidLogIsCorruptionNotTornTail) {
  // Found by the DST seed sweep (dst_sweep --seed 546): bit rot in a
  // frame's length prefix inflates the length past end-of-log, which used
  // to read as a benign torn tail — recovery silently dropped every intact
  // frame behind the damage and the store was never quarantined, so a
  // promoted standby served a truncated view of acknowledged writes. Valid
  // frames after the lying length prefix prove it is corruption: a genuine
  // torn tail is the suffix of one partial append, with nothing decodable
  // behind it.
  MemoryWalStorage storage;
  Wal wal(&storage);
  ASSERT_TRUE(wal.append("first").is_ok());
  const std::size_t first_end = storage.bytes().size();
  ASSERT_TRUE(wal.append("second").is_ok());
  ASSERT_TRUE(wal.append("third").is_ok());

  // Flip a high bit in the second frame's length field.
  storage.mutable_bytes()[first_end + 2] ^= 0x40;

  WalReadResult log = Wal::decode(storage.bytes());
  ASSERT_EQ(log.records.size(), 1u);
  EXPECT_EQ(log.records[0].payload, "first");
  EXPECT_TRUE(log.corrupt);
  EXPECT_FALSE(log.torn_tail);
  EXPECT_EQ(log.valid_bytes, first_end);
}

TEST(Wal, FileStorageRoundTripsRecordLargerThanReadBuffer) {
  const std::string path = ::testing::TempDir() + "gae_wal_large_record.wal";
  std::remove(path.c_str());
  FileWalStorage storage(path);
  Wal wal(&storage);

  // read_all() streams through a 4096-byte buffer; this record spans many
  // buffer refills and must still round-trip bit-exactly.
  std::string big(100'000, '\0');
  for (std::size_t i = 0; i < big.size(); ++i) big[i] = static_cast<char>(i % 251);
  ASSERT_TRUE(wal.append("small-before").is_ok());
  ASSERT_TRUE(wal.append(big).is_ok());
  ASSERT_TRUE(wal.append("small-after").is_ok());

  auto read = wal.read();
  ASSERT_TRUE(read.is_ok()) << read.status();
  ASSERT_EQ(read.value().records.size(), 3u);
  EXPECT_EQ(read.value().records[1].payload, big);
  EXPECT_EQ(read.value().records[2].payload, "small-after");
  std::remove(path.c_str());
}

TEST(Wal, FileStorageReplaceIsEffective) {
  const std::string path = ::testing::TempDir() + "gae_wal_replace.wal";
  std::remove(path.c_str());
  FileWalStorage storage(path);
  Wal wal(&storage);
  ASSERT_TRUE(wal.append("before").is_ok());
  ASSERT_TRUE(wal.write_snapshot("snap").is_ok());
  auto read = wal.read();
  ASSERT_TRUE(read.is_ok());
  ASSERT_EQ(read.value().records.size(), 1u);
  EXPECT_EQ(read.value().records[0].payload, "snap");
  std::remove(path.c_str());
}

TEST(Wal, TornSnapshotFrameKeepsPriorRecords) {
  // A snapshot that tears mid-frame (possible only with a non-atomic replace)
  // must degrade to the pre-snapshot log prefix, never to an empty or corrupt
  // store. decode() treats the partial snapshot frame as a torn tail.
  MemoryWalStorage storage;
  Wal wal(&storage);
  ASSERT_TRUE(wal.append("rec-1").is_ok());
  ASSERT_TRUE(wal.append("rec-2").is_ok());
  const std::string pre_snapshot = storage.bytes();
  const std::string snap_frame =
      Wal::encode_frame(WalRecord::Type::kSnapshot, "folded-state");

  for (std::size_t cut = 1; cut < snap_frame.size(); ++cut) {
    WalReadResult log = Wal::decode(pre_snapshot + snap_frame.substr(0, cut));
    ASSERT_EQ(log.records.size(), 2u) << "cut at " << cut;
    EXPECT_EQ(log.records[1].payload, "rec-2");
    EXPECT_TRUE(log.torn_tail) << "cut at " << cut;
    EXPECT_EQ(log.replay_start(), 0u);  // fold replays the surviving prefix
  }
}

TEST(Wal, FileStorageReplaceSurvivesStaleTmpFromCrashedSnapshot) {
  // Crash window of save_snapshot(): the writer died after producing the
  // .tmp but before the rename. The live log must read back untouched, and
  // the next replace must succeed over the stale .tmp.
  const std::string path = ::testing::TempDir() + "gae_wal_torn_snap.wal";
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
  FileWalStorage storage(path);
  Wal wal(&storage);
  ASSERT_TRUE(wal.append("pre-crash-1").is_ok());
  ASSERT_TRUE(wal.append("pre-crash-2").is_ok());

  // Simulated crash artifact: a half-written snapshot frame in the tmp file.
  const std::string half =
      Wal::encode_frame(WalRecord::Type::kSnapshot, "half-written");
  std::FILE* tmp = std::fopen((path + ".tmp").c_str(), "wb");
  ASSERT_NE(tmp, nullptr);
  std::fwrite(half.data(), 1, half.size() / 2, tmp);
  std::fclose(tmp);

  // Recovery ignores the tmp entirely: the real log is intact.
  auto read = wal.read();
  ASSERT_TRUE(read.is_ok());
  ASSERT_EQ(read.value().records.size(), 2u);
  EXPECT_EQ(read.value().records[0].payload, "pre-crash-1");
  EXPECT_FALSE(read.value().torn_tail);

  // The next snapshot overwrites the stale tmp and lands atomically.
  ASSERT_TRUE(wal.write_snapshot("clean-state").is_ok());
  read = wal.read();
  ASSERT_TRUE(read.is_ok());
  ASSERT_EQ(read.value().records.size(), 1u);
  EXPECT_EQ(read.value().records[0].type, WalRecord::Type::kSnapshot);
  EXPECT_EQ(read.value().records[0].payload, "clean-state");
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
}

// ---------------------------------------------------------------------------
// DBManager crash-consistency
// ---------------------------------------------------------------------------

exec::TaskInfo make_info(const std::string& id, exec::TaskState state, double cpu) {
  exec::TaskInfo info;
  info.spec.id = id;
  info.spec.job_id = "job-1";
  info.spec.owner = "alice";
  info.spec.executable = "primes";
  info.spec.priority = 3;
  info.spec.input_files = {"a.root", "b;weird:name.root"};
  info.spec.attributes = {{"queue", "q=1"}, {"nodes", "2"}};
  info.spec.output_bytes = 42;
  info.spec.checkpointable = true;
  info.state = state;
  info.submit_time = from_seconds(1);
  info.start_time = from_seconds(2);
  info.cpu_seconds_used = cpu;
  info.progress = cpu / 100.0;
  info.queue_position = -1;
  info.node = "a0";
  info.input_bytes_transferred = 7;
  info.detail = "detail with spaces = and %";
  return info;
}

TEST(JobRecordCodec, RoundTripsEveryField) {
  jobmon::JobRecord rec;
  rec.info = make_info("t 1", exec::TaskState::kRunning, 12.5);
  rec.site = "site-a";
  rec.updated_at = from_seconds(30);

  auto decoded = jobmon::decode_job_record(jobmon::encode_job_record("t 1", rec));
  ASSERT_TRUE(decoded.is_ok()) << decoded.status();
  EXPECT_EQ(decoded.value().first, "t 1");
  const jobmon::JobRecord& out = decoded.value().second;
  EXPECT_EQ(out.site, "site-a");
  EXPECT_EQ(out.updated_at, from_seconds(30));
  EXPECT_EQ(out.info.spec.input_files, rec.info.spec.input_files);
  EXPECT_EQ(out.info.spec.attributes, rec.info.spec.attributes);
  EXPECT_EQ(out.info.detail, rec.info.detail);
  // The canonical line is stable: re-encoding reproduces it byte-for-byte.
  EXPECT_EQ(jobmon::encode_job_record("t 1", out),
            jobmon::encode_job_record("t 1", rec));
}

TEST(DBManagerWal, RecoverRebuildsSnapshotPlusTail) {
  MemoryWalStorage storage;
  Wal wal(&storage);
  jobmon::DBManager db(nullptr, &wal);
  db.update("t1", make_info("t1", exec::TaskState::kRunning, 10), "site-a",
            from_seconds(10));
  db.update("t2", make_info("t2", exec::TaskState::kQueued, 0), "site-b",
            from_seconds(11));
  ASSERT_TRUE(db.save_snapshot().is_ok());
  db.update("t1", make_info("t1", exec::TaskState::kCompleted, 100), "site-a",
            from_seconds(50));
  db.update("t3", make_info("t3", exec::TaskState::kStaging, 0), "site-b",
            from_seconds(51));
  const std::string pre_crash = db.export_state();

  // A fresh instance over the same log recovers the exact pre-crash bytes.
  jobmon::DBManager revived(nullptr, &wal);
  ASSERT_TRUE(revived.recover().is_ok());
  EXPECT_EQ(revived.export_state(), pre_crash);
  EXPECT_EQ(revived.size(), 3u);
  EXPECT_EQ(revived.get("t1").value().info.state, exec::TaskState::kCompleted);

  // recover(); recover() is a fixed point.
  ASSERT_TRUE(revived.recover().is_ok());
  EXPECT_EQ(revived.export_state(), pre_crash);
}

TEST(DBManagerWal, RecoverToleratesTornTailAndKeepsPrefixOnCorruption) {
  MemoryWalStorage storage;
  Wal wal(&storage);
  jobmon::DBManager db(nullptr, &wal);
  db.update("t1", make_info("t1", exec::TaskState::kRunning, 1), "site-a",
            from_seconds(1));
  const std::string after_t1 = db.export_state();
  const std::size_t t1_bytes = storage.bytes().size();
  db.update("t2", make_info("t2", exec::TaskState::kRunning, 2), "site-a",
            from_seconds(2));

  // Torn tail: the t2 append was cut mid-write.
  std::string full = storage.bytes();
  storage.mutable_bytes() = full.substr(0, full.size() - 3);
  jobmon::DBManager torn(nullptr, &wal);
  ASSERT_TRUE(torn.recover().is_ok());
  EXPECT_EQ(torn.export_state(), after_t1);

  // Corruption inside t2's frame: replay stops there, t1 survives.
  storage.mutable_bytes() = full;
  storage.mutable_bytes()[t1_bytes + 9] ^= 0x01;
  jobmon::DBManager corrupted(nullptr, &wal);
  ASSERT_TRUE(corrupted.recover().is_ok());
  EXPECT_EQ(corrupted.export_state(), after_t1);
}

TEST(DBManagerWal, RecoverFromEmptyLogYieldsEmptyRepository) {
  MemoryWalStorage storage;
  Wal wal(&storage);
  jobmon::DBManager db(nullptr, &wal);
  db.update("stale", make_info("stale", exec::TaskState::kRunning, 1), "site-a",
            from_seconds(1));
  // recover() replaces in-memory state entirely — an empty log means an
  // empty repository, not a merge.
  storage.mutable_bytes().clear();
  ASSERT_TRUE(db.recover().is_ok());
  EXPECT_EQ(db.size(), 0u);
}

// ---------------------------------------------------------------------------
// EstimateDatabase + TaskHistoryStore crash-consistency
// ---------------------------------------------------------------------------

TEST(EstimateDbWal, RecoverReplaysPutsAndErases) {
  MemoryWalStorage storage;
  Wal wal(&storage);
  estimators::EstimateDatabase db(&wal);
  db.put("t1", 100.5);
  db.put("t2", 200.25);
  ASSERT_TRUE(db.save_snapshot().is_ok());
  db.put("t3", 1e-9);
  db.erase("t2");
  db.put("t1", 101.0);  // overwrite after snapshot
  const std::string pre_crash = db.export_state();

  estimators::EstimateDatabase revived(&wal);
  ASSERT_TRUE(revived.recover().is_ok());
  EXPECT_EQ(revived.export_state(), pre_crash);
  EXPECT_FALSE(revived.has("t2"));
  EXPECT_DOUBLE_EQ(revived.get("t1").value(), 101.0);
  EXPECT_DOUBLE_EQ(revived.get("t3").value(), 1e-9);

  ASSERT_TRUE(revived.recover().is_ok());  // idempotent
  EXPECT_EQ(revived.export_state(), pre_crash);
}

TEST(HistoryWal, RecoverReappliesTrimming) {
  MemoryWalStorage storage;
  Wal wal(&storage);
  estimators::TaskHistoryStore store(/*max_entries=*/3);
  store.attach_wal(&wal);
  for (int i = 0; i < 5; ++i) {
    estimators::HistoryEntry e;
    e.runtime_seconds = 100.0 + i;
    e.recorded_at = from_seconds(i);
    e.attributes = {{"executable", "primes"}, {"n", std::to_string(i)}};
    store.add(std::move(e));
  }
  ASSERT_EQ(store.size(), 3u);  // trimmed live
  const std::string pre_crash = store.export_state();

  estimators::TaskHistoryStore revived(/*max_entries=*/3);
  revived.attach_wal(&wal);
  ASSERT_TRUE(revived.recover().is_ok());
  EXPECT_EQ(revived.export_state(), pre_crash);
  EXPECT_DOUBLE_EQ(revived.entries().front().runtime_seconds, 102.0);

  // Snapshot compacts; a second recovery still lands on the same bytes.
  ASSERT_TRUE(revived.save_snapshot().is_ok());
  ASSERT_TRUE(revived.recover().is_ok());
  EXPECT_EQ(revived.export_state(), pre_crash);
}

TEST(HistoryWal, SnapshotThenTailRecovers) {
  MemoryWalStorage storage;
  Wal wal(&storage);
  estimators::TaskHistoryStore store;
  store.attach_wal(&wal);
  estimators::HistoryEntry e;
  e.runtime_seconds = 283.0;
  store.add(e);
  ASSERT_TRUE(store.save_snapshot().is_ok());
  e.runtime_seconds = 290.0;
  store.add(e);

  estimators::TaskHistoryStore revived;
  revived.attach_wal(&wal);
  ASSERT_TRUE(revived.recover().is_ok());
  ASSERT_EQ(revived.size(), 2u);
  EXPECT_DOUBLE_EQ(revived.entries()[1].runtime_seconds, 290.0);
  EXPECT_EQ(revived.export_state(), store.export_state());
}

}  // namespace
}  // namespace gae
