// Macro-integration: a simulated operations day on a multi-site grid.
//
// Diurnal background load, random node failures, DAG jobs arriving all day,
// demand-driven replication, and the steering service running both its
// Optimizer and Backup & Recovery — everything on at once. Asserts global
// invariants (all work reaches a terminal state, accounting holds, steering
// acts when it should) rather than exact timings.
#include <gtest/gtest.h>

#include <memory>

#include "estimators/recorder.h"
#include "jobmon/service.h"
#include "monalisa/repository.h"
#include "replica/replication.h"
#include "sim/load.h"
#include "sphinx/scheduler.h"
#include "steering/service.h"
#include "workload/task_generator.h"

namespace gae {
namespace {

constexpr double kDay = 86400.0;

TEST(GridDay, FullEnsembleSurvivesADay) {
  sim::Simulation sim;
  sim::Grid grid;
  Rng rng(20260704);

  // Three sites: tier-0 with the master dataset, a big day/night-loaded
  // centre, and a small flaky site.
  grid.add_site("tier0").add_node("t0-n0", 1.0, nullptr);
  grid.site("tier0").add_node("t0-n1", 1.0, nullptr);
  grid.site("tier0").store_file("master.root", 4'000'000'000);
  auto& big = grid.add_site("bigsite");
  for (int n = 0; n < 3; ++n) {
    big.add_node("big-n" + std::to_string(n), 1.2,
                 sim::make_diurnal_load(0.1, 0.85, from_seconds(kDay),
                                        from_seconds(1800), from_seconds(2 * kDay),
                                        0.25 * n));
  }
  grid.add_site("flaky").add_node("fl-n0", 0.9, nullptr);
  grid.set_default_link({60e6, from_millis(40)});

  // Execution services: the flaky site suffers random node failures but
  // checkpointable tasks restart from periodic checkpoints.
  std::map<std::string, std::unique_ptr<exec::ExecutionService>> execs;
  for (const auto& site : grid.site_names()) {
    exec::ExecOptions opts;
    if (site == "flaky") {
      opts.mean_time_between_failures = 4000;
      opts.failure_seed = 11;
      opts.checkpoint_interval_seconds = 300;
    }
    execs[site] = std::make_unique<exec::ExecutionService>(sim, grid, site, opts);
  }

  // Estimators learn online from completions at each site.
  monalisa::Repository monitoring;
  auto estimate_db = std::make_shared<estimators::EstimateDatabase>();
  std::map<std::string, std::shared_ptr<estimators::RuntimeEstimator>> ests;
  std::vector<std::unique_ptr<estimators::SiteRuntimeRecorder>> recorders;
  sphinx::SphinxScheduler scheduler(sim, grid, &monitoring, estimate_db);
  jobmon::JobMonitoringService jms(sim.clock(), &monitoring, estimate_db);
  for (const auto& site : grid.site_names()) {
    ests[site] = std::make_shared<estimators::RuntimeEstimator>(
        std::make_shared<estimators::TaskHistoryStore>());
    recorders.push_back(
        std::make_unique<estimators::SiteRuntimeRecorder>(*execs[site], ests[site]));
    scheduler.add_site(site, {execs[site].get(), ests[site]});
    jms.attach_site(site, execs[site].get());
  }

  // MonALISA farm agents publish load; replication watches staging traffic.
  std::vector<std::unique_ptr<monalisa::PeriodicSampler>> samplers;
  for (const auto& site : grid.site_names()) {
    samplers.push_back(std::make_unique<monalisa::PeriodicSampler>(
        sim, from_seconds(300), [&, site] {
          const sim::Site& s = grid.site(site);
          double load = 0;
          for (std::size_t n = 0; n < s.node_count(); ++n) {
            load += s.node(n).background_load(sim.now());
          }
          monitoring.publish(site, "cpu_load", sim.now(),
                             load / static_cast<double>(s.node_count()));
        }));
  }
  replica::ReplicaCatalog catalog(grid);
  catalog.scan(0);
  replica::ReplicationManager replication(sim, grid, catalog, {2, 2});
  for (const auto& site : grid.site_names()) replication.watch(*execs[site]);

  steering::SteeringService::Deps deps;
  deps.sim = &sim;
  deps.scheduler = &scheduler;
  deps.jobmon = &jms;
  for (const auto& site : grid.site_names()) deps.services[site] = execs[site].get();
  steering::SteeringOptions sopts;
  sopts.optimizer_interval_seconds = 120;
  sopts.min_observation_seconds = 300;
  sopts.slow_rate_threshold = 0.35;
  steering::SteeringService steering(deps, sopts);

  // The day's workload: a DAG job every ~40 virtual minutes, tasks capped to
  // an hour of CPU, half of them reading the master dataset.
  auto population = workload::ApplicationPopulation::make(rng, {});
  std::vector<std::string> job_ids;
  int arrivals = 0;
  for (double t = 0; t < kDay * 0.8; t += 2400) {
    const std::string job_id = "day-job-" + std::to_string(arrivals++);
    job_ids.push_back(job_id);
    sim.schedule_at(from_seconds(t), [&, job_id] {
      workload::DagGenOptions dopts;
      dopts.levels = 2 + static_cast<int>(rng.uniform_int(0, 1));
      dopts.max_width = 3;
      dopts.task_options.owner_prefix = "shift-crew";
      dopts.task_options.input_file_rate = 0.0;
      auto job = workload::make_dag_job(population, rng, dopts, job_id);
      for (auto& task : job.tasks) {
        task.spec.work_seconds = std::min(task.spec.work_seconds, 3600.0);
        task.spec.checkpointable = true;
        if (rng.bernoulli(0.5)) task.spec.input_files = {"master.root"};
      }
      ASSERT_TRUE(scheduler.submit(job).is_ok());
    });
  }

  sim.run_until(from_seconds(2 * kDay));
  sim.run(5'000'000);  // drain any stragglers

  // --- Invariants.
  std::size_t total_tasks = 0, completed = 0;
  for (const auto& job_id : job_ids) {
    auto status = scheduler.job_status(job_id);
    ASSERT_TRUE(status.is_ok()) << job_id;
    total_tasks += status.value().tasks_total;
    completed += status.value().tasks_completed;
    EXPECT_EQ(status.value().state, sphinx::JobState::kCompleted) << job_id;
  }
  EXPECT_EQ(completed, total_tasks);
  EXPECT_GT(total_tasks, 50u);  // the day actually contained work

  // Monitoring saw the full story.
  EXPECT_GT(jms.last_event_seq(), 4 * total_tasks - 1);  // >= 4 transitions/task
  EXPECT_GT(monitoring.event_count(), 0u);

  // The hot dataset was replicated off tier0 at least once.
  EXPECT_GE(replication.stats().replicas_created, 1u);

  // Every completed task's accounting is exact.
  for (const auto& [site, svc] : execs) {
    for (const auto& info : svc->list_tasks()) {
      if (info.state == exec::TaskState::kCompleted) {
        EXPECT_NEAR(info.cpu_seconds_used, info.spec.work_seconds, 1e-6);
      }
    }
  }
}

TEST(DagGenerator, ProducesValidSchedulableDags) {
  Rng rng(5);
  auto population = workload::ApplicationPopulation::make(rng, {});

  sim::Simulation sim;
  sim::Grid grid;
  grid.add_site("s").add_node("n0", 1.5, nullptr);
  grid.site("s").add_node("n1", 1.5, nullptr);
  exec::ExecutionService exec(sim, grid, "s");
  auto est = std::make_shared<estimators::RuntimeEstimator>(
      std::make_shared<estimators::TaskHistoryStore>());
  sphinx::SphinxScheduler scheduler(sim, grid, nullptr,
                                    std::make_shared<estimators::EstimateDatabase>());
  scheduler.add_site("s", {&exec, est});

  for (int i = 0; i < 10; ++i) {
    workload::DagGenOptions dopts;
    dopts.levels = 1 + static_cast<int>(rng.uniform_int(0, 3));
    dopts.max_width = 4;
    dopts.task_options.input_file_rate = 0.0;
    auto job = workload::make_dag_job(population, rng, dopts,
                                      "dag-" + std::to_string(i));
    for (auto& t : job.tasks) t.spec.work_seconds = std::min(t.spec.work_seconds, 100.0);
    ASSERT_FALSE(job.tasks.empty());
    // make_plan validates acyclicity and dependency references.
    auto plan = scheduler.make_plan(job);
    ASSERT_TRUE(plan.is_ok()) << plan.status();
    ASSERT_TRUE(scheduler.submit(job).is_ok());
  }
  sim.run(10'000'000);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(scheduler.job_status("dag-" + std::to_string(i)).value().state,
              sphinx::JobState::kCompleted);
  }
}

TEST(DagGenerator, RootLevelHasNoDependencies) {
  Rng rng(6);
  auto population = workload::ApplicationPopulation::make(rng, {});
  workload::DagGenOptions dopts;
  dopts.levels = 4;
  auto job = workload::make_dag_job(population, rng, dopts, "j");
  bool saw_root = false, saw_dependent = false;
  for (const auto& t : job.tasks) {
    if (t.depends_on.empty()) {
      saw_root = true;
    } else {
      saw_dependent = true;
      EXPECT_EQ(t.spec.job_id, "j");
    }
  }
  EXPECT_TRUE(saw_root);
  EXPECT_TRUE(saw_dependent);
}

}  // namespace
}  // namespace gae
