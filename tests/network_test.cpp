// Link bandwidth contention: processor-sharing semantics, conservation, and
// integration with staged execution and replication.
#include "sim/network.h"

#include <gtest/gtest.h>

#include "exec/execution_service.h"
#include "sim/load.h"

namespace gae::sim {
namespace {

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest() : net_(sim_, grid_) {
    grid_.add_site("a");
    grid_.add_site("b");
    grid_.add_site("c");
    grid_.set_default_link({100e6, 0});  // 100 MB/s, no latency
  }

  Simulation sim_;
  Grid grid_;
  NetworkManager net_;
};

TEST_F(NetworkTest, SingleTransferMatchesAnalyticModel) {
  bool done = false;
  ASSERT_TRUE(net_.start_transfer("a", "b", 1'000'000'000, [&] { done = true; }).is_ok());
  EXPECT_EQ(net_.active_on_link("a", "b"), 1u);
  sim_.run();
  EXPECT_TRUE(done);
  // 1 GB at 100 MB/s = 10 s, matching Grid::transfer_time.
  EXPECT_NEAR(to_seconds(sim_.now()), 10.0, 0.001);
  EXPECT_EQ(net_.completed_transfers(), 1u);
  EXPECT_EQ(net_.active_transfers(), 0u);
}

TEST_F(NetworkTest, TwoConcurrentTransfersShareTheLink) {
  SimTime done1 = 0, done2 = 0;
  ASSERT_TRUE(net_.start_transfer("a", "b", 1'000'000'000,
                                  [&] { done1 = sim_.now(); }).is_ok());
  ASSERT_TRUE(net_.start_transfer("a", "b", 1'000'000'000,
                                  [&] { done2 = sim_.now(); }).is_ok());
  EXPECT_EQ(net_.active_on_link("a", "b"), 2u);
  sim_.run();
  // Equal transfers sharing fairly both finish at ~20 s (2x the solo time).
  EXPECT_NEAR(to_seconds(done1), 20.0, 0.01);
  EXPECT_NEAR(to_seconds(done2), 20.0, 0.01);
}

TEST_F(NetworkTest, ShortTransferFinishesFirstThenSurvivorSpeedsUp) {
  SimTime small_done = 0, big_done = 0;
  ASSERT_TRUE(net_.start_transfer("a", "b", 200'000'000,
                                  [&] { small_done = sim_.now(); }).is_ok());
  ASSERT_TRUE(net_.start_transfer("a", "b", 1'000'000'000,
                                  [&] { big_done = sim_.now(); }).is_ok());
  sim_.run();
  // Shared at 50 MB/s: small (200 MB) done at 4 s. Big then has 800 MB left
  // at full 100 MB/s: 4 + 8 = 12 s (vs 10 solo, 20 if shared throughout).
  EXPECT_NEAR(to_seconds(small_done), 4.0, 0.01);
  EXPECT_NEAR(to_seconds(big_done), 12.0, 0.01);
}

TEST_F(NetworkTest, DifferentLinksDoNotContend) {
  SimTime ab = 0, cb = 0;
  ASSERT_TRUE(net_.start_transfer("a", "b", 1'000'000'000, [&] { ab = sim_.now(); }).is_ok());
  ASSERT_TRUE(net_.start_transfer("c", "b", 1'000'000'000, [&] { cb = sim_.now(); }).is_ok());
  sim_.run();
  EXPECT_NEAR(to_seconds(ab), 10.0, 0.01);
  EXPECT_NEAR(to_seconds(cb), 10.0, 0.01);
}

TEST_F(NetworkTest, LateJoinerSlowsTheFirst) {
  SimTime first_done = 0;
  ASSERT_TRUE(net_.start_transfer("a", "b", 1'000'000'000,
                                  [&] { first_done = sim_.now(); }).is_ok());
  sim_.schedule_at(from_seconds(5), [&] {
    // First has 500 MB left; now shared at 50 MB/s each.
    net_.start_transfer("a", "b", 1'000'000'000, [] {});
  });
  sim_.run();
  // First: 5 s solo + 500 MB at 50 MB/s = 15 s.
  EXPECT_NEAR(to_seconds(first_done), 15.0, 0.01);
}

TEST_F(NetworkTest, CancelFreesBandwidth) {
  SimTime survivor_done = 0;
  ASSERT_TRUE(net_.start_transfer("a", "b", 1'000'000'000,
                                  [&] { survivor_done = sim_.now(); }).is_ok());
  auto victim = net_.start_transfer("a", "b", 1'000'000'000, [] {
    FAIL() << "cancelled transfer must not complete";
  });
  ASSERT_TRUE(victim.is_ok());
  sim_.schedule_at(from_seconds(4), [&] { EXPECT_TRUE(net_.cancel(victim.value())); });
  sim_.run();
  // 4 s shared (200 MB done) + 800 MB at full speed = 12 s.
  EXPECT_NEAR(to_seconds(survivor_done), 12.0, 0.01);
  EXPECT_FALSE(net_.cancel(victim.value()));  // already gone
  EXPECT_EQ(net_.completed_transfers(), 1u);
}

TEST_F(NetworkTest, SameSiteIsLatencyOnly) {
  bool done = false;
  ASSERT_TRUE(net_.start_transfer("a", "a", 1'000'000'000, [&] { done = true; }).is_ok());
  sim_.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(sim_.now(), 0);
}

TEST_F(NetworkTest, UnknownSitesRejected) {
  EXPECT_EQ(net_.start_transfer("a", "zz", 1, nullptr).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(net_.start_transfer("zz", "a", 1, nullptr).status().code(),
            StatusCode::kNotFound);
}

TEST_F(NetworkTest, ConservationUnderRandomTraffic) {
  // Many random transfers on one link: every byte arrives exactly once and
  // total time >= total_bytes / bandwidth (the link is never overdriven).
  Rng rng(3);
  double total_bytes = 0;
  int completed = 0;
  const int kTransfers = 40;
  for (int i = 0; i < kTransfers; ++i) {
    const double start = rng.uniform(0, 100);
    const auto bytes = static_cast<std::uint64_t>(rng.uniform(1e7, 5e8));
    total_bytes += static_cast<double>(bytes);
    sim_.schedule_at(from_seconds(start), [this, bytes, &completed] {
      net_.start_transfer("a", "b", bytes, [&completed] { ++completed; });
    });
  }
  sim_.run();
  EXPECT_EQ(completed, kTransfers);
  EXPECT_EQ(net_.active_transfers(), 0u);
  // Lower bound: the link moves at most 100 MB/s from t=0.
  EXPECT_GE(to_seconds(sim_.now()) + 1e-6, total_bytes / 100e6);
}

TEST_F(NetworkTest, StagingContendsWhenWiredIntoExec) {
  grid_.site("a").add_node("a-n0", 1.0, nullptr);
  grid_.add_site("tier0").store_file("data.root", 1'000'000'000);  // 10 s solo

  exec::ExecutionService service(sim_, grid_, "a");
  service.use_network(&net_);

  // A fat background transfer hogs the same link for 40 s.
  ASSERT_TRUE(net_.start_transfer("tier0", "a", 2'000'000'000, [] {}).is_ok());

  exec::TaskSpec spec;
  spec.id = "t1";
  spec.work_seconds = 5;
  spec.input_files = {"data.root"};
  ASSERT_TRUE(service.submit(spec).is_ok());
  sim_.run();

  const auto info = service.query("t1").value();
  EXPECT_EQ(info.state, exec::TaskState::kCompleted);
  // Shared staging: both transfers at 50 MB/s; task input (1 GB) lands at
  // 20 s — double the uncontended estimate — then 5 s of compute.
  EXPECT_NEAR(to_seconds(info.completion_time), 25.0, 0.1);
  EXPECT_EQ(info.input_bytes_transferred, 1'000'000'000u);
}

TEST_F(NetworkTest, KillDuringContendedStagingCancelsTransfers) {
  grid_.site("a").add_node("a-n0", 1.0, nullptr);
  grid_.add_site("tier0").store_file("data.root", 1'000'000'000);
  exec::ExecutionService service(sim_, grid_, "a");
  service.use_network(&net_);

  exec::TaskSpec spec;
  spec.id = "t1";
  spec.work_seconds = 5;
  spec.input_files = {"data.root"};
  ASSERT_TRUE(service.submit(spec).is_ok());
  sim_.run_until(from_seconds(2));
  EXPECT_EQ(net_.active_on_link("tier0", "a"), 1u);
  ASSERT_TRUE(service.kill("t1").is_ok());
  EXPECT_EQ(net_.active_on_link("tier0", "a"), 0u);
  sim_.run();
  EXPECT_EQ(service.query("t1").value().state, exec::TaskState::kKilled);
}

TEST_F(NetworkTest, LinkFailureAbortsInFlightTransfers) {
  bool completed = false;
  Status abort_cause;
  ASSERT_TRUE(net_.start_transfer("a", "b", 1'000'000'000,
                                  [&] { completed = true; },
                                  [&](const Status& s) { abort_cause = s; }).is_ok());
  sim_.schedule_at(from_seconds(3), [this] { net_.fail_link("a", "b", from_seconds(5)); });
  sim_.run();

  EXPECT_FALSE(completed);
  EXPECT_EQ(abort_cause.code(), StatusCode::kUnavailable);
  EXPECT_EQ(net_.aborted_transfers(), 1u);
  EXPECT_EQ(net_.active_on_link("a", "b"), 0u);
}

TEST_F(NetworkTest, FailedLinkRefusesNewTransfersUntilWindowCloses) {
  net_.fail_link("a", "b", from_seconds(10));
  EXPECT_TRUE(net_.link_failed("a", "b"));
  EXPECT_FALSE(net_.link_failed("b", "a"));  // directed: reverse unaffected

  auto refused = net_.start_transfer("a", "b", 1'000, nullptr);
  EXPECT_EQ(refused.status().code(), StatusCode::kUnavailable);
  EXPECT_TRUE(net_.start_transfer("b", "a", 1'000, nullptr).is_ok());

  // After the window, the link heals and transfers flow again.
  bool done = false;
  sim_.schedule_at(from_seconds(11), [&] {
    EXPECT_FALSE(net_.link_failed("a", "b"));
    ASSERT_TRUE(net_.start_transfer("a", "b", 100'000'000, [&] { done = true; }).is_ok());
  });
  sim_.run();
  EXPECT_TRUE(done);
}

TEST_F(NetworkTest, LinkFailureOnlyAbortsTheFailedLink) {
  bool ab_aborted = false, ac_done = false;
  ASSERT_TRUE(net_.start_transfer("a", "b", 1'000'000'000, nullptr,
                                  [&](const Status&) { ab_aborted = true; }).is_ok());
  ASSERT_TRUE(net_.start_transfer("a", "c", 1'000'000'000,
                                  [&] { ac_done = true; }).is_ok());
  sim_.schedule_at(from_seconds(1), [this] { net_.fail_link("a", "b", from_seconds(2)); });
  sim_.run();
  EXPECT_TRUE(ab_aborted);
  EXPECT_TRUE(ac_done);
}

}  // namespace
}  // namespace gae::sim
