// Live-transport integration: the GAE services hosted on a Clarens host
// serving real TCP, exercised by an authenticated XML-RPC client — the
// deployment shape the paper's fig. 6 measures.
#include <gtest/gtest.h>

#include <memory>

#include "clarens/host.h"
#include "estimators/estimate_db.h"
#include "jobmon/rpc_binding.h"
#include "jobmon/service.h"
#include "rpc/client.h"
#include "sim/engine.h"
#include "sim/grid.h"

namespace gae {
namespace {

class LiveHostTest : public ::testing::Test {
 protected:
  LiveHostTest() : host_("gae-host", wall_) {
    grid_.add_site("site-a").add_node("a0", 1.0, nullptr);
    exec_ = std::make_unique<exec::ExecutionService>(sim_, grid_, "site-a");
    estimates_ = std::make_shared<estimators::EstimateDatabase>();
    jms_ = std::make_unique<jobmon::JobMonitoringService>(sim_.clock(), nullptr,
                                                          estimates_);
    jms_->attach_site("site-a", exec_.get());
    jobmon::register_jobmon_methods(host_, *jms_);

    host_.auth().register_user("alice", "pw");
    host_.acl().allow("alice", "jobmon.");

    auto port = host_.serve(0);
    EXPECT_TRUE(port.is_ok());
    port_ = port.value();
  }

  void submit_and_run(const std::string& id, double work, SimDuration until) {
    exec::TaskSpec spec;
    spec.id = id;
    spec.owner = "alice";
    spec.work_seconds = work;
    EXPECT_TRUE(exec_->submit(spec).is_ok());
    sim_.run_until(until);
  }

  WallClock wall_;
  sim::Simulation sim_;
  sim::Grid grid_;
  std::unique_ptr<exec::ExecutionService> exec_;
  std::shared_ptr<estimators::EstimateDatabase> estimates_;
  std::unique_ptr<jobmon::JobMonitoringService> jms_;
  clarens::ClarensHost host_;
  std::uint16_t port_ = 0;
};

TEST_F(LiveHostTest, AuthenticatedMonitoringOverTcp) {
  submit_and_run("t1", 100, from_seconds(30));

  rpc::RpcClient client("127.0.0.1", port_);
  // Without login: rejected.
  EXPECT_EQ(client.call("jobmon.status", {rpc::Value("t1")}).status().code(),
            StatusCode::kUnauthenticated);

  auto token = client.call("system.login", {rpc::Value("alice"), rpc::Value("pw")});
  ASSERT_TRUE(token.is_ok()) << token.status();
  client.set_session_token(token.value().as_string());

  auto status = client.call("jobmon.status", {rpc::Value("t1")});
  ASSERT_TRUE(status.is_ok()) << status.status();
  EXPECT_EQ(status.value().as_string(), "RUNNING");

  auto info = client.call("jobmon.info", {rpc::Value("t1")});
  ASSERT_TRUE(info.is_ok());
  EXPECT_NEAR(info.value().get_double("cpu_seconds_used", 0), 30.0, 1e-6);
}

TEST_F(LiveHostTest, JsonRpcClientSeesSameData) {
  submit_and_run("t1", 100, from_seconds(10));
  rpc::RpcClient client("127.0.0.1", port_, rpc::Protocol::kJsonRpc);
  auto token = client.call("system.login", {rpc::Value("alice"), rpc::Value("pw")});
  ASSERT_TRUE(token.is_ok());
  client.set_session_token(token.value().as_string());
  auto info = client.call("jobmon.info", {rpc::Value("t1")});
  ASSERT_TRUE(info.is_ok());
  EXPECT_EQ(info.value().get_string("status", ""), "RUNNING");
}

TEST_F(LiveHostTest, DiscoveryOverTcp) {
  rpc::RpcClient client("127.0.0.1", port_);
  auto found = client.call("system.discover", {rpc::Value("jobmon")});
  ASSERT_TRUE(found.is_ok()) << found.status();
  ASSERT_EQ(found.value().as_array().size(), 1u);
  EXPECT_EQ(found.value().as_array()[0].get_string("name", ""), "jobmon@gae-host");
}

TEST_F(LiveHostTest, ConcurrentMonitoringClients) {
  submit_and_run("t1", 1000, from_seconds(5));
  constexpr int kClients = 8;
  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([this, &errors] {
      rpc::RpcClient client("127.0.0.1", port_);
      auto token = client.call("system.login", {rpc::Value("alice"), rpc::Value("pw")});
      if (!token.is_ok()) {
        errors.fetch_add(1);
        return;
      }
      client.set_session_token(token.value().as_string());
      for (int k = 0; k < 25; ++k) {
        auto r = client.call("jobmon.status", {rpc::Value("t1")});
        if (!r.is_ok() || r.value().as_string() != "RUNNING") errors.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(errors.load(), 0);
}

}  // namespace
}  // namespace gae
