// Liveness layer unit tests: leased discovery, the registry RPC face,
// heartbeat failure detection, supervised restarts, and breaker-driven
// endpoint re-resolution in the RPC client.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "clarens/host.h"
#include "clarens/registry.h"
#include "clarens/registry_binding.h"
#include "common/clock.h"
#include "common/retry.h"
#include "monalisa/repository.h"
#include "rpc/client.h"
#include "rpc/server.h"
#include "supervision/failure_detector.h"
#include "supervision/supervisor.h"
#include "telemetry/metrics.h"

namespace gae {
namespace {

using clarens::Lease;
using clarens::RegistryOptions;
using clarens::ServiceInfo;
using clarens::ServiceRegistry;

ServiceInfo info(const std::string& name, const std::string& host = "127.0.0.1",
                 std::uint16_t port = 8080) {
  ServiceInfo i;
  i.name = name;
  i.host = host;
  i.port = port;
  return i;
}

// ---------------------------------------------------------------------------
// Leased registry
// ---------------------------------------------------------------------------

TEST(RegistryLease, ExpiresAfterTtlAndRenewExtends) {
  ManualClock clock;
  ServiceRegistry reg("host", &clock, RegistryOptions{from_seconds(30)});

  const Lease lease = reg.register_service(info("jobmon@a"));
  EXPECT_EQ(lease.expires_at, from_seconds(30));
  EXPECT_TRUE(reg.lookup("jobmon@a").is_ok());

  clock.advance_by(from_seconds(29));
  ASSERT_TRUE(reg.renew("jobmon@a", lease.id).is_ok());
  clock.advance_by(from_seconds(29));  // t=58 < 29+30: still live
  EXPECT_TRUE(reg.lookup("jobmon@a").is_ok());
  EXPECT_EQ(reg.live_count(), 1u);

  clock.advance_by(from_seconds(2));  // t=60 >= 59: lapsed
  EXPECT_EQ(reg.lookup("jobmon@a").status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(reg.discover("jobmon").empty());
  EXPECT_EQ(reg.live_count(), 0u);
  EXPECT_EQ(reg.local_count(), 1u);  // not yet swept

  // A lapsed lease cannot be renewed back to life.
  EXPECT_EQ(reg.renew("jobmon@a", lease.id).code(), StatusCode::kNotFound);

  EXPECT_EQ(reg.sweep(), 1u);
  EXPECT_EQ(reg.local_count(), 0u);
  EXPECT_EQ(reg.expirations(), 1u);
  auto tomb = reg.tombstone("jobmon@a");
  ASSERT_TRUE(tomb.is_ok());
  EXPECT_EQ(tomb.value(), from_seconds(59));

  // Re-registration clears the tombstone and grants a fresh lease.
  const Lease fresh = reg.register_service(info("jobmon@a"));
  EXPECT_NE(fresh.id, lease.id);
  EXPECT_TRUE(reg.lookup("jobmon@a").is_ok());
  EXPECT_FALSE(reg.tombstone("jobmon@a").is_ok());
}

TEST(RegistryLease, StaleLeaseIdCannotRenewReplacement) {
  ManualClock clock;
  ServiceRegistry reg("host", &clock, RegistryOptions{from_seconds(30)});
  const Lease old_lease = reg.register_service(info("est@a", "10.0.0.1", 1111));
  const Lease new_lease = reg.register_service(info("est@a", "10.0.0.2", 2222));

  // The replaced instance's heartbeats must not keep the new entry alive.
  EXPECT_EQ(reg.renew("est@a", old_lease.id).code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(reg.renew("est@a", new_lease.id).is_ok());
  EXPECT_EQ(reg.replacements(), 1u);
  EXPECT_EQ(reg.lookup("est@a").value().host, "10.0.0.2");
}

TEST(RegistryLease, SameEndpointRefreshIsNotAReplacement) {
  ManualClock clock;
  ServiceRegistry reg("host", &clock, RegistryOptions{from_seconds(30)});
  reg.register_service(info("est@a"));
  reg.register_service(info("est@a"));  // same host/port: a refresh
  EXPECT_EQ(reg.replacements(), 0u);
}

TEST(RegistryLease, ClocklessRegistryKeepsImmortalSemantics) {
  ServiceRegistry reg("host");
  const Lease lease = reg.register_service(info("svc"), from_seconds(1));
  EXPECT_EQ(lease.expires_at, kSimTimeNever);
  EXPECT_TRUE(reg.renew("svc", lease.id).is_ok());
  EXPECT_TRUE(reg.lookup("svc").is_ok());
  EXPECT_EQ(reg.sweep(), 0u);
}

TEST(RegistryLease, PeerLookupSkipsExpiredEntries) {
  ManualClock clock;
  ServiceRegistry local("local", &clock, RegistryOptions{from_seconds(10)});
  ServiceRegistry remote("remote", &clock, RegistryOptions{from_seconds(10)});
  local.add_peer(&remote);

  remote.register_service(info("sphinx@b"));
  EXPECT_TRUE(local.lookup("sphinx@b").is_ok());
  EXPECT_EQ(local.discover("sphinx").size(), 1u);

  clock.advance_by(from_seconds(10));
  EXPECT_FALSE(local.lookup("sphinx@b").is_ok());
  EXPECT_TRUE(local.discover("sphinx").empty());
}

TEST(RegistryLease, TombstoneHorizonBoundsTheGraveyard) {
  ManualClock clock;
  telemetry::MetricsRegistry metrics;
  RegistryOptions options;
  options.default_ttl = from_seconds(10);
  options.tombstone_horizon = from_seconds(60);
  options.metrics = &metrics;
  ServiceRegistry reg("host", &clock, options);

  // Churn through three short-lived service names.
  for (int i = 0; i < 3; ++i) {
    reg.register_service(info("ephemeral-" + std::to_string(i)));
  }
  clock.advance_by(from_seconds(10));  // all lapse
  EXPECT_EQ(reg.sweep(), 3u);
  EXPECT_EQ(reg.tombstone_count(), 3u);
  EXPECT_EQ(metrics.snapshot().gauges.at("clarens.registry.tombstones"), 3);

  // Within the horizon the tombstones persist (peers can still learn of the
  // death); past it they are expired and counted.
  clock.advance_by(from_seconds(59));
  reg.sweep();
  EXPECT_EQ(reg.tombstone_count(), 3u);
  clock.advance_by(from_seconds(2));
  reg.sweep();
  EXPECT_EQ(reg.tombstone_count(), 0u);
  EXPECT_EQ(reg.tombstone_expirations(), 3u);
  auto snap = metrics.snapshot();
  EXPECT_EQ(snap.counters.at("clarens.registry.tombstones_expired"), 3u);
  EXPECT_EQ(snap.gauges.at("clarens.registry.tombstones"), 0);

  // horizon = 0 keeps the historical keep-forever behaviour.
  ServiceRegistry forever("host2", &clock, RegistryOptions{from_seconds(10)});
  forever.register_service(info("pinned"));
  clock.advance_by(from_seconds(10));
  forever.sweep();
  clock.advance_by(from_seconds(100'000));
  forever.sweep();
  EXPECT_EQ(forever.tombstone_count(), 1u);
  EXPECT_EQ(forever.tombstone_expirations(), 0u);
}

// ---------------------------------------------------------------------------
// registry.* RPC face
// ---------------------------------------------------------------------------

TEST(RegistryBinding, LeaseLifecycleOverRpc) {
  using rpc::Value;
  ManualClock clock;
  clarens::HostOptions options;
  options.require_auth = false;
  options.registry.default_ttl = from_seconds(20);
  clarens::ClarensHost host("gae-host", clock, options);
  clarens::register_registry_methods(host);

  auto lease = host.call("registry.register",
                         {Value("jobmon@a"), Value("127.0.0.1"), Value(9000)});
  ASSERT_TRUE(lease.is_ok()) << lease.status();
  const std::int64_t lease_id = lease.value().get_int("lease_id", 0);
  EXPECT_GT(lease_id, 0);
  EXPECT_DOUBLE_EQ(lease.value().get_double("expires_at_s", 0), 20.0);

  auto found = host.call("registry.lookup", {Value("jobmon@a")});
  ASSERT_TRUE(found.is_ok());
  EXPECT_EQ(found.value().get_string("host", ""), "127.0.0.1");
  EXPECT_EQ(found.value().get_int("port", 0), 9000);

  // Heartbeat over the wire face keeps the lease alive...
  clock.advance_by(from_seconds(15));
  ASSERT_TRUE(host.call("registry.renew", {Value("jobmon@a"), Value(lease_id)}).is_ok());
  clock.advance_by(from_seconds(15));
  EXPECT_TRUE(host.call("registry.lookup", {Value("jobmon@a")}).is_ok());

  // ...and silence lets it lapse.
  clock.advance_by(from_seconds(20));
  EXPECT_EQ(host.call("registry.lookup", {Value("jobmon@a")}).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(host.call("registry.renew", {Value("jobmon@a"), Value(lease_id)})
                .status()
                .code(),
            StatusCode::kNotFound);

  // Discover returns only live entries.
  host.call("registry.register", {Value("est@a"), Value("127.0.0.1"), Value(9001)});
  auto all = host.call("registry.discover", {});
  ASSERT_TRUE(all.is_ok());
  EXPECT_EQ(all.value().as_array().size(), 1u);

  ASSERT_TRUE(host.call("registry.deregister", {Value("est@a")}).is_ok());
  EXPECT_TRUE(host.call("registry.discover", {}).value().as_array().empty());
}

TEST(RegistryBinding, LookupIsAnonymousButRegistrationIsGated) {
  using rpc::Value;
  ManualClock clock;
  clarens::ClarensHost host("gae-host", clock);  // require_auth = true
  clarens::register_registry_methods(host);
  host.registry().register_service(info("jobmon@a"));

  // Clarens exposed anonymous lookup; mutations need a session.
  EXPECT_TRUE(host.call("registry.lookup", {Value("jobmon@a")}).is_ok());
  EXPECT_TRUE(host.call("registry.discover", {}).is_ok());
  EXPECT_EQ(host.call("registry.register",
                      {Value("rogue"), Value("10.0.0.1"), Value(1)})
                .status()
                .code(),
            StatusCode::kUnauthenticated);
  EXPECT_EQ(host.call("registry.deregister", {Value("jobmon@a")}).status().code(),
            StatusCode::kUnauthenticated);
}

// ---------------------------------------------------------------------------
// Failure detector
// ---------------------------------------------------------------------------

TEST(FailureDetectorTest, GradesAliveSuspectDeadAgainstMissedBeats) {
  ManualClock clock;
  monalisa::Repository monitoring;
  supervision::FailureDetectorOptions options;
  options.heartbeat_interval = from_seconds(5);
  options.suspect_after_missed = 1;
  options.dead_after_missed = 3;
  supervision::FailureDetector detector(clock, options, &monitoring);

  detector.watch("jobmon@a");
  EXPECT_EQ(detector.liveness("jobmon@a"), supervision::Liveness::kAlive);
  EXPECT_EQ(detector.liveness("never-watched"), supervision::Liveness::kDead);

  clock.advance_by(from_seconds(4));
  detector.heartbeat("jobmon@a");
  clock.advance_by(from_seconds(4));
  EXPECT_EQ(detector.missed_heartbeats("jobmon@a"), 0);
  EXPECT_EQ(detector.liveness("jobmon@a"), supervision::Liveness::kAlive);

  clock.advance_by(from_seconds(2));  // 6 s silent: one missed beat
  EXPECT_EQ(detector.missed_heartbeats("jobmon@a"), 1);
  EXPECT_EQ(detector.liveness("jobmon@a"), supervision::Liveness::kSuspect);
  EXPECT_TRUE(detector.check().empty());  // suspect is not dead
  EXPECT_DOUBLE_EQ(monitoring.latest("jobmon@a", "liveness").value().value, 0.5);

  clock.advance_by(from_seconds(10));  // 16 s silent: three missed beats
  auto dead = detector.check();
  ASSERT_EQ(dead.size(), 1u);
  EXPECT_EQ(dead[0], "jobmon@a");
  EXPECT_DOUBLE_EQ(monitoring.latest("jobmon@a", "liveness").value().value, 0.0);

  // Death is edge-triggered: a second check reports nothing new.
  EXPECT_TRUE(detector.check().empty());

  // A heartbeat resurrects the service.
  detector.heartbeat("jobmon@a");
  EXPECT_EQ(detector.liveness("jobmon@a"), supervision::Liveness::kAlive);
  EXPECT_TRUE(detector.check().empty());
  EXPECT_DOUBLE_EQ(monitoring.latest("jobmon@a", "liveness").value().value, 1.0);
}

TEST(FailureDetectorTest, VerdictListenerSeesTransitions) {
  ManualClock clock;
  supervision::FailureDetector detector(clock, {from_seconds(5), 1, 2});
  std::vector<std::pair<std::string, supervision::Liveness>> verdicts;
  detector.set_verdict_listener(
      [&](const std::string& s, supervision::Liveness l) { verdicts.emplace_back(s, l); });

  detector.watch("svc");
  clock.advance_by(from_seconds(6));
  detector.check();  // alive -> suspect
  clock.advance_by(from_seconds(6));
  detector.check();  // suspect -> dead
  ASSERT_EQ(verdicts.size(), 2u);
  EXPECT_EQ(verdicts[0].second, supervision::Liveness::kSuspect);
  EXPECT_EQ(verdicts[1].second, supervision::Liveness::kDead);

  detector.forget("svc");
  EXPECT_EQ(detector.watched_count(), 0u);
}

TEST(FailureDetectorTest, DebounceSuppressesFlappingDeathVerdicts) {
  // A service whose heartbeat squeaks in just past the deadline grades dead
  // on one check and alive on the next. Without debouncing every such flap
  // fires a death verdict (and, downstream, a spurious standby promotion).
  ManualClock clock;
  supervision::FailureDetectorOptions options;
  options.heartbeat_interval = from_seconds(5);
  options.suspect_after_missed = 1;
  options.dead_after_missed = 3;
  options.dead_debounce_checks = 2;
  supervision::FailureDetector detector(clock, options);
  detector.watch("svc");

  // Flap: silent long enough to grade dead, then the late beat lands.
  clock.advance_by(from_seconds(16));  // three missed beats: raw-dead
  EXPECT_TRUE(detector.check().empty());  // first dead grade is debounced
  EXPECT_EQ(detector.liveness("svc"), supervision::Liveness::kSuspect);
  detector.heartbeat("svc");  // the straggler arrives: streak resets
  EXPECT_EQ(detector.liveness("svc"), supervision::Liveness::kAlive);
  EXPECT_TRUE(detector.check().empty());

  // Repeat the flap: still no death verdict — that's the hysteresis.
  clock.advance_by(from_seconds(16));
  EXPECT_TRUE(detector.check().empty());
  detector.heartbeat("svc");
  EXPECT_TRUE(detector.check().empty());

  // A real death: two consecutive dead grades with no beat between them.
  clock.advance_by(from_seconds(16));
  EXPECT_TRUE(detector.check().empty());   // debounce check 1
  auto dead = detector.check();            // debounce check 2: published
  ASSERT_EQ(dead.size(), 1u);
  EXPECT_EQ(dead[0], "svc");
  EXPECT_EQ(detector.liveness("svc"), supervision::Liveness::kDead);
}

TEST(FailureDetectorTest, DefaultDebounceKeepsHistoricalSingleCheckDeath) {
  ManualClock clock;
  supervision::FailureDetector detector(clock, {from_seconds(5), 1, 3});
  detector.watch("svc");
  clock.advance_by(from_seconds(16));
  EXPECT_EQ(detector.check().size(), 1u);  // dies on the first dead grade
}

// ---------------------------------------------------------------------------
// Supervisor
// ---------------------------------------------------------------------------

TEST(SupervisorTest, RestartsDeadServiceAfterBackoff) {
  ManualClock clock;
  monalisa::Repository monitoring;
  supervision::FailureDetector detector(clock, {from_seconds(5), 1, 2});
  supervision::SupervisorOptions options;
  options.restart_backoff = RetryPolicy{3, 1000, 2.0, 60'000, 0.0, 1};
  supervision::Supervisor supervisor(clock, options, &monitoring);

  int restarts = 0;
  supervisor.manage({"jobmon@a", [&]() -> Status {
                       ++restarts;
                       return Status::ok();
                     }});
  supervisor.attach(detector);
  detector.watch("jobmon@a");

  clock.advance_by(from_seconds(11));  // two missed beats: dead
  detector.check();                    // verdict feeds the supervisor
  EXPECT_TRUE(supervisor.restart_pending("jobmon@a"));
  EXPECT_EQ(supervisor.tick(), 0u);  // backoff (1 s) not yet elapsed
  EXPECT_EQ(restarts, 0);

  clock.advance_by(from_millis(1000));
  EXPECT_EQ(supervisor.tick(), 1u);
  EXPECT_EQ(restarts, 1);
  EXPECT_FALSE(supervisor.restart_pending("jobmon@a"));
  EXPECT_EQ(supervisor.stats().deaths_seen, 1u);
  EXPECT_EQ(supervisor.stats().restarts_succeeded, 1u);

  // The restart re-armed the watch with a fresh baseline.
  EXPECT_EQ(detector.liveness("jobmon@a"), supervision::Liveness::kAlive);
}

TEST(SupervisorTest, BacksOffAndEventuallyGivesUp) {
  ManualClock clock;
  supervision::SupervisorOptions options;
  options.restart_backoff = RetryPolicy{3, 1000, 2.0, 60'000, 0.0, 1};
  supervision::Supervisor supervisor(clock, options);

  int attempts = 0;
  supervisor.manage({"flappy", [&]() -> Status {
                       ++attempts;
                       return unavailable_error("still down");
                     }});
  supervisor.on_service_dead("flappy");
  supervisor.on_service_dead("flappy");  // idempotent while pending
  EXPECT_EQ(supervisor.stats().deaths_seen, 2u);

  // Attempts run at +1 s, then +2 s, then +4 s (capped exponential).
  clock.advance_by(from_millis(1000));
  EXPECT_EQ(supervisor.tick(), 0u);
  EXPECT_EQ(attempts, 1);
  EXPECT_TRUE(supervisor.restart_pending("flappy"));

  clock.advance_by(from_millis(1999));
  supervisor.tick();
  EXPECT_EQ(attempts, 1);  // second backoff not yet over
  clock.advance_by(from_millis(1));
  supervisor.tick();
  EXPECT_EQ(attempts, 2);

  clock.advance_by(from_millis(4000));
  supervisor.tick();
  EXPECT_EQ(attempts, 3);
  EXPECT_FALSE(supervisor.restart_pending("flappy"));  // gave up
  EXPECT_EQ(supervisor.stats().gave_up, 1u);
  EXPECT_EQ(supervisor.stats().restarts_failed, 3u);

  // Unmanaged names are ignored outright.
  supervisor.on_service_dead("unknown");
  EXPECT_FALSE(supervisor.restart_pending("unknown"));
}

// ---------------------------------------------------------------------------
// Breaker observability + client endpoint re-resolution
// ---------------------------------------------------------------------------

TEST(CircuitBreakerObservability, SnapshotAndListenerTrackTransitions) {
  ManualClock clock;
  CircuitBreakerOptions options;
  options.min_samples = 2;
  options.failure_rate_threshold = 0.5;
  options.open_cooldown_ms = 1000;
  CircuitBreaker breaker(clock, options);

  std::vector<std::pair<CircuitBreaker::State, CircuitBreaker::State>> transitions;
  breaker.set_transition_listener(
      [&](CircuitBreaker::State from, CircuitBreaker::State to, SimTime) {
        transitions.emplace_back(from, to);
      });

  ASSERT_TRUE(breaker.allow());
  breaker.record_failure();
  ASSERT_TRUE(breaker.allow());
  breaker.record_failure();  // trips
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(breaker.allow());  // rejected while open

  clock.advance_by(from_millis(1000));
  ASSERT_TRUE(breaker.allow());  // half-open probe
  breaker.record_success();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);

  ASSERT_EQ(transitions.size(), 3u);
  EXPECT_EQ(transitions[0].second, CircuitBreaker::State::kOpen);
  EXPECT_EQ(transitions[1].second, CircuitBreaker::State::kHalfOpen);
  EXPECT_EQ(transitions[2].second, CircuitBreaker::State::kClosed);

  const CircuitBreaker::Snapshot snap = breaker.snapshot();
  EXPECT_EQ(snap.state, CircuitBreaker::State::kClosed);
  EXPECT_EQ(snap.opens, 1u);
  EXPECT_EQ(snap.rejections, 1u);
  // Closing from half-open clears the window: the breaker starts fresh.
  EXPECT_EQ(snap.window_samples, 0u);
  EXPECT_DOUBLE_EQ(snap.failure_rate, 0.0);
}

TEST(ClientReResolution, OpenBreakerTriggersRegistryReResolve) {
  // A live backend the registry will eventually point at.
  auto dispatcher = std::make_shared<rpc::Dispatcher>();
  dispatcher->register_method(
      "echo", [](const rpc::Array& params, const rpc::CallContext&) -> Result<rpc::Value> {
        return params.empty() ? rpc::Value() : params.front();
      });
  rpc::RpcServer backend(dispatcher, rpc::ServerOptions{0, 2});
  auto backend_port = backend.start();
  ASSERT_TRUE(backend_port.is_ok());

  // A port that refuses connections: bind a server, note the port, stop it.
  std::uint16_t dead_port = 0;
  {
    rpc::RpcServer doomed(dispatcher, rpc::ServerOptions{0, 1});
    auto p = doomed.start();
    ASSERT_TRUE(p.is_ok());
    dead_port = p.value();
    doomed.stop();
  }

  // The registry initially maps the service to the dead endpoint; the
  // resolver below is what a registry.discover round-trip would return.
  ServiceRegistry registry("client-side");
  registry.register_service(info("jobmon@a", "127.0.0.1", dead_port));

  rpc::ClientOptions options;
  options.default_call.retry.max_attempts = 4;
  options.default_call.retry.initial_backoff_ms = 1;
  options.default_call.retry.max_backoff_ms = 2;
  options.default_call.retry.jitter_fraction = 0.0;
  options.breaker.min_samples = 2;
  options.breaker.failure_rate_threshold = 0.5;
  options.breaker.open_cooldown_ms = 60'000;
  options.resolve_endpoints = [&registry]() {
    std::vector<rpc::Endpoint> endpoints;
    for (const auto& i : registry.discover("jobmon")) {
      endpoints.push_back({i.host, i.port});
    }
    return endpoints;
  };
  std::vector<std::pair<CircuitBreaker::State, CircuitBreaker::State>> transitions;
  options.on_breaker_transition = [&](const rpc::Endpoint&, CircuitBreaker::State from,
                                      CircuitBreaker::State to) {
    transitions.emplace_back(from, to);
  };

  rpc::RpcClient client({{"127.0.0.1", dead_port}}, rpc::Protocol::kXmlRpc, options);

  // The service "moves": a fresh instance registers the live endpoint.
  registry.register_service(info("jobmon@a", "127.0.0.1", backend_port.value()));

  // Connection failures trip the dead endpoint's breaker; the open
  // transition flags a re-resolve, and the retry loop finishes the same
  // call against the freshly discovered endpoint.
  auto r = client.call("echo", {rpc::Value(std::int64_t{7})});
  ASSERT_TRUE(r.is_ok()) << r.status();
  EXPECT_EQ(r.value().as_int(), 7);
  EXPECT_EQ(client.stats().reresolves, 1u);
  EXPECT_EQ(client.endpoint(0).port, backend_port.value());
  ASSERT_FALSE(transitions.empty());
  EXPECT_EQ(transitions[0].second, CircuitBreaker::State::kOpen);

  // Subsequent calls stick to the healthy endpoint with no further churn.
  ASSERT_TRUE(client.call("echo", {rpc::Value(std::int64_t{8})}).is_ok());
  EXPECT_EQ(client.stats().reresolves, 1u);
  backend.stop();
}

}  // namespace
}  // namespace gae
