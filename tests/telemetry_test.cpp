// Telemetry subsystem tests: histogram bucket math, registry snapshots under
// concurrent recording, trace-context propagation over a live TCP hop (the
// fig-7 steering command assembling into one cross-service trace), the
// telemetry.snapshot RPC face, the MonALISA bridge, and metric survival
// across a supervised service restart.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "clarens/host.h"
#include "estimators/estimate_db.h"
#include "estimators/runtime_estimator.h"
#include "jobmon/rpc_binding.h"
#include "jobmon/service.h"
#include "monalisa/repository.h"
#include "net/socket.h"
#include "rpc/client.h"
#include "rpc/http.h"
#include "rpc/xmlrpc.h"
#include "sim/engine.h"
#include "sim/grid.h"
#include "sim/load.h"
#include "sphinx/scheduler.h"
#include "steering/rpc_binding.h"
#include "steering/service.h"
#include "supervision/supervisor.h"
#include "telemetry/instrument.h"
#include "telemetry/metrics.h"
#include "telemetry/monalisa_bridge.h"
#include "telemetry/rpc_binding.h"
#include "telemetry/trace.h"

namespace gae {
namespace {

using telemetry::Histogram;
using telemetry::HistogramSnapshot;
using telemetry::MetricsRegistry;
using telemetry::MetricsSnapshot;
using telemetry::ScopedSpan;
using telemetry::Span;
using telemetry::TraceContext;
using telemetry::Tracer;

// ---------------------------------------------------------------------------
// Histogram bucket boundaries
// ---------------------------------------------------------------------------

TEST(Histogram, BucketIndexBoundaries) {
  // Bucket 0 holds exactly {0}; bucket i >= 1 holds [2^(i-1), 2^i).
  EXPECT_EQ(Histogram::bucket_index(0), 0);
  EXPECT_EQ(Histogram::bucket_index(1), 1);
  EXPECT_EQ(Histogram::bucket_index(2), 2);
  EXPECT_EQ(Histogram::bucket_index(3), 2);
  EXPECT_EQ(Histogram::bucket_index(4), 3);
  EXPECT_EQ(Histogram::bucket_index(7), 3);
  EXPECT_EQ(Histogram::bucket_index(8), 4);
  for (int i = 1; i < Histogram::kBuckets - 1; ++i) {
    const std::uint64_t lo = Histogram::bucket_lower_bound(i);
    const std::uint64_t hi = Histogram::bucket_upper_bound(i);
    EXPECT_EQ(Histogram::bucket_index(lo), i) << "lower bound of bucket " << i;
    EXPECT_EQ(Histogram::bucket_index(hi - 1), i) << "upper edge of bucket " << i;
    EXPECT_EQ(Histogram::bucket_index(hi), i + 1) << "first value past bucket " << i;
  }
  // Values beyond the last bucket's lower bound clamp into the last bucket.
  EXPECT_EQ(Histogram::bucket_index(UINT64_MAX), Histogram::kBuckets - 1);
}

TEST(Histogram, RecordLandsInExpectedBuckets) {
  Histogram h;
  h.record(0);
  h.record(1);
  h.record(2);
  h.record(3);
  h.record(1024);
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 5u);
  EXPECT_EQ(s.sum, 0u + 1 + 2 + 3 + 1024);
  EXPECT_EQ(s.min, 0u);
  EXPECT_EQ(s.max, 1024u);
  EXPECT_EQ(s.buckets[0], 1u);   // {0}
  EXPECT_EQ(s.buckets[1], 1u);   // [1,2)
  EXPECT_EQ(s.buckets[2], 2u);   // [2,4)
  EXPECT_EQ(s.buckets[11], 1u);  // [1024,2048)
}

TEST(Histogram, PercentilesInterpolateWithinBucket) {
  Histogram h;
  for (int i = 0; i < 100; ++i) h.record(1000);  // all in [512, 1024)
  const HistogramSnapshot s = h.snapshot();
  for (double p : {50.0, 95.0, 99.0}) {
    const double v = s.percentile(p);
    EXPECT_GE(v, 512.0) << "p" << p;
    EXPECT_LE(v, 1024.0) << "p" << p;
  }
  // A bimodal distribution separates cleanly across buckets.
  Histogram h2;
  for (int i = 0; i < 90; ++i) h2.record(10);      // [8,16)
  for (int i = 0; i < 10; ++i) h2.record(100000);  // [65536,131072)
  const HistogramSnapshot s2 = h2.snapshot();
  EXPECT_LT(s2.percentile(50), 16.0);
  EXPECT_GE(s2.percentile(95), 65536.0);
}

TEST(Histogram, SnapshotMergeAddsBucketwise) {
  Histogram a, b;
  a.record(5);
  a.record(7);
  b.record(1000);
  HistogramSnapshot sa = a.snapshot();
  const HistogramSnapshot sb = b.snapshot();
  sa.merge(sb);
  EXPECT_EQ(sa.count, 3u);
  EXPECT_EQ(sa.sum, 5u + 7 + 1000);
  EXPECT_EQ(sa.min, 5u);
  EXPECT_EQ(sa.max, 1000u);
}

// ---------------------------------------------------------------------------
// Registry under concurrent recording
// ---------------------------------------------------------------------------

TEST(MetricsRegistry, SnapshotUnderConcurrentRecordStaysConsistent) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20'000;
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, &go] {
      while (!go.load()) {
      }
      auto& counter = registry.counter("work.calls");
      auto& hist = registry.histogram("work.latency_us");
      auto& gauge = registry.gauge("work.level");
      for (int i = 0; i < kPerThread; ++i) {
        counter.inc();
        hist.record(static_cast<std::uint64_t>(i % 1000));
        gauge.add(1);
        gauge.add(-1);
      }
    });
  }
  go.store(true);
  // Snapshot while the writers hammer: every snapshot must be internally
  // sane (bucket sum never exceeds the then-current count ceiling).
  for (int i = 0; i < 50; ++i) {
    const MetricsSnapshot snap = registry.snapshot();
    auto it = snap.histograms.find("work.latency_us");
    if (it == snap.histograms.end()) continue;
    std::uint64_t bucket_total = 0;
    for (const auto b : it->second.buckets) bucket_total += b;
    EXPECT_EQ(bucket_total, it->second.count);
    EXPECT_LE(it->second.count,
              static_cast<std::uint64_t>(kThreads) * kPerThread);
  }
  for (auto& t : threads) t.join();
  const MetricsSnapshot final_snap = registry.snapshot();
  EXPECT_EQ(final_snap.counters.at("work.calls"),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(final_snap.gauges.at("work.level"), 0);
  EXPECT_EQ(final_snap.histograms.at("work.latency_us").count,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(MetricsRegistry, HandlesAreStableAndShared) {
  MetricsRegistry registry;
  auto& a = registry.counter("x");
  auto& b = registry.counter("x");
  EXPECT_EQ(&a, &b);
  a.inc(3);
  EXPECT_EQ(registry.snapshot().counters.at("x"), 3u);
}

// ---------------------------------------------------------------------------
// Trace context plumbing
// ---------------------------------------------------------------------------

TEST(Trace, FormatParseRoundTrip) {
  TraceContext ctx;
  ctx.trace_id = 0x00c0ffee00c0ffeeULL;
  ctx.span_id = 0x1ULL;
  ctx.parent_span_id = 0xdeadbeefULL;
  const TraceContext parsed = telemetry::parse_trace(telemetry::format_trace(ctx));
  EXPECT_EQ(parsed.trace_id, ctx.trace_id);
  EXPECT_EQ(parsed.span_id, ctx.span_id);
  EXPECT_EQ(parsed.parent_span_id, ctx.parent_span_id);
}

TEST(Trace, ParseRejectsMalformedInput) {
  EXPECT_FALSE(telemetry::parse_trace("").valid());
  EXPECT_FALSE(telemetry::parse_trace("not-a-trace").valid());
  EXPECT_FALSE(telemetry::parse_trace("12;34").valid());
  EXPECT_FALSE(telemetry::parse_trace(";;").valid());
}

TEST(Trace, ScopedSpanChainsParentChildAndRestores) {
  Tracer tracer;
  EXPECT_FALSE(telemetry::current_trace().valid());
  TraceContext outer_ctx, inner_ctx;
  {
    ScopedSpan outer(&tracer, "svc-a", "outer", "client");
    outer_ctx = outer.context();
    EXPECT_TRUE(outer_ctx.valid());
    EXPECT_EQ(outer_ctx.parent_span_id, 0u);
    {
      ScopedSpan inner(&tracer, "svc-b", "inner", "internal");
      inner_ctx = inner.context();
      EXPECT_EQ(inner_ctx.trace_id, outer_ctx.trace_id);
      EXPECT_EQ(inner_ctx.parent_span_id, outer_ctx.span_id);
    }
    EXPECT_EQ(telemetry::current_trace().span_id, outer_ctx.span_id);
  }
  EXPECT_FALSE(telemetry::current_trace().valid());
  const auto spans = tracer.trace(outer_ctx.trace_id);
  ASSERT_EQ(spans.size(), 2u);  // inner finished first
  EXPECT_EQ(spans[0].name, "inner");
  EXPECT_EQ(spans[1].name, "outer");
}

TEST(Trace, RemoteParentAdoptedOverAmbient) {
  Tracer tracer;
  TraceContext remote;
  remote.trace_id = 42;
  remote.span_id = 7;
  ScopedSpan span(&tracer, "svc", "handler", "server", remote);
  EXPECT_EQ(span.context().trace_id, 42u);
  EXPECT_EQ(span.context().parent_span_id, 7u);
}

TEST(Trace, TracerBoundsRetainedSpans) {
  Tracer tracer(/*max_spans=*/4);
  for (int i = 0; i < 10; ++i) {
    ScopedSpan s(&tracer, "svc", "m", "internal");
  }
  EXPECT_EQ(tracer.span_count(), 4u);
  EXPECT_EQ(tracer.dropped(), 6u);
}

// ---------------------------------------------------------------------------
// Fig-7: a live-TCP steering command assembles into one multi-service trace
// ---------------------------------------------------------------------------

// The SteeringTest stack from steering_test.cpp, plus a Clarens host serving
// real TCP with telemetry armed end to end.
class TracedSteeringTest : public ::testing::Test {
 protected:
  TracedSteeringTest() : host_("gae-host", wall_, host_options()) {
    grid_.add_site("site-a").add_node("a0", 1.0, nullptr);
    grid_.add_site("site-b").add_node("b0", 1.0, nullptr);
    grid_.set_default_link({100e6, 0});
    exec_a_ = std::make_unique<exec::ExecutionService>(sim_, grid_, "site-a");
    exec_b_ = std::make_unique<exec::ExecutionService>(sim_, grid_, "site-b");
    estimate_db_ = std::make_shared<estimators::EstimateDatabase>();

    scheduler_ = std::make_unique<sphinx::SphinxScheduler>(sim_, grid_, &monitoring_,
                                                           estimate_db_);
    scheduler_->add_site("site-a", {exec_a_.get(), nullptr});
    scheduler_->add_site("site-b", {exec_b_.get(), nullptr});

    jms_ = std::make_unique<jobmon::JobMonitoringService>(sim_.clock(), &monitoring_,
                                                          estimate_db_);
    jms_->attach_site("site-a", exec_a_.get());
    jms_->attach_site("site-b", exec_b_.get());

    steering::SteeringService::Deps deps;
    deps.sim = &sim_;
    deps.scheduler = scheduler_.get();
    deps.jobmon = jms_.get();
    deps.services = {{"site-a", exec_a_.get()}, {"site-b", exec_b_.get()}};
    steering::SteeringOptions options;
    options.auto_steer = false;
    steering_ = std::make_unique<steering::SteeringService>(deps, options);

    steering::register_steering_methods(host_, *steering_, &tracer_, &metrics_);
    jobmon::register_jobmon_methods(host_, *jms_, &tracer_, &metrics_);
    telemetry::register_telemetry_methods(host_, metrics_, &tracer_);

    auto port = host_.serve(0);
    EXPECT_TRUE(port.is_ok()) << port.status();
    port_ = port.value();
  }

  clarens::HostOptions host_options() {
    clarens::HostOptions o;
    o.require_auth = false;
    o.metrics = &metrics_;
    o.tracer = &tracer_;
    return o;
  }

  void submit_and_run(const std::string& id, double work, SimDuration until) {
    exec::TaskSpec spec;
    spec.id = id;
    spec.job_id = "job-1";
    spec.owner = "alice";
    spec.work_seconds = work;
    sphinx::JobDescription job;
    job.id = "job-1";
    job.owner = "alice";
    job.tasks.push_back({std::move(spec), {}});
    ASSERT_TRUE(scheduler_->submit(job).is_ok());
    sim_.run_until(until);
  }

  rpc::ClientOptions traced_client_options() {
    rpc::ClientOptions o;
    o.metrics = &metrics_;
    o.tracer = &tracer_;
    o.trace_service = "cli";
    return o;
  }

  Tracer tracer_;
  MetricsRegistry metrics_;
  WallClock wall_;
  sim::Simulation sim_;
  sim::Grid grid_;
  monalisa::Repository monitoring_;
  std::unique_ptr<exec::ExecutionService> exec_a_, exec_b_;
  std::shared_ptr<estimators::EstimateDatabase> estimate_db_;
  std::unique_ptr<sphinx::SphinxScheduler> scheduler_;
  std::unique_ptr<jobmon::JobMonitoringService> jms_;
  std::unique_ptr<steering::SteeringService> steering_;
  clarens::ClarensHost host_;
  std::uint16_t port_ = 0;
};

TEST_F(TracedSteeringTest, SteeringCommandAssemblesOneMultiServiceTrace) {
  submit_and_run("t1", 500, from_seconds(5));

  rpc::RpcClient client({{"127.0.0.1", port_}}, rpc::Protocol::kXmlRpc,
                        traced_client_options());
  auto killed = client.call("steering.kill", {rpc::Value("t1")});
  ASSERT_TRUE(killed.is_ok()) << killed.status();

  // Exactly one trace id, with >= 3 spans across >= 3 distinct services:
  // the cli client hop, the gae-host server hop, and the steering service
  // span beneath it.
  std::set<std::uint64_t> trace_ids;
  for (const auto& span : tracer_.spans()) trace_ids.insert(span.context.trace_id);
  ASSERT_EQ(trace_ids.size(), 1u);
  const auto spans = tracer_.trace(*trace_ids.begin());
  ASSERT_GE(spans.size(), 3u);
  std::set<std::string> services;
  for (const auto& span : spans) services.insert(span.service);
  EXPECT_GE(services.size(), 3u);
  EXPECT_TRUE(services.count("cli"));
  EXPECT_TRUE(services.count("gae-host"));
  EXPECT_TRUE(services.count("steering"));

  // Parent-child links hold: each non-root span's parent is another span of
  // the same trace, so the tree assembles without dangling references.
  std::set<std::uint64_t> span_ids;
  for (const auto& span : spans) span_ids.insert(span.context.span_id);
  int roots = 0;
  for (const auto& span : spans) {
    if (span.context.parent_span_id == 0) {
      ++roots;
    } else {
      EXPECT_TRUE(span_ids.count(span.context.parent_span_id))
          << "dangling parent for span " << span.name;
    }
  }
  EXPECT_EQ(roots, 1);

  // The same assembled trace is readable over RPC.
  char hex[17];
  std::snprintf(hex, sizeof hex, "%016llx",
                static_cast<unsigned long long>(*trace_ids.begin()));
  auto remote = client.call("telemetry.trace", {rpc::Value(std::string(hex))});
  ASSERT_TRUE(remote.is_ok()) << remote.status();
  EXPECT_GE(remote.value().as_array().size(), 3u);
}

TEST_F(TracedSteeringTest, SnapshotRpcReportsPerMethodPercentiles) {
  submit_and_run("t1", 500, from_seconds(5));
  rpc::RpcClient client({{"127.0.0.1", port_}}, rpc::Protocol::kJsonRpc,
                        traced_client_options());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(client.call("jobmon.status", {rpc::Value("t1")}).is_ok());
  }
  auto snap = client.call("telemetry.snapshot");
  ASSERT_TRUE(snap.is_ok()) << snap.status();
  const auto& hists = snap.value().at("histograms");
  ASSERT_TRUE(hists.has("rpc.server.jobmon.status.latency_us"));
  const auto& lat = hists.at("rpc.server.jobmon.status.latency_us");
  EXPECT_GE(lat.get_int("count", 0), 20);
  const double p50 = lat.get_double("p50_us", -1);
  const double p95 = lat.get_double("p95_us", -1);
  const double p99 = lat.get_double("p99_us", -1);
  EXPECT_GT(p50, 0.0);
  EXPECT_GE(p95, p50);
  EXPECT_GE(p99, p95);
  const auto& counters = snap.value().at("counters");
  EXPECT_GE(counters.get_int("rpc.server.jobmon.status.calls", 0), 20);
  EXPECT_GE(counters.get_int("jobmon.status.calls", 0), 20);
  // The client side counted its attempts per endpoint.
  bool saw_client_attempts = false;
  for (const auto& [name, _] : counters.as_struct()) {
    if (name.rfind("rpc.client.", 0) == 0 &&
        name.find(".attempts") != std::string::npos) {
      saw_client_attempts = true;
    }
  }
  EXPECT_TRUE(saw_client_attempts);
}

TEST_F(TracedSteeringTest, ServerAdoptsBodyTraceWhenHeaderAbsent) {
  // A peer that cannot set HTTP headers carries the triple in the body's
  // reserved <trace> element; the server falls back to it when the
  // x-gae-trace header is missing.
  TraceContext remote;
  remote.trace_id = 0xc0ffee;
  remote.span_id = 0xbeef;

  auto stream = net::TcpStream::connect("127.0.0.1", port_);
  ASSERT_TRUE(stream.is_ok()) << stream.status();
  rpc::http::Request req;
  req.headers["content-type"] = "text/xml";
  req.headers["host"] = "127.0.0.1";
  req.body = rpc::xmlrpc::encode_call("telemetry.snapshot", {},
                                      telemetry::format_trace(remote));
  ASSERT_TRUE(req.trace.empty());  // no header carrier on this request
  ASSERT_TRUE(rpc::http::write_request(stream.value(), req).is_ok());
  auto resp = rpc::http::read_response(stream.value());
  ASSERT_TRUE(resp.is_ok()) << resp.status();
  EXPECT_EQ(resp.value().status_code, 200);

  const auto spans = tracer_.trace(remote.trace_id);
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].service, "gae-host");
  EXPECT_EQ(spans[0].name, "telemetry.snapshot");
  EXPECT_EQ(spans[0].context.parent_span_id, remote.span_id);
}

// ---------------------------------------------------------------------------
// MonALISA bridge
// ---------------------------------------------------------------------------

TEST(MonalisaBridge, FlushPublishesCountersGaugesAndHistogramSummaries) {
  MetricsRegistry registry;
  registry.counter("steering.kill.calls").inc(4);
  registry.gauge("rpc.server.queue_depth").set(3);
  for (int i = 0; i < 100; ++i) {
    registry.histogram("rpc.server.steering.kill.latency_us").record(700);
  }
  monalisa::Repository repo;
  ManualClock clock;
  clock.advance_to(from_seconds(12));
  telemetry::MonalisaBridge bridge(registry, repo, "telemetry@gae-host", clock);
  bridge.flush();
  EXPECT_EQ(bridge.flushes(), 1u);

  auto calls = repo.latest("telemetry@gae-host", "steering.kill.calls");
  ASSERT_TRUE(calls.is_ok());
  EXPECT_DOUBLE_EQ(calls.value().value, 4.0);
  auto depth = repo.latest("telemetry@gae-host", "rpc.server.queue_depth");
  ASSERT_TRUE(depth.is_ok());
  EXPECT_DOUBLE_EQ(depth.value().value, 3.0);
  auto count =
      repo.latest("telemetry@gae-host", "rpc.server.steering.kill.latency_us.count");
  ASSERT_TRUE(count.is_ok());
  EXPECT_DOUBLE_EQ(count.value().value, 100.0);
  auto p95 =
      repo.latest("telemetry@gae-host", "rpc.server.steering.kill.latency_us.p95_us");
  ASSERT_TRUE(p95.is_ok());
  EXPECT_GE(p95.value().value, 512.0);
  EXPECT_LE(p95.value().value, 1024.0);
}

// ---------------------------------------------------------------------------
// Metrics survive a supervised restart
// ---------------------------------------------------------------------------

TEST(SupervisedTelemetry, CountersAccumulateAcrossSupervisedRestart) {
  MetricsRegistry metrics;
  WallClock wall;
  ManualClock clock;

  clarens::HostOptions options;
  options.require_auth = false;
  options.metrics = &metrics;
  auto host = std::make_unique<clarens::ClarensHost>("svc-host", wall, options);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(host->call("system.echo", {rpc::Value(1)}).is_ok());
  }

  supervision::Supervisor supervisor(clock, {}, nullptr, &metrics);
  supervisor.manage({"svc-host", [&]() -> Status {
                       // The registry is process-level infrastructure: the
                       // resurrected host records into the same registry, so
                       // history spans incarnations.
                       host = std::make_unique<clarens::ClarensHost>("svc-host", wall,
                                                                     options);
                       return Status::ok();
                     }});
  host.reset();  // the "crash"
  supervisor.on_service_dead("svc-host");
  clock.advance_by(from_seconds(10));
  ASSERT_EQ(supervisor.tick(), 1u);

  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(host->call("system.echo", {rpc::Value(1)}).is_ok());
  }

  const MetricsSnapshot snap = metrics.snapshot();
  EXPECT_EQ(snap.counters.at("rpc.server.system.echo.calls"), 5u);
  EXPECT_EQ(snap.counters.at("supervision.deaths"), 1u);
  EXPECT_EQ(snap.counters.at("supervision.restart_attempts"), 1u);
  EXPECT_EQ(snap.counters.at("supervision.restarts_succeeded"), 1u);
  EXPECT_EQ(snap.histograms.at("rpc.server.system.echo.latency_us").count, 5u);
}

}  // namespace
}  // namespace gae
