#include "gridfile/file_service.h"

#include <gtest/gtest.h>

#include "common/clock.h"

namespace gae::gridfile {
namespace {

using rpc::Value;

class FileServiceTest : public ::testing::Test {
 protected:
  FileServiceTest() : host_("file-host", clock_, open_options()) {
    grid_.add_site("cern");
    grid_.site("cern").store_file("result.out", 1000);
    grid_.site("cern").store_file("result.log", 50);
    grid_.site("cern").store_file("other.dat", 5'000'000);
    register_file_methods(host_, grid_, "cern");
  }

  static clarens::HostOptions open_options() {
    clarens::HostOptions o;
    o.require_auth = false;
    return o;
  }

  ManualClock clock_;
  sim::Grid grid_;
  clarens::ClarensHost host_;
};

TEST_F(FileServiceTest, ListAllAndByPrefix) {
  auto all = host_.call("file.list", {});
  ASSERT_TRUE(all.is_ok());
  EXPECT_EQ(all.value().as_array().size(), 3u);

  auto results = host_.call("file.list", {Value("result")});
  ASSERT_TRUE(results.is_ok());
  ASSERT_EQ(results.value().as_array().size(), 2u);
  EXPECT_EQ(results.value().as_array()[0].get_string("name", ""), "result.log");
  EXPECT_EQ(results.value().as_array()[0].get_int("bytes", 0), 50);
}

TEST_F(FileServiceTest, Stat) {
  auto stat = host_.call("file.stat", {Value("result.out")});
  ASSERT_TRUE(stat.is_ok());
  EXPECT_EQ(stat.value().get_int("bytes", 0), 1000);
  EXPECT_EQ(host_.call("file.stat", {Value("missing")}).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(host_.call("file.stat", {}).status().code(), StatusCode::kInvalidArgument);
}

TEST_F(FileServiceTest, ReadWholeFile) {
  auto read = host_.call("file.read", {Value("result.out"), Value(0), Value(2000)});
  ASSERT_TRUE(read.is_ok());
  EXPECT_EQ(read.value().get_int("bytes", -1), 1000);  // clamped to file size
  EXPECT_TRUE(read.value().get_bool("eof", false));
  EXPECT_EQ(read.value().get_string("data", "").size(), 1000u);
}

TEST_F(FileServiceTest, ChunkedReadsComposeExactly) {
  std::string assembled;
  std::uint64_t offset = 0;
  for (;;) {
    auto chunk = host_.call("file.read", {Value("result.out"),
                                          Value(static_cast<std::int64_t>(offset)),
                                          Value(137)});
    ASSERT_TRUE(chunk.is_ok());
    assembled += chunk.value().get_string("data", "");
    offset += static_cast<std::uint64_t>(chunk.value().get_int("bytes", 0));
    if (chunk.value().get_bool("eof", false)) break;
  }
  ASSERT_EQ(assembled.size(), 1000u);
  // One-shot read returns the identical bytes.
  auto whole = host_.call("file.read", {Value("result.out"), Value(0), Value(1000)});
  ASSERT_TRUE(whole.is_ok());
  EXPECT_EQ(assembled, whole.value().get_string("data", ""));
}

TEST_F(FileServiceTest, ReadValidation) {
  EXPECT_EQ(host_.call("file.read", {Value("result.out"), Value(1500), Value(10)})
                .status()
                .code(),
            StatusCode::kInvalidArgument);  // offset beyond EOF
  EXPECT_EQ(host_.call("file.read", {Value("result.out"), Value(-1), Value(10)})
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(host_.call("file.read", {Value("missing"), Value(0), Value(10)})
                .status()
                .code(),
            StatusCode::kNotFound);
}

TEST_F(FileServiceTest, ReadChunkCap) {
  auto read = host_.call("file.read", {Value("other.dat"), Value(0), Value(5'000'000)});
  ASSERT_TRUE(read.is_ok());
  EXPECT_EQ(read.value().get_int("bytes", 0),
            static_cast<std::int64_t>(kMaxReadChunk));
  EXPECT_FALSE(read.value().get_bool("eof", true));
}

TEST_F(FileServiceTest, RegistersInDiscovery) {
  EXPECT_TRUE(host_.registry().lookup("file@cern").is_ok());
}

TEST(SynthesizeContent, DeterministicAndOffsetStable) {
  const std::string a = synthesize_content("f.root", 0, 100);
  const std::string b = synthesize_content("f.root", 0, 100);
  EXPECT_EQ(a, b);
  // A chunk starting mid-file matches the corresponding slice.
  const std::string mid = synthesize_content("f.root", 40, 20);
  EXPECT_EQ(mid, a.substr(40, 20));
  // Different files differ.
  EXPECT_NE(a, synthesize_content("g.root", 0, 100));
  // Printable.
  for (char c : a) {
    EXPECT_GE(c, 'a');
    EXPECT_LE(c, 'z');
  }
}

}  // namespace
}  // namespace gae::gridfile
