// Newer execution-service features: periodic checkpointing with restart on
// node failure, and fair-share dispatch.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "estimators/runtime_estimator.h"
#include "exec/execution_service.h"
#include "monalisa/repository.h"
#include "sim/load.h"

namespace gae::exec {
namespace {

TaskSpec make_spec(const std::string& id, double work, const std::string& owner = "alice",
                   int priority = 0) {
  TaskSpec spec;
  spec.id = id;
  spec.owner = owner;
  spec.work_seconds = work;
  spec.priority = priority;
  return spec;
}

class CheckpointTest : public ::testing::Test {
 protected:
  CheckpointTest() { grid_.add_site("s").add_node("n0", 1.0, nullptr); }
  sim::Simulation sim_;
  sim::Grid grid_;
};

TEST_F(CheckpointTest, NodeFailureRestartsFromPeriodicCheckpoint) {
  ExecOptions opts;
  opts.mean_time_between_failures = 120.0;  // deterministic seed draws below
  opts.failure_seed = 42;
  opts.checkpoint_interval_seconds = 30.0;
  ExecutionService exec(sim_, grid_, "s", opts);

  auto spec = make_spec("t1", 400.0);
  spec.checkpointable = true;
  ASSERT_TRUE(exec.submit(spec).is_ok());

  std::size_t restarts = 0;
  exec.subscribe([&](const TaskEvent& ev) {
    if (ev.detail.rfind("node failure: restarted", 0) == 0) ++restarts;
  });
  sim_.run();

  auto info = exec.query("t1").value();
  // The task survives node failures and eventually completes.
  EXPECT_EQ(info.state, TaskState::kCompleted);
  EXPECT_GE(restarts, 1u);
  // Total wall time exceeds the work: failures cost recomputation since the
  // last checkpoint, plus requeue time.
  EXPECT_GT(info.completion_time, from_seconds(400.0));
}

TEST_F(CheckpointTest, NonCheckpointableTaskStillFails) {
  ExecOptions opts;
  opts.mean_time_between_failures = 50.0;
  opts.failure_seed = 7;
  opts.checkpoint_interval_seconds = 30.0;
  ExecutionService exec(sim_, grid_, "s", opts);
  ASSERT_TRUE(exec.submit(make_spec("t1", 1e6)).is_ok());
  sim_.run();
  EXPECT_EQ(exec.query("t1").value().state, TaskState::kFailed);
}

TEST_F(CheckpointTest, NoCheckpointIntervalMeansFailure) {
  ExecOptions opts;
  opts.mean_time_between_failures = 50.0;
  opts.failure_seed = 7;
  opts.checkpoint_interval_seconds = 0.0;  // feature off
  ExecutionService exec(sim_, grid_, "s", opts);
  auto spec = make_spec("t1", 1e6);
  spec.checkpointable = true;
  ASSERT_TRUE(exec.submit(spec).is_ok());
  sim_.run();
  EXPECT_EQ(exec.query("t1").value().state, TaskState::kFailed);
}

TEST_F(CheckpointTest, CheckpointProgressNeverExceedsLive) {
  ExecOptions opts;
  opts.checkpoint_interval_seconds = 25.0;
  ExecutionService exec(sim_, grid_, "s", opts);
  auto spec = make_spec("t1", 100.0);
  spec.checkpointable = true;
  ASSERT_TRUE(exec.submit(spec).is_ok());
  sim_.run_until(from_seconds(60));
  // Live checkpoint (on-demand) reflects 60 s; the periodic one trails at 50.
  EXPECT_NEAR(exec.checkpoint("t1").value(), 60.0, 1e-6);
}

class FairShareTest : public ::testing::Test {
 protected:
  FairShareTest() { grid_.add_site("s").add_node("n0", 1.0, nullptr); }
  sim::Simulation sim_;
  sim::Grid grid_;
};

TEST_F(FairShareTest, LightUserJumpsHeavyUsersQueue) {
  ExecOptions opts;
  opts.fair_share = true;
  ExecutionService exec(sim_, grid_, "s", opts);

  // alice builds up usage.
  ASSERT_TRUE(exec.submit(make_spec("a1", 100, "alice")).is_ok());
  ASSERT_TRUE(exec.submit(make_spec("a2", 100, "alice")).is_ok());
  ASSERT_TRUE(exec.submit(make_spec("b1", 100, "bob")).is_ok());
  sim_.run_until(from_seconds(50));  // a1 running; a2, b1 queued

  sim_.run();
  // bob (zero usage) dispatched before alice's second task.
  EXPECT_LT(exec.query("b1").value().start_time, exec.query("a2").value().start_time);
  EXPECT_NEAR(exec.owner_usage("alice"), 200.0, 1e-6);
  EXPECT_NEAR(exec.owner_usage("bob"), 100.0, 1e-6);
}

TEST_F(FairShareTest, PriorityStillDominatesFairShare) {
  ExecOptions opts;
  opts.fair_share = true;
  ExecutionService exec(sim_, grid_, "s", opts);
  ASSERT_TRUE(exec.submit(make_spec("running", 100, "alice")).is_ok());
  // alice's high-priority task beats bob's low-priority one despite usage.
  ASSERT_TRUE(exec.submit(make_spec("alice-high", 10, "alice", 5)).is_ok());
  ASSERT_TRUE(exec.submit(make_spec("bob-low", 10, "bob", 0)).is_ok());
  sim_.run();
  EXPECT_LT(exec.query("alice-high").value().start_time,
            exec.query("bob-low").value().start_time);
}

TEST_F(FairShareTest, DisabledMeansStrictFifo) {
  ExecutionService exec(sim_, grid_, "s");  // fair_share off
  ASSERT_TRUE(exec.submit(make_spec("a1", 100, "alice")).is_ok());
  ASSERT_TRUE(exec.submit(make_spec("a2", 10, "alice")).is_ok());
  ASSERT_TRUE(exec.submit(make_spec("b1", 10, "bob")).is_ok());
  sim_.run();
  EXPECT_LT(exec.query("a2").value().start_time, exec.query("b1").value().start_time);
}

class DrainTest : public ::testing::Test {
 protected:
  DrainTest() {
    auto& site = grid_.add_site("s");
    site.add_node("n0", 1.0, nullptr);
    site.add_node("n1", 1.0, nullptr);
  }
  sim::Simulation sim_;
  sim::Grid grid_;
};

TEST_F(DrainTest, DrainedNodeAcceptsNoNewWork) {
  ExecutionService exec(sim_, grid_, "s");
  ASSERT_TRUE(exec.drain_node(1).is_ok());
  EXPECT_TRUE(exec.node_drained(1));
  EXPECT_EQ(exec.free_nodes(), 1u);

  ASSERT_TRUE(exec.submit(make_spec("t1", 50)).is_ok());
  ASSERT_TRUE(exec.submit(make_spec("t2", 50)).is_ok());
  sim_.run();
  // Both ran serially on node 0.
  EXPECT_EQ(exec.query("t1").value().node, "n0");
  EXPECT_EQ(exec.query("t2").value().node, "n0");
  EXPECT_EQ(exec.query("t2").value().completion_time, from_seconds(100));
}

TEST_F(DrainTest, RunningTaskFinishesDuringDrain) {
  ExecutionService exec(sim_, grid_, "s");
  ASSERT_TRUE(exec.submit(make_spec("t1", 50)).is_ok());
  sim_.run_until(from_seconds(10));
  const auto node_name = exec.query("t1").value().node;
  const std::size_t index = node_name == "n0" ? 0 : 1;
  ASSERT_TRUE(exec.drain_node(index).is_ok());
  sim_.run();
  EXPECT_EQ(exec.query("t1").value().state, TaskState::kCompleted);
}

TEST_F(DrainTest, UndrainResumesDispatch) {
  ExecutionService exec(sim_, grid_, "s");
  ASSERT_TRUE(exec.drain_node(0).is_ok());
  ASSERT_TRUE(exec.drain_node(1).is_ok());
  ASSERT_TRUE(exec.submit(make_spec("t1", 10)).is_ok());
  sim_.run();
  EXPECT_EQ(exec.query("t1").value().state, TaskState::kQueued);  // nowhere to run

  ASSERT_TRUE(exec.undrain_node(0).is_ok());
  sim_.run();
  EXPECT_EQ(exec.query("t1").value().state, TaskState::kCompleted);
  EXPECT_FALSE(exec.node_drained(0));
}

TEST_F(DrainTest, DrainValidation) {
  ExecutionService exec(sim_, grid_, "s");
  EXPECT_EQ(exec.drain_node(99).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(exec.undrain_node(99).code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(exec.node_drained(99));
}

TEST(MonalisaAlarm, EdgeTriggeredThreshold) {
  monalisa::Repository repo;
  std::vector<double> fired;
  repo.add_alarm({"site-a", "cpu_load", 0.8, true},
                 [&](const monalisa::AlarmEvent& ev) { fired.push_back(ev.point.value); });

  repo.publish("site-a", "cpu_load", 1, 0.5);   // below
  repo.publish("site-a", "cpu_load", 2, 0.9);   // crosses: fires
  repo.publish("site-a", "cpu_load", 3, 0.95);  // still above: no refire
  repo.publish("site-a", "cpu_load", 4, 0.4);   // rearms
  repo.publish("site-a", "cpu_load", 5, 0.85);  // fires again
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_DOUBLE_EQ(fired[0], 0.9);
  EXPECT_DOUBLE_EQ(fired[1], 0.85);
  EXPECT_EQ(repo.alarm_log().size(), 2u);
}

TEST(MonalisaAlarm, FallingAlarmAndUnsubscribe) {
  monalisa::Repository repo;
  int fired = 0;
  const int token =
      repo.add_alarm({"s", "free_nodes", 1.0, false}, [&](const monalisa::AlarmEvent&) {
        ++fired;
      });
  repo.publish("s", "free_nodes", 1, 5);
  repo.publish("s", "free_nodes", 2, 0);  // falls to <= 1: fires
  EXPECT_EQ(fired, 1);
  repo.unsubscribe(token);
  repo.publish("s", "free_nodes", 3, 5);
  repo.publish("s", "free_nodes", 4, 0);
  EXPECT_EQ(fired, 1);
}

TEST(MonalisaAlarm, OtherSeriesDoNotTrigger) {
  monalisa::Repository repo;
  int fired = 0;
  repo.add_alarm({"s", "cpu_load", 0.5, true},
                 [&](const monalisa::AlarmEvent&) { ++fired; });
  repo.publish("s", "mem_load", 1, 0.9);
  repo.publish("other", "cpu_load", 1, 0.9);
  EXPECT_EQ(fired, 0);
}

}  // namespace
}  // namespace gae::exec

namespace gae::exec {
namespace {

class PreemptionTest : public ::testing::Test {
 protected:
  PreemptionTest() { grid_.add_site("s").add_node("n0", 1.0, nullptr); }
  sim::Simulation sim_;
  sim::Grid grid_;
};

TEST_F(PreemptionTest, HigherPriorityEvictsRunningTask) {
  ExecOptions opts;
  opts.preemptive = true;
  ExecutionService exec(sim_, grid_, "s", opts);
  ASSERT_TRUE(exec.submit(make_spec("low", 100, "alice", 0)).is_ok());
  sim_.run_until(from_seconds(30));
  ASSERT_TRUE(exec.submit(make_spec("high", 10, "bob", 5)).is_ok());
  sim_.run_until(from_seconds(31));

  // The high-priority task took the node immediately.
  EXPECT_EQ(exec.query("high").value().state, TaskState::kRunning);
  EXPECT_EQ(exec.query("low").value().state, TaskState::kQueued);
  // Vanilla task lost its progress on eviction.
  EXPECT_DOUBLE_EQ(exec.query("low").value().cpu_seconds_used, 0.0);

  sim_.run();
  // high finished at ~40, low restarted after: 41 + 100.
  EXPECT_EQ(exec.query("high").value().completion_time, from_seconds(40));
  EXPECT_EQ(exec.query("low").value().completion_time, from_seconds(140));
}

TEST_F(PreemptionTest, CheckpointableVictimKeepsProgress) {
  ExecOptions opts;
  opts.preemptive = true;
  ExecutionService exec(sim_, grid_, "s", opts);
  auto low = make_spec("low", 100, "alice", 0);
  low.checkpointable = true;
  ASSERT_TRUE(exec.submit(low).is_ok());
  sim_.run_until(from_seconds(30));
  ASSERT_TRUE(exec.submit(make_spec("high", 10, "bob", 5)).is_ok());
  sim_.run();
  // 30 cpu-seconds survived the eviction: resumes at 40, done at 110.
  EXPECT_EQ(exec.query("low").value().completion_time, from_seconds(110));
}

TEST_F(PreemptionTest, EqualPriorityNeverPreempts) {
  ExecOptions opts;
  opts.preemptive = true;
  ExecutionService exec(sim_, grid_, "s", opts);
  ASSERT_TRUE(exec.submit(make_spec("first", 100, "alice", 3)).is_ok());
  ASSERT_TRUE(exec.submit(make_spec("second", 10, "bob", 3)).is_ok());
  sim_.run_until(from_seconds(5));
  EXPECT_EQ(exec.query("first").value().state, TaskState::kRunning);
  EXPECT_EQ(exec.query("second").value().state, TaskState::kQueued);
}

TEST_F(PreemptionTest, DisabledByDefault) {
  ExecutionService exec(sim_, grid_, "s");
  ASSERT_TRUE(exec.submit(make_spec("low", 100, "alice", 0)).is_ok());
  ASSERT_TRUE(exec.submit(make_spec("high", 10, "bob", 9)).is_ok());
  sim_.run_until(from_seconds(5));
  EXPECT_EQ(exec.query("low").value().state, TaskState::kRunning);
  EXPECT_EQ(exec.query("high").value().state, TaskState::kQueued);
}

TEST(HistoryPersistence, SaveLoadRoundTrip) {
  estimators::TaskHistoryStore store;
  store.add({{{"executable", "reco"}, {"nodes", "4"}}, 123.5, from_seconds(10), true});
  store.add({{{"executable", "skim"}}, 45.25, from_seconds(20), false});
  store.add({{}, 7.0, from_seconds(30), true});  // no attributes at all

  const std::string path = ::testing::TempDir() + "/gae_history_test.csv";
  ASSERT_TRUE(estimators::save_history(store, path).is_ok());
  auto loaded = estimators::load_history(path);
  ASSERT_TRUE(loaded.is_ok()) << loaded.status();
  ASSERT_EQ(loaded.value().size(), 3u);
  const auto& entries = loaded.value().entries();
  EXPECT_DOUBLE_EQ(entries[0].runtime_seconds, 123.5);
  EXPECT_EQ(entries[0].attributes.at("executable"), "reco");
  EXPECT_EQ(entries[0].attributes.at("nodes"), "4");
  EXPECT_FALSE(entries[1].successful);
  EXPECT_TRUE(entries[2].attributes.empty());
  EXPECT_EQ(entries[2].recorded_at, from_seconds(30));
  std::remove(path.c_str());
}

TEST(HistoryPersistence, MalformedRejected) {
  const std::string path = ::testing::TempDir() + "/gae_history_bad.csv";
  {
    std::ofstream out(path);
    out << "wrong header\n";
  }
  EXPECT_EQ(estimators::load_history(path).status().code(),
            StatusCode::kInvalidArgument);
  {
    std::ofstream out(path);
    out << "runtime_seconds,recorded_at_s,successful,attributes\n";
    out << "notanumber,0,1,\n";
  }
  EXPECT_EQ(estimators::load_history(path).status().code(),
            StatusCode::kInvalidArgument);
  std::remove(path.c_str());
  EXPECT_EQ(estimators::load_history(path).status().code(), StatusCode::kNotFound);
}

TEST(HistoryPersistence, LoadedHistoryDrivesEstimates) {
  estimators::TaskHistoryStore store;
  std::map<std::string, std::string> attrs = {{"executable", "primes"}};
  for (int i = 0; i < 5; ++i) store.add({attrs, 283.0, 0, true});
  const std::string path = ::testing::TempDir() + "/gae_history_est.csv";
  ASSERT_TRUE(estimators::save_history(store, path).is_ok());

  auto loaded = estimators::load_history(path);
  ASSERT_TRUE(loaded.is_ok());
  estimators::RuntimeEstimator est(
      std::make_shared<estimators::TaskHistoryStore>(std::move(loaded).value()));
  auto r = est.estimate(attrs);
  ASSERT_TRUE(r.is_ok());
  EXPECT_NEAR(r.value().seconds, 283.0, 1e-9);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace gae::exec
