#include "sphinx/scheduler.h"

#include <gtest/gtest.h>

#include "estimators/recorder.h"
#include "sim/load.h"

namespace gae::sphinx {
namespace {

exec::TaskSpec spec(const std::string& id, double work, int priority = 0) {
  exec::TaskSpec s;
  s.id = id;
  s.work_seconds = work;
  s.priority = priority;
  s.attributes = {{"executable", "primes"}, {"login", "alice"}, {"queue", "q"},
                  {"nodes", "1"}};
  return s;
}

JobDescription one_task_job(const std::string& job_id, const std::string& task_id,
                            double work) {
  JobDescription job;
  job.id = job_id;
  job.owner = "alice";
  job.tasks.push_back({spec(task_id, work), {}});
  return job;
}

class SphinxTest : public ::testing::Test {
 protected:
  SphinxTest() {
    grid_.add_site("site-a").add_node("a0", 1.0, nullptr);
    grid_.add_site("site-b").add_node("b0", 1.0, nullptr);
    grid_.set_default_link({100e6, 0});
    exec_a_ = std::make_unique<exec::ExecutionService>(sim_, grid_, "site-a");
    exec_b_ = std::make_unique<exec::ExecutionService>(sim_, grid_, "site-b");
    db_ = std::make_shared<estimators::EstimateDatabase>();

    // Seed both sites' estimators with identical history: 100 s for primes.
    for (auto* est : {&est_a_, &est_b_}) {
      *est = std::make_shared<estimators::RuntimeEstimator>(
          std::make_shared<estimators::TaskHistoryStore>());
      for (int i = 0; i < 5; ++i) {
        (*est)->record(spec("h", 1).attributes, 100.0, 0);
      }
    }

    scheduler_ = std::make_unique<SphinxScheduler>(sim_, grid_, &monitoring_, db_);
    scheduler_->add_site("site-a", {exec_a_.get(), est_a_});
    scheduler_->add_site("site-b", {exec_b_.get(), est_b_});
  }

  sim::Simulation sim_;
  sim::Grid grid_;
  monalisa::Repository monitoring_;
  std::unique_ptr<exec::ExecutionService> exec_a_, exec_b_;
  std::shared_ptr<estimators::RuntimeEstimator> est_a_, est_b_;
  std::shared_ptr<estimators::EstimateDatabase> db_;
  std::unique_ptr<SphinxScheduler> scheduler_;
};

TEST_F(SphinxTest, MakePlanValidation) {
  JobDescription empty;
  empty.id = "j";
  EXPECT_EQ(scheduler_->make_plan(empty).status().code(), StatusCode::kInvalidArgument);

  JobDescription no_id;
  no_id.tasks.push_back({spec("t", 1), {}});
  EXPECT_EQ(scheduler_->make_plan(no_id).status().code(), StatusCode::kInvalidArgument);

  JobDescription dup;
  dup.id = "j";
  dup.tasks.push_back({spec("t", 1), {}});
  dup.tasks.push_back({spec("t", 1), {}});
  EXPECT_EQ(scheduler_->make_plan(dup).status().code(), StatusCode::kInvalidArgument);

  JobDescription bad_dep;
  bad_dep.id = "j";
  bad_dep.tasks.push_back({spec("t", 1), {"ghost"}});
  EXPECT_EQ(scheduler_->make_plan(bad_dep).status().code(), StatusCode::kInvalidArgument);

  JobDescription cycle;
  cycle.id = "j";
  cycle.tasks.push_back({spec("x", 1), {"y"}});
  cycle.tasks.push_back({spec("y", 1), {"x"}});
  EXPECT_EQ(scheduler_->make_plan(cycle).status().code(), StatusCode::kInvalidArgument);
}

TEST_F(SphinxTest, PlanAssignsEveryTaskASite) {
  JobDescription job;
  job.id = "j";
  job.owner = "alice";
  job.tasks.push_back({spec("t1", 10), {}});
  job.tasks.push_back({spec("t2", 10), {"t1"}});
  auto plan = scheduler_->make_plan(job);
  ASSERT_TRUE(plan.is_ok()) << plan.status();
  ASSERT_EQ(plan.value().placements.size(), 2u);
  for (const auto& p : plan.value().placements) {
    EXPECT_TRUE(p.site == "site-a" || p.site == "site-b");
    EXPECT_NEAR(p.score.est_runtime_seconds, 100.0, 1e-6);
  }
}

TEST_F(SphinxTest, LoadedSiteAvoided) {
  // MonALISA reports heavy load at site-a.
  monitoring_.publish("site-a", "cpu_load", sim_.now(), 0.9);
  monitoring_.publish("site-b", "cpu_load", sim_.now(), 0.0);
  auto ranked = scheduler_->rank_sites(spec("t", 10));
  ASSERT_TRUE(ranked.is_ok());
  EXPECT_EQ(ranked.value().front().site, "site-b");
  // Effective runtime at the loaded site ~ 100 / 0.1 = 1000 s.
  EXPECT_NEAR(ranked.value().back().total_seconds, 1000.0, 1.0);
}

TEST_F(SphinxTest, BusySiteQueuePenalised) {
  ASSERT_TRUE(exec_a_->submit(spec("blocker", 400)).is_ok());
  db_->put("blocker", 400.0);
  auto ranked = scheduler_->rank_sites(spec("t", 10));
  ASSERT_TRUE(ranked.is_ok());
  EXPECT_EQ(ranked.value().front().site, "site-b");
  EXPECT_NEAR(ranked.value().back().est_queue_seconds, 400.0, 1e-6);
}

TEST_F(SphinxTest, InputLocalityWins) {
  grid_.site("site-b").store_file("big.root", 50'000'000'000);  // 500 s to move
  auto s = spec("t", 10);
  s.input_files = {"big.root"};
  auto ranked = scheduler_->rank_sites(s);
  ASSERT_TRUE(ranked.is_ok());
  EXPECT_EQ(ranked.value().front().site, "site-b");
  EXPECT_DOUBLE_EQ(ranked.value().front().est_transfer_seconds, 0.0);
  EXPECT_NEAR(ranked.value().back().est_transfer_seconds, 500.0, 1e-6);
}

TEST_F(SphinxTest, MissingInputDisqualifiesViaHugeCost) {
  auto s = spec("t", 10);
  s.input_files = {"nowhere.root"};
  auto ranked = scheduler_->rank_sites(s);
  ASSERT_TRUE(ranked.is_ok());
  EXPECT_GE(ranked.value().front().est_transfer_seconds, 1e9);
}

TEST_F(SphinxTest, DownSiteExcluded) {
  exec_a_->fail_service();
  auto ranked = scheduler_->rank_sites(spec("t", 10));
  ASSERT_TRUE(ranked.is_ok());
  ASSERT_EQ(ranked.value().size(), 1u);
  EXPECT_EQ(ranked.value()[0].site, "site-b");
  EXPECT_EQ(scheduler_->score_site(spec("t", 10), "site-a").status().code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(scheduler_->score_site(spec("t", 10), "nope").status().code(),
            StatusCode::kNotFound);

  exec_b_->fail_service();
  EXPECT_EQ(scheduler_->rank_sites(spec("t", 10)).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(SphinxTest, SubmitRunsTaskAndRecordsEstimate) {
  auto plan = scheduler_->submit(one_task_job("j1", "t1", 50));
  ASSERT_TRUE(plan.is_ok()) << plan.status();
  EXPECT_TRUE(db_->has("t1"));
  EXPECT_NEAR(db_->get("t1").value(), 100.0, 1e-6);
  ASSERT_TRUE(scheduler_->task_site("t1").is_ok());

  sim_.run();
  auto status = scheduler_->job_status("j1");
  ASSERT_TRUE(status.is_ok());
  EXPECT_EQ(status.value().state, JobState::kCompleted);
  EXPECT_EQ(scheduler_->submit(one_task_job("j1", "t9", 1)).status().code(),
            StatusCode::kAlreadyExists);
}

TEST_F(SphinxTest, DagDependenciesRespected) {
  JobDescription job;
  job.id = "dag";
  job.owner = "alice";
  job.tasks.push_back({spec("parent", 10), {}});
  job.tasks.push_back({spec("child1", 10), {"parent"}});
  job.tasks.push_back({spec("child2", 10), {"parent"}});
  job.tasks.push_back({spec("grandchild", 10), {"child1", "child2"}});
  ASSERT_TRUE(scheduler_->submit(job).is_ok());
  sim_.run();

  auto end_of = [&](const std::string& id) {
    auto site = scheduler_->task_site(id).value();
    auto* service = site == "site-a" ? exec_a_.get() : exec_b_.get();
    return service->query(id).value();
  };
  const auto parent = end_of("parent");
  const auto child1 = end_of("child1");
  const auto child2 = end_of("child2");
  const auto grandchild = end_of("grandchild");
  EXPECT_EQ(grandchild.state, exec::TaskState::kCompleted);
  EXPECT_GE(child1.submit_time, parent.completion_time);
  EXPECT_GE(child2.submit_time, parent.completion_time);
  EXPECT_GE(grandchild.submit_time, child1.completion_time);
  EXPECT_GE(grandchild.submit_time, child2.completion_time);
  EXPECT_EQ(scheduler_->job_status("dag").value().state, JobState::kCompleted);
}

TEST_F(SphinxTest, PlanSubscribersNotified) {
  int plans_seen = 0;
  const int token = scheduler_->subscribe_plans(
      [&](const JobDescription& job, const ConcreteJobPlan& plan) {
        ++plans_seen;
        EXPECT_EQ(job.id, plan.job_id);
      });
  ASSERT_TRUE(scheduler_->submit(one_task_job("j1", "t1", 10)).is_ok());
  EXPECT_EQ(plans_seen, 1);
  scheduler_->unsubscribe_plans(token);
  ASSERT_TRUE(scheduler_->submit(one_task_job("j2", "t2", 10)).is_ok());
  EXPECT_EQ(plans_seen, 1);
}

TEST_F(SphinxTest, ReallocateMovesToOtherSite) {
  ASSERT_TRUE(scheduler_->submit(one_task_job("j1", "t1", 500)).is_ok());
  const std::string original = scheduler_->task_site("t1").value();
  sim_.run_until(from_seconds(10));

  auto placement = scheduler_->reallocate("t1", {original}, 0.0);
  ASSERT_TRUE(placement.is_ok()) << placement.status();
  EXPECT_NE(placement.value().site, original);
  EXPECT_EQ(scheduler_->task_site("t1").value(), placement.value().site);
  EXPECT_EQ(scheduler_->reallocate("ghost", {}, 0).status().code(),
            StatusCode::kNotFound);
}

TEST_F(SphinxTest, PlaceAtSpecificSite) {
  ASSERT_TRUE(scheduler_->submit(one_task_job("j1", "t1", 500)).is_ok());
  const std::string original = scheduler_->task_site("t1").value();
  const std::string other = original == "site-a" ? "site-b" : "site-a";
  auto placement = scheduler_->place("t1", other, 42.0);
  ASSERT_TRUE(placement.is_ok()) << placement.status();
  EXPECT_EQ(placement.value().site, other);
  EXPECT_EQ(scheduler_->task_site("t1").value(), other);
  EXPECT_EQ(scheduler_->place("t1", "nope", 0).status().code(), StatusCode::kNotFound);
}

TEST_F(SphinxTest, JobStatusTracksFailure) {
  ASSERT_TRUE(scheduler_->submit(one_task_job("j1", "t1", 500)).is_ok());
  const std::string site = scheduler_->task_site("t1").value();
  auto* service = site == "site-a" ? exec_a_.get() : exec_b_.get();
  sim_.run_until(from_seconds(5));
  ASSERT_TRUE(service->inject_task_failure("t1", "boom").is_ok());
  EXPECT_EQ(scheduler_->job_status("j1").value().state, JobState::kFailed);
  EXPECT_EQ(scheduler_->job_status("nope").status().code(), StatusCode::kNotFound);

  // Reallocation (the Backup & Recovery path) clears the failure.
  auto placement = scheduler_->reallocate("t1", {site}, 0.0);
  ASSERT_TRUE(placement.is_ok());
  EXPECT_EQ(scheduler_->job_status("j1").value().state, JobState::kRunning);
  sim_.run();
  EXPECT_EQ(scheduler_->job_status("j1").value().state, JobState::kCompleted);
}

TEST_F(SphinxTest, CancelJobKillsTasksAndStopsDependents) {
  JobDescription job;
  job.id = "dag";
  job.owner = "alice";
  job.tasks.push_back({spec("parent", 100), {}});
  job.tasks.push_back({spec("child", 100), {"parent"}});
  ASSERT_TRUE(scheduler_->submit(job).is_ok());
  sim_.run_until(from_seconds(10));

  ASSERT_TRUE(scheduler_->cancel_job("dag").is_ok());
  EXPECT_EQ(scheduler_->cancel_job("dag").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(scheduler_->cancel_job("nope").code(), StatusCode::kNotFound);
  EXPECT_EQ(scheduler_->job_status("dag").value().state, JobState::kCancelled);

  sim_.run();
  // Parent was killed; the child must never have been submitted anywhere.
  const std::string parent_site = scheduler_->task_site("parent").value();
  auto* service = parent_site == "site-a" ? exec_a_.get() : exec_b_.get();
  EXPECT_EQ(service->query("parent").value().state, exec::TaskState::kKilled);
  EXPECT_FALSE(exec_a_->query("child").is_ok());
  EXPECT_FALSE(exec_b_->query("child").is_ok());
}

TEST_F(SphinxTest, PlanSpreadsTasksAcrossSites) {
  JobDescription job;
  job.id = "spread";
  job.owner = "alice";
  for (int i = 0; i < 4; ++i) job.tasks.push_back({spec("t" + std::to_string(i), 100), {}});
  auto plan = scheduler_->make_plan(job);
  ASSERT_TRUE(plan.is_ok());
  std::set<std::string> sites;
  for (const auto& p : plan.value().placements) sites.insert(p.site);
  // The plan accounts for its own backlog, so identical tasks spread.
  EXPECT_EQ(sites.size(), 2u);
}

TEST_F(SphinxTest, AutoRetryMovesFailedTaskAway) {
  SchedulerOptions opts;
  opts.task_retry_limit = 2;
  SphinxScheduler retrying(sim_, grid_, &monitoring_, db_, opts);
  retrying.add_site("site-a", {exec_a_.get(), est_a_});
  retrying.add_site("site-b", {exec_b_.get(), est_b_});

  ASSERT_TRUE(retrying.submit(one_task_job("j1", "t1", 100)).is_ok());
  const std::string first = retrying.task_site("t1").value();
  sim_.run_until(from_seconds(10));
  auto* svc = first == "site-a" ? exec_a_.get() : exec_b_.get();
  ASSERT_TRUE(svc->inject_task_failure("t1", "boom").is_ok());

  // Automatically resubmitted at the other site; the job recovers.
  EXPECT_NE(retrying.task_site("t1").value(), first);
  sim_.run();
  EXPECT_EQ(retrying.job_status("j1").value().state, JobState::kCompleted);
}

TEST_F(SphinxTest, RetryLimitExhausts) {
  SchedulerOptions opts;
  opts.task_retry_limit = 1;
  SphinxScheduler retrying(sim_, grid_, &monitoring_, db_, opts);
  retrying.add_site("site-a", {exec_a_.get(), est_a_});
  retrying.add_site("site-b", {exec_b_.get(), est_b_});

  ASSERT_TRUE(retrying.submit(one_task_job("j1", "t1", 100)).is_ok());
  sim_.run_until(from_seconds(5));
  auto fail_wherever = [&] {
    const std::string site = retrying.task_site("t1").value();
    auto* svc = site == "site-a" ? exec_a_.get() : exec_b_.get();
    svc->inject_task_failure("t1", "boom");
  };
  fail_wherever();                   // retry #1 fires
  sim_.run_until(from_seconds(10));
  fail_wherever();                   // no retries left
  sim_.run();
  EXPECT_EQ(retrying.job_status("j1").value().state, JobState::kFailed);
}

TEST_F(SphinxTest, FallbackRuntimeWhenNoHistory) {
  SchedulerOptions opts;
  opts.fallback_runtime_seconds = 777.0;
  SphinxScheduler fresh(sim_, grid_, &monitoring_, db_, opts);
  auto empty_est = std::make_shared<estimators::RuntimeEstimator>(
      std::make_shared<estimators::TaskHistoryStore>());
  fresh.add_site("site-a", {exec_a_.get(), empty_est});
  auto ranked = fresh.rank_sites(spec("t", 10));
  ASSERT_TRUE(ranked.is_ok());
  EXPECT_DOUBLE_EQ(ranked.value()[0].est_runtime_seconds, 777.0);
}

}  // namespace
}  // namespace gae::sphinx
