// Ensemble supervision chaos: kill jobmon, the estimator state, and steering
// mid-workload and assert the deployment converges — the dead instance's
// lease lapses within one TTL, the failure detector declares it dead, the
// supervisor restarts it with recovered WAL/journal state byte-equal to the
// pre-crash view, and the workload (including the fig-7 steering scenario)
// still completes. Everything runs in virtual time, so the timeline below is
// exact: leases are 10 s, heartbeats every 5 s, death after 2 missed beats,
// restart backoff 1 s.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "clarens/registry.h"
#include "common/wal.h"
#include "estimators/estimate_db.h"
#include "estimators/runtime_estimator.h"
#include "jobmon/service.h"
#include "monalisa/repository.h"
#include "sim/engine.h"
#include "sim/grid.h"
#include "sim/load.h"
#include "sphinx/scheduler.h"
#include "steering/journal.h"
#include "steering/service.h"
#include "supervision/failure_detector.h"
#include "supervision/supervisor.h"

namespace gae {
namespace {

constexpr double kLeaseTtlS = 10.0;
constexpr double kHeartbeatS = 5.0;
constexpr double kJobSeconds = 283.0;  // fig. 7's prime-counting job
constexpr double kSiteALoad = 0.8;

std::map<std::string, std::string> fig7_attrs() {
  return {{"executable", "primes"}, {"login", "alice"}, {"queue", "short"},
          {"nodes", "1"}};
}

exec::TaskSpec task_spec(const std::string& id, double work) {
  exec::TaskSpec s;
  s.id = id;
  s.job_id = "job-" + id;
  s.owner = "alice";
  s.executable = "primes";
  s.work_seconds = work;
  s.attributes = fig7_attrs();
  return s;
}

sphinx::JobDescription one_task_job(const std::string& job_id, exec::TaskSpec task) {
  sphinx::JobDescription job;
  job.id = job_id;
  job.owner = "alice";
  task.job_id = job_id;
  job.tasks.push_back({std::move(task), {}});
  return job;
}

/// The fig-7 grid (loaded site-a, free site-b, both estimating 283 s) plus
/// the full robustness layer: leased registry, WAL-backed jobmon and
/// estimator state, journaled steering, failure detector and supervisor —
/// all driven by the simulation clock.
class SupervisionChaosTest : public ::testing::Test {
 protected:
  SupervisionChaosTest()
      : registry_("gae-host", &sim_.clock(),
                  clarens::RegistryOptions{from_seconds(kLeaseTtlS)}),
        jobmon_wal_(&jobmon_storage_),
        estimate_wal_(&estimate_storage_),
        detector_(sim_.clock(),
                  supervision::FailureDetectorOptions{from_seconds(kHeartbeatS),
                                                      /*suspect_after_missed=*/1,
                                                      /*dead_after_missed=*/2},
                  &monitoring_),
        supervisor_(sim_.clock(), supervisor_options(), &monitoring_) {
    grid_.add_site("site-a").add_node("a0", 1.0,
                                      std::make_shared<sim::ConstantLoad>(kSiteALoad));
    grid_.add_site("site-b").add_node("b0", 1.0, nullptr);
    grid_.set_default_link({100e6, 0});

    exec_a_ = std::make_unique<exec::ExecutionService>(sim_, grid_, "site-a");
    exec_b_ = std::make_unique<exec::ExecutionService>(sim_, grid_, "site-b");

    estimate_db_ = std::make_shared<estimators::EstimateDatabase>();
    estimate_db_->attach_wal(&estimate_wal_);

    for (auto* holder : {&est_a_, &est_b_}) {
      *holder = std::make_shared<estimators::RuntimeEstimator>(
          std::make_shared<estimators::TaskHistoryStore>());
      for (int i = 0; i < 8; ++i) (*holder)->record(fig7_attrs(), kJobSeconds, 0);
    }

    scheduler_ = std::make_unique<sphinx::SphinxScheduler>(sim_, grid_, &monitoring_,
                                                           estimate_db_);
    scheduler_->add_site("site-a", {exec_a_.get(), est_a_});
    scheduler_->add_site("site-b", {exec_b_.get(), est_b_});

    jms_ = std::make_unique<jobmon::JobMonitoringService>(sim_.clock(), &monitoring_,
                                                          estimate_db_, &jobmon_wal_);
    jms_->attach_site("site-a", exec_a_.get());
    jms_->attach_site("site-b", exec_b_.get());

    supervisor_.attach(detector_);
  }

  static supervision::SupervisorOptions supervisor_options() {
    supervision::SupervisorOptions o;
    o.restart_backoff = RetryPolicy{/*max_attempts=*/3, /*initial_backoff_ms=*/1000,
                                    /*backoff_multiplier=*/2.0, /*max_backoff_ms=*/60'000,
                                    /*jitter_fraction=*/0.0, /*jitter_seed=*/1};
    return o;
  }

  static clarens::ServiceInfo service_info(const std::string& name) {
    clarens::ServiceInfo i;
    i.name = name;
    i.host = "127.0.0.1";
    i.port = 9000;
    return i;
  }

  steering::SteeringService& make_steering(steering::SteeringOptions options = {}) {
    steering::SteeringService::Deps deps;
    deps.sim = &sim_;
    deps.scheduler = scheduler_.get();
    deps.jobmon = jms_.get();
    deps.services = {{"site-a", exec_a_.get()}, {"site-b", exec_b_.get()}};
    deps.journal = &journal_;
    deps.monitoring = &monitoring_;
    steering_ = std::make_unique<steering::SteeringService>(deps, options);
    return *steering_;
  }

  static steering::SteeringOptions fig7_options() {
    steering::SteeringOptions o;
    o.auto_steer = true;
    o.optimizer_interval_seconds = 15;
    o.min_observation_seconds = 30;
    o.keep_original_on_move = true;  // the paper's "testing purposes" mode
    return o;
  }

  /// The deployment's heartbeat plane: every interval, each live service
  /// renews its lease and beats the detector, then the registry sweeps,
  /// verdicts are computed and the supervisor runs due restarts.
  void arm_supervision(double horizon_s) {
    for (double t = kHeartbeatS; t <= horizon_s; t += kHeartbeatS) {
      sim_.schedule_at(from_seconds(t), [this] {
        if (jms_) {
          detector_.heartbeat("jobmon");
          registry_.renew("jobmon", jobmon_lease_.id);
        }
        if (estimator_alive_) {
          detector_.heartbeat("estimator");
          registry_.renew("estimator", estimator_lease_.id);
        }
        if (steering_) {
          detector_.heartbeat("steering");
          registry_.renew("steering", steering_lease_.id);
        }
        registry_.sweep();
        detector_.check();
        supervisor_.tick();
      });
    }
  }

  /// Restart recipe: rebuild jobmon on the same WAL, recover, re-attach the
  /// execution sites, hand the instance back to steering, fresh lease.
  Status restart_jobmon() {
    jms_ = std::make_unique<jobmon::JobMonitoringService>(sim_.clock(), &monitoring_,
                                                          estimate_db_, &jobmon_wal_);
    const Status s = jms_->mutable_db().recover();
    if (!s.is_ok()) return s;
    recovered_jobmon_ = jms_->db().export_state();  // before new events arrive
    jms_->attach_site("site-a", exec_a_.get());
    jms_->attach_site("site-b", exec_b_.get());
    if (steering_) steering_->rebind_jobmon(jms_.get());
    jobmon_lease_ = registry_.register_service(service_info("jobmon"));
    return Status::ok();
  }

  Status restart_estimator() {
    estimate_db_->attach_wal(&estimate_wal_);
    const Status s = estimate_db_->recover();
    if (!s.is_ok()) return s;
    recovered_estimates_ = estimate_db_->export_state();
    estimator_alive_ = true;
    estimator_lease_ = registry_.register_service(service_info("estimator"));
    return Status::ok();
  }

  Status restart_steering(const steering::SteeringOptions& options) {
    auto& revived = make_steering(options);
    const Status s = revived.restore_from_journal(journal_.lines());
    if (!s.is_ok()) return s;
    steering_lease_ = registry_.register_service(service_info("steering"));
    return Status::ok();
  }

  sim::Simulation sim_;
  sim::Grid grid_;
  monalisa::Repository monitoring_;
  clarens::ServiceRegistry registry_;
  MemoryWalStorage jobmon_storage_, estimate_storage_;
  Wal jobmon_wal_, estimate_wal_;
  steering::MemoryJournalSink journal_;

  std::unique_ptr<exec::ExecutionService> exec_a_, exec_b_;
  std::shared_ptr<estimators::RuntimeEstimator> est_a_, est_b_;
  std::shared_ptr<estimators::EstimateDatabase> estimate_db_;
  std::unique_ptr<sphinx::SphinxScheduler> scheduler_;
  std::unique_ptr<jobmon::JobMonitoringService> jms_;
  std::unique_ptr<steering::SteeringService> steering_;

  supervision::FailureDetector detector_;
  supervision::Supervisor supervisor_;

  clarens::Lease jobmon_lease_, estimator_lease_, steering_lease_;
  bool estimator_alive_ = false;

  std::string pre_crash_jobmon_, recovered_jobmon_;
  std::string pre_crash_estimates_, recovered_estimates_;
  bool lookup_failed_in_outage_ = false;
  bool tombstoned_in_outage_ = false;
};

// ---------------------------------------------------------------------------
// jobmon crash
// ---------------------------------------------------------------------------

TEST_F(SupervisionChaosTest, JobmonCrashExpiresLeaseRestartsAndRecoversState) {
  steering::SteeringOptions opts;
  opts.auto_steer = false;  // isolate monitoring recovery from steering moves
  make_steering(opts);

  jobmon_lease_ = registry_.register_service(service_info("jobmon"));
  detector_.watch("jobmon");
  supervisor_.manage({"jobmon", [this] { return restart_jobmon(); }});

  // Blocker keeps site-a busy so t1 deterministically lands on free site-b.
  ASSERT_TRUE(exec_a_->submit(task_spec("blocker", 50'000)).is_ok());
  estimate_db_->put("blocker", 50'000);
  ASSERT_TRUE(scheduler_->submit(one_task_job("j1", task_spec("t1", 300))).is_ok());
  ASSERT_EQ(scheduler_->task_site("t1").value(), "site-b");

  arm_supervision(400);

  // Crash mid-workload: the monitoring process is simply gone. Heartbeats
  // and lease renewals stop with it.
  sim_.schedule_at(from_seconds(62), [this] {
    pre_crash_jobmon_ = jms_->db().export_state();
    steering_->rebind_jobmon(nullptr);
    jms_.reset();
  });
  // One lease TTL after the crash the registry must no longer route to the
  // dead instance (last renewal t=60 -> lapse t=70; checked at t=72, which
  // is crash + one TTL).
  sim_.schedule_at(from_seconds(72), [this] {
    lookup_failed_in_outage_ = !registry_.lookup("jobmon").is_ok();
    tombstoned_in_outage_ = registry_.tombstone("jobmon").is_ok();
  });

  sim_.run_until(from_seconds(400));

  EXPECT_TRUE(lookup_failed_in_outage_);
  EXPECT_TRUE(tombstoned_in_outage_);
  EXPECT_GE(registry_.expirations(), 1u);

  // The supervisor rebuilt the service from its WAL...
  ASSERT_TRUE(jms_ != nullptr);
  EXPECT_EQ(supervisor_.stats().deaths_seen, 1u);
  EXPECT_EQ(supervisor_.stats().restarts_succeeded, 1u);
  ASSERT_FALSE(pre_crash_jobmon_.empty());
  // ...byte-equal to the pre-crash repository (snapshot + tail replay)...
  EXPECT_EQ(recovered_jobmon_, pre_crash_jobmon_);
  // ...and the ensemble is healthy again: fresh lease, live heartbeats.
  EXPECT_TRUE(registry_.lookup("jobmon").is_ok());
  EXPECT_EQ(detector_.liveness("jobmon"), supervision::Liveness::kAlive);

  // The recovered monitor saw the workload through to completion.
  EXPECT_EQ(jms_->status("t1").value(), "COMPLETED");
  EXPECT_EQ(steering_->stats().completions, 1u);

  // MonALISA carries the whole story: liveness dipped to 0 and returned.
  auto series = monitoring_.series("jobmon", "liveness", 0, from_seconds(400));
  ASSERT_FALSE(series.empty());
  bool saw_dead = false;
  for (const auto& p : series) saw_dead = saw_dead || p.value == 0.0;
  EXPECT_TRUE(saw_dead);
  EXPECT_DOUBLE_EQ(series.back().value, 1.0);
}

TEST_F(SupervisionChaosTest, JobmonSnapshotBeforeCrashStillRecoversExactly) {
  steering::SteeringOptions opts;
  opts.auto_steer = false;
  make_steering(opts);
  jobmon_lease_ = registry_.register_service(service_info("jobmon"));
  detector_.watch("jobmon");
  supervisor_.manage({"jobmon", [this] { return restart_jobmon(); }});

  ASSERT_TRUE(exec_a_->submit(task_spec("blocker", 50'000)).is_ok());
  estimate_db_->put("blocker", 50'000);
  ASSERT_TRUE(scheduler_->submit(one_task_job("j1", task_spec("t1", 300))).is_ok());

  arm_supervision(200);
  // Periodic compaction ran before the crash: recovery folds snapshot + tail.
  sim_.schedule_at(from_seconds(30), [this] {
    ASSERT_TRUE(jms_->mutable_db().save_snapshot().is_ok());
  });
  sim_.schedule_at(from_seconds(62), [this] {
    pre_crash_jobmon_ = jms_->db().export_state();
    steering_->rebind_jobmon(nullptr);
    jms_.reset();
  });
  sim_.run_until(from_seconds(200));

  ASSERT_TRUE(jms_ != nullptr);
  EXPECT_EQ(recovered_jobmon_, pre_crash_jobmon_);
  EXPECT_EQ(jms_->db().export_state().empty(), false);
}

// ---------------------------------------------------------------------------
// estimator crash
// ---------------------------------------------------------------------------

TEST_F(SupervisionChaosTest, EstimatorCrashRecoversByteEqualEstimates) {
  steering::SteeringOptions opts;
  opts.auto_steer = false;
  make_steering(opts);

  estimator_alive_ = true;
  estimator_lease_ = registry_.register_service(service_info("estimator"));
  detector_.watch("estimator");
  supervisor_.manage({"estimator", [this] { return restart_estimator(); }});

  ASSERT_TRUE(exec_a_->submit(task_spec("blocker", 50'000)).is_ok());
  estimate_db_->put("blocker", 50'000);
  for (int i = 1; i <= 3; ++i) {
    const std::string id = "t" + std::to_string(i);
    ASSERT_TRUE(
        scheduler_->submit(one_task_job("j" + std::to_string(i), task_spec(id, 100 + i)))
            .is_ok());
  }

  arm_supervision(200);

  // Crash: the estimator's in-memory map diverges from the journal (here it
  // grows a ghost entry the WAL never saw — any post-crash memory is junk).
  sim_.schedule_at(from_seconds(32), [this] {
    estimator_alive_ = false;
    pre_crash_estimates_ = estimate_db_->export_state();
    estimate_db_->attach_wal(nullptr);
    estimate_db_->put("ghost-of-crash", 1.0);
  });
  sim_.schedule_at(from_seconds(42), [this] {
    lookup_failed_in_outage_ = !registry_.lookup("estimator").is_ok();
  });

  sim_.run_until(from_seconds(200));

  EXPECT_TRUE(lookup_failed_in_outage_);
  EXPECT_TRUE(estimator_alive_);  // supervisor brought it back
  EXPECT_EQ(supervisor_.stats().restarts_succeeded, 1u);
  ASSERT_FALSE(pre_crash_estimates_.empty());
  EXPECT_EQ(recovered_estimates_, pre_crash_estimates_);
  EXPECT_FALSE(estimate_db_->has("ghost-of-crash"));
  EXPECT_TRUE(registry_.lookup("estimator").is_ok());

  // recover(); recover() is a fixed point even on the live shared instance.
  ASSERT_TRUE(estimate_db_->recover().is_ok());
  EXPECT_EQ(estimate_db_->export_state(), recovered_estimates_);
  // Compaction keeps the bytes too.
  ASSERT_TRUE(estimate_db_->save_snapshot().is_ok());
  ASSERT_TRUE(estimate_db_->recover().is_ok());
  EXPECT_EQ(estimate_db_->export_state(), recovered_estimates_);
}

// ---------------------------------------------------------------------------
// steering crash mid-fig-7
// ---------------------------------------------------------------------------

TEST_F(SupervisionChaosTest, SteeringCrashMidFig7StillCompletesSteeredJob) {
  make_steering(fig7_options());
  steering_lease_ = registry_.register_service(service_info("steering"));
  detector_.watch("steering");
  supervisor_.manage(
      {"steering", [this] { return restart_steering(fig7_options()); }});

  // Fig. 7: both sites estimate 283 s, the tie lands the job on loaded
  // site-a, and steering is what rescues it.
  auto plan = scheduler_->submit(one_task_job("analysis-job", task_spec("primes-1",
                                                                        kJobSeconds)));
  ASSERT_TRUE(plan.is_ok()) << plan.status();
  ASSERT_EQ(plan.value().placements[0].site, "site-a");

  arm_supervision(600);

  // Steering dies before its first move decision (min observation is 30 s).
  sim_.schedule_at(from_seconds(22), [this] { steering_.reset(); });
  sim_.schedule_at(from_seconds(32), [this] {
    lookup_failed_in_outage_ = !registry_.lookup("steering").is_ok();
  });

  sim_.run_until(from_seconds(2000));

  EXPECT_TRUE(lookup_failed_in_outage_);
  EXPECT_EQ(supervisor_.stats().restarts_succeeded, 1u);
  ASSERT_TRUE(steering_ != nullptr);

  // The revived instance re-adopted the watch from the journal, then made
  // the fig-7 move and saw the job complete.
  EXPECT_GE(steering_->stats().journal_adopted, 1u);
  EXPECT_GE(steering_->stats().auto_moves, 1u);
  EXPECT_GE(steering_->stats().completions, 1u);

  auto steered = exec_b_->query("primes-1");
  ASSERT_TRUE(steered.is_ok());
  EXPECT_EQ(steered.value().state, exec::TaskState::kCompleted);
  // Far ahead of the loaded site-a run (~283/0.2 s), despite the crash.
  EXPECT_LT(to_seconds(steered.value().completion_time), 700.0);
  EXPECT_EQ(jms_->status("primes-1").value(), "COMPLETED");
}

}  // namespace
}  // namespace gae
