#include "workload/trace_io.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "common/rng.h"

namespace gae::workload {
namespace {

std::vector<AccountingRecord> sample_trace(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  auto pop = ApplicationPopulation::make(rng, {});
  TraceOptions topts;
  topts.num_records = n;
  return generate_trace(pop, rng, topts);
}

TEST(TraceIo, CsvRoundTripPreservesEverything) {
  const auto trace = sample_trace(50, 9);
  auto back = trace_from_csv(trace_to_csv(trace));
  ASSERT_TRUE(back.is_ok()) << back.status();
  ASSERT_EQ(back.value().size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const auto& a = trace[i];
    const auto& b = back.value()[i];
    EXPECT_EQ(a.account, b.account);
    EXPECT_EQ(a.login, b.login);
    EXPECT_EQ(a.executable, b.executable);
    EXPECT_EQ(a.partition, b.partition);
    EXPECT_EQ(a.queue, b.queue);
    EXPECT_EQ(a.nodes, b.nodes);
    EXPECT_EQ(a.interactive, b.interactive);
    EXPECT_EQ(a.successful, b.successful);
    EXPECT_NEAR(a.requested_cpu_hours, b.requested_cpu_hours,
                1e-6 * a.requested_cpu_hours + 1e-9);
    // Times survive to microsecond resolution.
    EXPECT_NEAR(static_cast<double>(a.submit_time), static_cast<double>(b.submit_time), 2);
    EXPECT_NEAR(static_cast<double>(a.complete_time), static_cast<double>(b.complete_time), 2);
  }
}

TEST(TraceIo, EmptyTraceRoundTrips) {
  auto back = trace_from_csv(trace_to_csv({}));
  ASSERT_TRUE(back.is_ok());
  EXPECT_TRUE(back.value().empty());
}

TEST(TraceIo, MalformedInputsRejected) {
  EXPECT_FALSE(trace_from_csv("").is_ok());
  EXPECT_FALSE(trace_from_csv("wrong,header\n").is_ok());
  const std::string good = trace_to_csv(sample_trace(1, 1));
  EXPECT_FALSE(trace_from_csv(good + "too,few,fields\n").is_ok());
  // Non-numeric nodes field.
  std::string bad = good;
  auto pos = bad.find('\n');  // end of header
  pos = bad.find('\n', pos + 1);
  bad.insert(pos + 1, "a,b,c,d,e,NOTANUMBER,0,1,1.0,1.0,0.1,0,1,2\n");
  EXPECT_FALSE(trace_from_csv(bad).is_ok());
}

TEST(TraceIo, FileRoundTrip) {
  const auto trace = sample_trace(20, 4);
  const std::string path = ::testing::TempDir() + "/gae_trace_test.csv";
  ASSERT_TRUE(save_trace(trace, path).is_ok());
  auto back = load_trace(path);
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back.value().size(), 20u);
  std::remove(path.c_str());
  EXPECT_EQ(load_trace(path).status().code(), StatusCode::kNotFound);
}

TEST(TraceIo, RuntimeFidelityForEstimators) {
  // The quantity the fig-5 pipeline consumes must survive the round trip.
  const auto trace = sample_trace(30, 12);
  auto back = trace_from_csv(trace_to_csv(trace)).value();
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_NEAR(trace[i].runtime_seconds(), back[i].runtime_seconds(), 1e-5);
  }
}

}  // namespace
}  // namespace gae::workload
