// Grid PKI: certificate issuance, proxy delegation, chain verification, and
// certificate-based login; plus VO-group access control.
#include "clarens/credentials.h"

#include <gtest/gtest.h>

#include "clarens/access_control.h"
#include "clarens/auth.h"
#include "common/clock.h"

namespace gae::clarens {
namespace {

TEST(SubjectCn, Parsing) {
  EXPECT_EQ(subject_cn("/O=GAE/CN=alice"), "alice");
  EXPECT_EQ(subject_cn("/O=GAE/CN=alice/proxy"), "alice");
  EXPECT_EQ(subject_cn("/O=GAE"), "");
}

class CredentialsTest : public ::testing::Test {
 protected:
  CredentialsTest() : ca_("GAE-CA") {}
  CertificateAuthority ca_;
};

TEST_F(CredentialsTest, IssueAndVerifyUserCert) {
  const auto cred = ca_.issue("alice", from_seconds(3600));
  EXPECT_EQ(cred.certificate.subject, "/O=GAE/CN=alice");
  EXPECT_EQ(cred.certificate.issuer, "GAE-CA");
  EXPECT_FALSE(cred.certificate.is_proxy);

  auto cn = ca_.verify_chain({cred.certificate}, from_seconds(100));
  ASSERT_TRUE(cn.is_ok()) << cn.status();
  EXPECT_EQ(cn.value(), "alice");
}

TEST_F(CredentialsTest, ExpiredCertRejected) {
  const auto cred = ca_.issue("alice", from_seconds(100));
  auto r = ca_.verify_chain({cred.certificate}, from_seconds(101));
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnauthenticated);
}

TEST_F(CredentialsTest, TamperedCertRejected) {
  auto cred = ca_.issue("alice", from_seconds(3600));
  cred.certificate.subject = "/O=GAE/CN=mallory";  // forge identity
  auto r = ca_.verify_chain({cred.certificate}, 0);
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kPermissionDenied);
}

TEST_F(CredentialsTest, ForeignCaRejected) {
  CertificateAuthority other("EVIL-CA");
  const auto cred = other.issue("alice", from_seconds(3600));
  auto r = ca_.verify_chain({cred.certificate}, 0);
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kPermissionDenied);
}

TEST_F(CredentialsTest, ProxyDelegationChain) {
  const auto user = ca_.issue("alice", from_seconds(3600), /*delegation_budget=*/2);
  auto proxy1 = CertificateAuthority::delegate(user, from_seconds(1800));
  ASSERT_TRUE(proxy1.is_ok());
  EXPECT_TRUE(proxy1.value().certificate.is_proxy);
  EXPECT_EQ(proxy1.value().certificate.delegation_budget, 1);

  auto proxy2 = CertificateAuthority::delegate(proxy1.value(), from_seconds(900));
  ASSERT_TRUE(proxy2.is_ok());

  // Full chain verifies to the base identity.
  auto cn = ca_.verify_chain({proxy2.value().certificate, proxy1.value().certificate,
                              user.certificate},
                             from_seconds(100));
  ASSERT_TRUE(cn.is_ok()) << cn.status();
  EXPECT_EQ(cn.value(), "alice");

  // A third delegation exceeds the budget.
  auto proxy3 = CertificateAuthority::delegate(proxy2.value(), from_seconds(100));
  ASSERT_FALSE(proxy3.is_ok());
  EXPECT_EQ(proxy3.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(CredentialsTest, ProxyCannotOutliveParent) {
  const auto user = ca_.issue("alice", from_seconds(1000));
  // delegate() clamps the proxy's expiry to the parent's.
  auto proxy = CertificateAuthority::delegate(user, from_seconds(5000));
  ASSERT_TRUE(proxy.is_ok());
  EXPECT_EQ(proxy.value().certificate.not_after, from_seconds(1000));
  // Hand-extending the expiry breaks the signature.
  auto forged = proxy.value();
  forged.certificate.not_after = from_seconds(5000);
  auto r = ca_.verify_chain({forged.certificate, user.certificate}, from_seconds(100));
  EXPECT_FALSE(r.is_ok());
}

TEST_F(CredentialsTest, BrokenChainRejected) {
  const auto alice = ca_.issue("alice", from_seconds(3600));
  const auto bob = ca_.issue("bob", from_seconds(3600));
  auto alice_proxy = CertificateAuthority::delegate(alice, from_seconds(1800));
  ASSERT_TRUE(alice_proxy.is_ok());
  // alice's proxy presented over bob's base cert: issuer linkage fails.
  auto r = ca_.verify_chain({alice_proxy.value().certificate, bob.certificate},
                            from_seconds(10));
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kPermissionDenied);
}

TEST_F(CredentialsTest, EmptyChainAndProxyOnlyRejected) {
  EXPECT_FALSE(ca_.verify_chain({}, 0).is_ok());
  const auto user = ca_.issue("alice", from_seconds(3600));
  auto proxy = CertificateAuthority::delegate(user, from_seconds(1800));
  ASSERT_TRUE(proxy.is_ok());
  // Proxy without its base certificate cannot be verified.
  EXPECT_FALSE(ca_.verify_chain({proxy.value().certificate}, 0).is_ok());
}

TEST_F(CredentialsTest, CertificateLoginMintsSession) {
  ManualClock clock;
  AuthService auth(clock);
  auth.trust(&ca_);
  const auto cred = ca_.issue("alice", from_seconds(3600));
  auto proxy = CertificateAuthority::delegate(cred, from_seconds(1800));
  ASSERT_TRUE(proxy.is_ok());

  auto token = auth.login_with_chain({proxy.value().certificate, cred.certificate});
  ASSERT_TRUE(token.is_ok()) << token.status();
  auto user = auth.authenticate(token.value());
  ASSERT_TRUE(user.is_ok());
  EXPECT_EQ(user.value(), "alice");
}

TEST_F(CredentialsTest, CertificateLoginWithoutTrustedCaFails) {
  ManualClock clock;
  AuthService auth(clock);
  const auto cred = ca_.issue("alice", from_seconds(3600));
  EXPECT_EQ(auth.login_with_chain({cred.certificate}).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(AccessControlGroups, GroupMembershipRules) {
  AccessControl acl;
  acl.add_group_member("cms", "alice");
  acl.add_group_member("cms", "bob");
  acl.allow("group:cms", "jobmon.");
  EXPECT_TRUE(acl.check("alice", "jobmon.info"));
  EXPECT_TRUE(acl.check("bob", "jobmon.info"));
  EXPECT_FALSE(acl.check("eve", "jobmon.info"));
  EXPECT_TRUE(acl.is_member("cms", "alice"));
  EXPECT_FALSE(acl.is_member("cms", "eve"));
  EXPECT_FALSE(acl.is_member("atlas", "alice"));
}

TEST(AccessControlGroups, UserRuleBeatsGroupRuleAtSameLength) {
  AccessControl acl;
  acl.add_group_member("cms", "alice");
  acl.allow("group:cms", "steering.");
  acl.deny("alice", "steering.");
  EXPECT_FALSE(acl.check("alice", "steering.kill"));  // personal deny wins
  acl.add_group_member("cms", "bob");
  EXPECT_TRUE(acl.check("bob", "steering.kill"));
}

TEST(AccessControlGroups, GroupRuleBeatsWildcardAtSameLength) {
  AccessControl acl;
  acl.add_group_member("ops", "carol");
  acl.deny("*", "quota.");
  acl.allow("group:ops", "quota.");
  EXPECT_TRUE(acl.check("carol", "quota.grant"));
  EXPECT_FALSE(acl.check("dave", "quota.grant"));
}

}  // namespace
}  // namespace gae::clarens
