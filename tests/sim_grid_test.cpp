#include "sim/grid.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "sim/load.h"

namespace gae::sim {
namespace {

TEST(LoadProfiles, ConstantLoad) {
  ConstantLoad load(0.4);
  EXPECT_DOUBLE_EQ(load.load_at(0), 0.4);
  EXPECT_DOUBLE_EQ(load.load_at(1'000'000'000), 0.4);
  EXPECT_EQ(load.next_change(0), kSimTimeNever);
}

TEST(LoadProfiles, ConstantLoadClamped) {
  EXPECT_LT(ConstantLoad(1.5).load_at(0), 1.0);  // never fully starves a node
  EXPECT_DOUBLE_EQ(ConstantLoad(-0.5).load_at(0), 0.0);
}

TEST(LoadProfiles, StepLoadSchedule) {
  StepLoad load(0.1, {{from_seconds(10), 0.8}, {from_seconds(20), 0.2}});
  EXPECT_DOUBLE_EQ(load.load_at(0), 0.1);
  EXPECT_DOUBLE_EQ(load.load_at(from_seconds(10)), 0.8);
  EXPECT_DOUBLE_EQ(load.load_at(from_seconds(15)), 0.8);
  EXPECT_DOUBLE_EQ(load.load_at(from_seconds(25)), 0.2);  // holds last value
  EXPECT_EQ(load.next_change(0), from_seconds(10));
  EXPECT_EQ(load.next_change(from_seconds(10)), from_seconds(20));
  EXPECT_EQ(load.next_change(from_seconds(20)), kSimTimeNever);
}

TEST(LoadProfiles, StepLoadSortsSteps) {
  StepLoad load(0.0, {{from_seconds(20), 0.5}, {from_seconds(10), 0.9}});
  EXPECT_DOUBLE_EQ(load.load_at(from_seconds(15)), 0.9);
  EXPECT_DOUBLE_EQ(load.load_at(from_seconds(25)), 0.5);
}

TEST(LoadProfiles, PeriodicSquareWave) {
  PeriodicLoad load(0.0, 0.9, from_seconds(10), from_seconds(5));
  EXPECT_DOUBLE_EQ(load.load_at(0), 0.9);                 // on phase
  EXPECT_DOUBLE_EQ(load.load_at(from_seconds(9)), 0.9);
  EXPECT_DOUBLE_EQ(load.load_at(from_seconds(10)), 0.0);  // off phase
  EXPECT_DOUBLE_EQ(load.load_at(from_seconds(14)), 0.0);
  EXPECT_DOUBLE_EQ(load.load_at(from_seconds(15)), 0.9);  // wraps
  EXPECT_EQ(load.next_change(0), from_seconds(10));
  EXPECT_EQ(load.next_change(from_seconds(10)), from_seconds(15));
  EXPECT_EQ(load.next_change(from_seconds(12)), from_seconds(15));
  EXPECT_THROW(PeriodicLoad(0, 1, 0, 5), std::invalid_argument);
}

TEST(LoadProfiles, RandomWalkBoundsAndDeterminism) {
  auto a = make_random_walk_load(Rng(5), 0.2, 0.8, from_seconds(30), from_seconds(3600));
  auto b = make_random_walk_load(Rng(5), 0.2, 0.8, from_seconds(30), from_seconds(3600));
  for (SimTime t = 0; t <= from_seconds(3600); t += from_seconds(17)) {
    const double la = a->load_at(t);
    EXPECT_GE(la, 0.2);
    EXPECT_LE(la, 0.8);
    EXPECT_DOUBLE_EQ(la, b->load_at(t));  // same seed, same walk
  }
}

TEST(Node, EffectiveRate) {
  Node node("n0", 2.0, std::make_shared<ConstantLoad>(0.5));
  EXPECT_DOUBLE_EQ(node.effective_rate(0), 1.0);  // 2.0 speed * 50% free
  EXPECT_THROW(Node("bad", 0.0, nullptr), std::invalid_argument);
}

TEST(Node, NullLoadProfileMeansIdle) {
  Node node("n0", 1.0, nullptr);
  EXPECT_DOUBLE_EQ(node.background_load(0), 0.0);
  EXPECT_DOUBLE_EQ(node.effective_rate(0), 1.0);
}

TEST(Site, NodesAndFiles) {
  Site site("caltech");
  site.add_node("n0", 1.0, nullptr);
  site.add_node("n1", 1.5, nullptr);
  EXPECT_EQ(site.node_count(), 2u);
  EXPECT_EQ(site.node(1).name(), "n1");

  site.store_file("data.root", 1'000'000);
  EXPECT_TRUE(site.has_file("data.root"));
  EXPECT_EQ(site.file_size("data.root").value(), 1'000'000u);
  EXPECT_EQ(site.file_size("other").status().code(), StatusCode::kNotFound);
}

class GridTest : public ::testing::Test {
 protected:
  GridTest() {
    grid_.add_site("a").add_node("a0", 1.0, nullptr);
    grid_.add_site("b").add_node("b0", 1.0, nullptr);
    grid_.add_site("c").add_node("c0", 1.0, nullptr);
    grid_.set_default_link({100e6, from_millis(10)});  // 100 MB/s, 10 ms
  }
  Grid grid_;
};

TEST_F(GridTest, SiteAccess) {
  EXPECT_TRUE(grid_.has_site("a"));
  EXPECT_FALSE(grid_.has_site("zz"));
  EXPECT_THROW(grid_.site("zz"), std::out_of_range);
  EXPECT_EQ(grid_.site_names().size(), 3u);
}

TEST_F(GridTest, AddSiteIdempotent) {
  grid_.site("a").store_file("f", 1);
  grid_.add_site("a");  // must not wipe the existing site
  EXPECT_TRUE(grid_.site("a").has_file("f"));
}

TEST_F(GridTest, TransferTimeUsesLink) {
  // 100 MB over 100 MB/s + 10 ms latency = 1.01 s.
  const SimDuration t = grid_.transfer_time("a", "b", 100'000'000);
  EXPECT_EQ(t, from_seconds(1.0) + from_millis(10));
  EXPECT_EQ(grid_.transfer_time("a", "a", 100'000'000), 0);
}

TEST_F(GridTest, ExplicitLinkOverridesDefault) {
  grid_.set_link("a", "b", {200e6, 0});
  EXPECT_EQ(grid_.transfer_time("a", "b", 200'000'000), from_seconds(1.0));
  // Other direction still default.
  EXPECT_EQ(grid_.transfer_time("b", "a", 100'000'000),
            from_seconds(1.0) + from_millis(10));
  grid_.set_symmetric_link("a", "c", {50e6, 0});
  EXPECT_EQ(grid_.transfer_time("a", "c", 50'000'000), from_seconds(1.0));
  EXPECT_EQ(grid_.transfer_time("c", "a", 50'000'000), from_seconds(1.0));
}

TEST_F(GridTest, ClosestReplicaPicksFastestSource) {
  grid_.site("a").store_file("data", 1'000'000'000);
  grid_.site("b").store_file("data", 1'000'000'000);
  grid_.set_link("b", "c", {1000e6, 0});  // b -> c much faster
  auto src = grid_.closest_replica("data", "c");
  ASSERT_TRUE(src.is_ok());
  EXPECT_EQ(src.value(), "b");
}

TEST_F(GridTest, ClosestReplicaExcludes) {
  grid_.site("a").store_file("data", 1);
  auto src = grid_.closest_replica("data", "c", /*except=*/"a");
  EXPECT_EQ(src.status().code(), StatusCode::kNotFound);
}

TEST_F(GridTest, ClosestReplicaMissingFile) {
  EXPECT_EQ(grid_.closest_replica("nope", "a").status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace gae::sim
