#include "sim/config_loader.h"

#include <gtest/gtest.h>

namespace gae::sim {
namespace {

TEST(LoadProfileSpec, ConstantAndNone) {
  auto none = load_profile_from_spec("");
  ASSERT_TRUE(none.is_ok());
  EXPECT_DOUBLE_EQ(none.value()->load_at(0), 0.0);
  EXPECT_DOUBLE_EQ(load_profile_from_spec("none").value()->load_at(0), 0.0);

  auto constant = load_profile_from_spec("constant:0.6");
  ASSERT_TRUE(constant.is_ok());
  EXPECT_DOUBLE_EQ(constant.value()->load_at(from_seconds(1000)), 0.6);
}

TEST(LoadProfileSpec, Periodic) {
  auto p = load_profile_from_spec("periodic:0.1,0.8,600,600");
  ASSERT_TRUE(p.is_ok());
  EXPECT_DOUBLE_EQ(p.value()->load_at(0), 0.8);                  // on phase
  EXPECT_DOUBLE_EQ(p.value()->load_at(from_seconds(700)), 0.1);  // off phase
}

TEST(LoadProfileSpec, WalkDeterministicBySeed) {
  auto a = load_profile_from_spec("walk:0.1,0.7,60,3600,9");
  auto b = load_profile_from_spec("walk:0.1,0.7,60,3600,9");
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  for (SimTime t = 0; t < from_seconds(3600); t += from_seconds(100)) {
    EXPECT_DOUBLE_EQ(a.value()->load_at(t), b.value()->load_at(t));
    EXPECT_GE(a.value()->load_at(t), 0.1);
    EXPECT_LE(a.value()->load_at(t), 0.7);
  }
}

TEST(LoadProfileSpec, MalformedRejected) {
  EXPECT_FALSE(load_profile_from_spec("constant:").is_ok());
  EXPECT_FALSE(load_profile_from_spec("constant:a,b").is_ok());
  EXPECT_FALSE(load_profile_from_spec("periodic:0.1,0.8").is_ok());
  EXPECT_FALSE(load_profile_from_spec("periodic:0.1,0.8,0,600").is_ok());
  EXPECT_FALSE(load_profile_from_spec("sinusoid:1").is_ok());
}

TEST(GridFromConfig, FullTopology) {
  const char* text = R"(
[defaults]
bandwidth_mbps = 80
latency_ms = 20

[site:cern]
node.0 = speed=1.0 load=constant:0.5
node.1 = speed=1.5
storage.run2026.root = 20000000000

[site:fnal]
node.0 = speed=1.2 load=periodic:0.0,0.9,300,300

[link:cern->fnal]
bandwidth_mbps = 800
latency_ms = 5
)";
  auto cfg = Config::parse(text);
  ASSERT_TRUE(cfg.is_ok()) << cfg.status();
  Grid grid;
  const Status s = grid_from_config(cfg.value(), grid);
  ASSERT_TRUE(s.is_ok()) << s;

  ASSERT_TRUE(grid.has_site("cern"));
  ASSERT_TRUE(grid.has_site("fnal"));
  EXPECT_EQ(grid.site("cern").node_count(), 2u);
  EXPECT_EQ(grid.site("fnal").node_count(), 1u);
  EXPECT_TRUE(grid.site("cern").has_file("run2026.root"));
  EXPECT_EQ(grid.site("cern").file_size("run2026.root").value(), 20'000'000'000u);

  // Node attributes: find the constant-load node (map order of config keys
  // preserves node.0 before node.1).
  const Node& n0 = grid.site("cern").node(0);
  EXPECT_DOUBLE_EQ(n0.background_load(0), 0.5);
  const Node& n1 = grid.site("cern").node(1);
  EXPECT_DOUBLE_EQ(n1.speed_factor(), 1.5);
  EXPECT_DOUBLE_EQ(n1.background_load(0), 0.0);

  // Explicit link beats default; other direction uses default.
  EXPECT_EQ(grid.transfer_time("cern", "fnal", 100'000'000),
            from_millis(5) + from_seconds(1.0));  // 800 Mbit/s = 100 MB/s
  EXPECT_EQ(grid.transfer_time("fnal", "cern", 10'000'000),
            from_millis(20) + from_seconds(1.0));  // 80 Mbit/s = 10 MB/s
}

TEST(GridFromConfig, MalformedEntriesRejected) {
  Grid grid;
  auto run = [&](const char* text) {
    auto cfg = Config::parse(text);
    EXPECT_TRUE(cfg.is_ok());
    return grid_from_config(cfg.value(), grid);
  };
  EXPECT_EQ(run("[site:a]\nnode.0 = speed\n").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(run("[site:a]\nnode.0 = speed=zero\n").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(run("[site:a]\nnode.0 = speed=-1\n").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(run("[site:a]\nnode.0 = wat=1\n").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(run("[site:a]\nnode.0 = load=bogus:1\n").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(run("[site:a]\nstorage.f = big\n").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(run("[site:a]\ncolour = red\n").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(run("[link:a-b]\nbandwidth_mbps = 1\n").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(run("[link:a->b]\nbandwidth_mbps = much\n").code(),
            StatusCode::kInvalidArgument);
}

TEST(GridFromConfig, LinkDeclaresEndpoints) {
  auto cfg = Config::parse("[link:x->y]\nlatency_ms = 1\n");
  ASSERT_TRUE(cfg.is_ok());
  Grid grid;
  ASSERT_TRUE(grid_from_config(cfg.value(), grid).is_ok());
  EXPECT_TRUE(grid.has_site("x"));
  EXPECT_TRUE(grid.has_site("y"));
}

TEST(DiurnalLoad, TroughAndPeak) {
  auto load = make_diurnal_load(0.1, 0.9, from_seconds(86400), from_seconds(3600),
                                from_seconds(86400));
  // Trough at t=0, peak at half period.
  EXPECT_NEAR(load->load_at(0), 0.1, 1e-9);
  EXPECT_NEAR(load->load_at(from_seconds(43200)), 0.9, 0.02);
  // Mid-rise roughly halfway.
  EXPECT_NEAR(load->load_at(from_seconds(21600)), 0.5, 0.05);
  // Bounded everywhere.
  for (SimTime t = 0; t <= from_seconds(86400); t += from_seconds(1800)) {
    EXPECT_GE(load->load_at(t), 0.1 - 1e-9);
    EXPECT_LE(load->load_at(t), 0.9 + 1e-9);
  }
}

TEST(DiurnalLoad, PhaseShift) {
  // phase 0.5 starts at the peak.
  auto load = make_diurnal_load(0.0, 0.8, from_seconds(1000), from_seconds(50),
                                from_seconds(1000), 0.5);
  EXPECT_NEAR(load->load_at(0), 0.8, 1e-9);
  EXPECT_THROW(make_diurnal_load(0, 1, 0, 10, 100), std::invalid_argument);
}

}  // namespace
}  // namespace gae::sim
