// End-to-end RPC over real loopback TCP: server, client, both protocols.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "rpc/client.h"
#include "rpc/server.h"

namespace gae::rpc {
namespace {

std::shared_ptr<Dispatcher> make_dispatcher() {
  auto d = std::make_shared<Dispatcher>();
  d->register_method("math.add", [](const Array& params, const CallContext&) -> Result<Value> {
    std::int64_t sum = 0;
    for (const auto& p : params) sum += p.as_int();
    return Value(sum);
  });
  d->register_method("echo.token", [](const Array&, const CallContext& ctx) -> Result<Value> {
    return Value(ctx.session_token);
  });
  d->register_method("echo.protocol", [](const Array&, const CallContext& ctx) -> Result<Value> {
    return Value(ctx.protocol);
  });
  d->register_method("always.fails", [](const Array&, const CallContext&) -> Result<Value> {
    return not_found_error("nothing here");
  });
  d->register_method("always.throws", [](const Array& params, const CallContext&) -> Result<Value> {
    return Value(params.at(0).as_int());  // throws on wrong type / missing
  });
  return d;
}

class RpcServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    server_ = std::make_unique<RpcServer>(make_dispatcher(), ServerOptions{0, 4});
    auto port = server_->start();
    ASSERT_TRUE(port.is_ok()) << port.status();
    port_ = port.value();
  }

  std::unique_ptr<RpcServer> server_;
  std::uint16_t port_ = 0;
};

TEST_F(RpcServerTest, XmlRpcCall) {
  RpcClient client("127.0.0.1", port_, Protocol::kXmlRpc);
  auto r = client.call("math.add", {Value(1), Value(2), Value(3)});
  ASSERT_TRUE(r.is_ok()) << r.status();
  EXPECT_EQ(r.value().as_int(), 6);
}

TEST_F(RpcServerTest, JsonRpcCall) {
  RpcClient client("127.0.0.1", port_, Protocol::kJsonRpc);
  auto r = client.call("math.add", {Value(10), Value(20)});
  ASSERT_TRUE(r.is_ok()) << r.status();
  EXPECT_EQ(r.value().as_int(), 30);
}

TEST_F(RpcServerTest, ProtocolVisibleToHandler) {
  RpcClient xml("127.0.0.1", port_, Protocol::kXmlRpc);
  RpcClient json("127.0.0.1", port_, Protocol::kJsonRpc);
  EXPECT_EQ(xml.call("echo.protocol").value().as_string(), "xmlrpc");
  EXPECT_EQ(json.call("echo.protocol").value().as_string(), "jsonrpc");
}

TEST_F(RpcServerTest, SessionTokenHeaderArrives) {
  RpcClient client("127.0.0.1", port_);
  client.set_session_token("tok-123");
  EXPECT_EQ(client.call("echo.token").value().as_string(), "tok-123");
}

TEST_F(RpcServerTest, FaultCarriesStatusCode) {
  RpcClient client("127.0.0.1", port_);
  auto r = client.call("always.fails");
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.status().message(), "nothing here");
}

TEST_F(RpcServerTest, UnknownMethodIsNotFound) {
  RpcClient client("127.0.0.1", port_);
  auto r = client.call("no.such.method");
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST_F(RpcServerTest, HandlerExceptionBecomesInvalidArgument) {
  RpcClient client("127.0.0.1", port_);
  auto r = client.call("always.throws", {Value("not an int")});
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(RpcServerTest, SequentialCallsReuseConnection) {
  RpcClient client("127.0.0.1", port_);
  for (int i = 0; i < 50; ++i) {
    auto r = client.call("math.add", {Value(i), Value(i)});
    ASSERT_TRUE(r.is_ok());
    EXPECT_EQ(r.value().as_int(), 2 * i);
  }
  EXPECT_EQ(server_->requests_served(), 50u);
}

TEST_F(RpcServerTest, ClientReconnectsAfterDisconnect) {
  RpcClient client("127.0.0.1", port_);
  ASSERT_TRUE(client.call("math.add", {Value(1)}).is_ok());
  client.disconnect();
  auto r = client.call("math.add", {Value(2)});
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value().as_int(), 2);
}

TEST_F(RpcServerTest, ManyConcurrentClients) {
  constexpr int kClients = 12;
  constexpr int kCallsEach = 20;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([this, &failures] {
      RpcClient client("127.0.0.1", port_,
                       Protocol::kXmlRpc);
      for (int i = 0; i < kCallsEach; ++i) {
        auto r = client.call("math.add", {Value(i), Value(1)});
        if (!r.is_ok() || r.value().as_int() != i + 1) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(server_->requests_served(),
            static_cast<std::uint64_t>(kClients * kCallsEach));
}

TEST_F(RpcServerTest, StopUnblocksAndRejectsNewConnections) {
  server_->stop();
  RpcClient client("127.0.0.1", port_);
  auto r = client.call("math.add", {Value(1)});
  EXPECT_FALSE(r.is_ok());
}

TEST(RpcServerLifecycle, StartStopIdempotent) {
  auto server = std::make_unique<RpcServer>(make_dispatcher(), ServerOptions{0, 2});
  ASSERT_TRUE(server->start().is_ok());
  server->stop();
  server->stop();  // second stop is a no-op
}

TEST(Dispatcher, InterceptorShortCircuits) {
  Dispatcher d;
  d.register_method("m", [](const Array&, const CallContext&) -> Result<Value> {
    return Value(1);
  });
  d.add_interceptor([](const std::string&, const CallContext& ctx) {
    if (ctx.session_token.empty()) return unauthenticated_error("login first");
    return Status::ok();
  });
  CallContext anon;
  EXPECT_EQ(d.dispatch("m", {}, anon).status().code(), StatusCode::kUnauthenticated);
  CallContext authed;
  authed.session_token = "t";
  EXPECT_TRUE(d.dispatch("m", {}, authed).is_ok());
}

TEST(Dispatcher, MethodNamesSorted) {
  Dispatcher d;
  d.register_method("b", [](const Array&, const CallContext&) -> Result<Value> { return Value(); });
  d.register_method("a", [](const Array&, const CallContext&) -> Result<Value> { return Value(); });
  const auto names = d.method_names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "a");
  EXPECT_TRUE(d.has_method("a"));
  EXPECT_FALSE(d.has_method("c"));
}

TEST(FaultCodes, RoundTripAllStatusCodes) {
  for (int i = 0; i <= static_cast<int>(StatusCode::kInternal); ++i) {
    const auto code = static_cast<StatusCode>(i);
    EXPECT_EQ(fault_code_to_status(status_to_fault_code(code)), code);
  }
  EXPECT_EQ(fault_code_to_status(-5), StatusCode::kInternal);
  EXPECT_EQ(fault_code_to_status(99999), StatusCode::kInternal);
}

}  // namespace
}  // namespace gae::rpc
