// Randomised property tests over the RPC codecs: arbitrary value trees must
// survive XML-RPC and JSON-RPC round trips bit-exactly, and random garbage
// must be rejected without crashing.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "rpc/jsonrpc.h"
#include "rpc/xmlrpc.h"

namespace gae::rpc {
namespace {

/// Builds a random value tree; depth bounds recursion.
Value random_value(Rng& rng, int depth) {
  const int kind = static_cast<int>(rng.uniform_int(0, depth > 0 ? 6 : 4));
  switch (kind) {
    case 0: return Value();
    case 1: return Value(rng.bernoulli(0.5));
    case 2: return Value(rng.uniform_int(-1'000'000'000, 1'000'000'000));
    case 3: {
      // Round-trippable double (finite, not denormal-weird).
      return Value(rng.uniform(-1e6, 1e6));
    }
    case 4: {
      std::string s;
      const auto len = rng.uniform_int(0, 20);
      for (int i = 0; i < len; ++i) {
        // Mix printable chars with XML/JSON specials and newlines.
        static const char chars[] =
            "abcXYZ012 <>&\"'\\/\n\t{}[],:;!@#$%^()";
        s.push_back(chars[rng.uniform_int(0, sizeof(chars) - 2)]);
      }
      return Value(std::move(s));
    }
    case 5: {
      Array arr;
      const auto n = rng.uniform_int(0, 4);
      for (int i = 0; i < n; ++i) arr.push_back(random_value(rng, depth - 1));
      return Value(std::move(arr));
    }
    default: {
      Struct st;
      const auto n = rng.uniform_int(0, 4);
      for (int i = 0; i < n; ++i) {
        st["key" + std::to_string(rng.uniform_int(0, 99))] = random_value(rng, depth - 1);
      }
      return Value(std::move(st));
    }
  }
}

class CodecFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CodecFuzzTest, XmlRpcRoundTripsRandomTrees) {
  Rng rng(GetParam());
  for (int i = 0; i < 50; ++i) {
    const Value v = random_value(rng, 3);
    auto resp = xmlrpc::decode_response(xmlrpc::encode_response(v));
    ASSERT_TRUE(resp.is_ok()) << resp.status() << " for " << v.debug_string();
    EXPECT_EQ(resp.value().result, v) << v.debug_string();
  }
}

TEST_P(CodecFuzzTest, JsonRoundTripsRandomTrees) {
  Rng rng(GetParam() + 1000);
  for (int i = 0; i < 50; ++i) {
    const Value v = random_value(rng, 3);
    auto back = json::decode(json::encode(v));
    ASSERT_TRUE(back.is_ok()) << back.status() << " for " << v.debug_string();
    EXPECT_EQ(back.value(), v) << v.debug_string();
  }
}

TEST_P(CodecFuzzTest, RandomCallsRoundTrip) {
  Rng rng(GetParam() + 2000);
  for (int i = 0; i < 25; ++i) {
    Array params;
    const auto n = rng.uniform_int(0, 5);
    for (int p = 0; p < n; ++p) params.push_back(random_value(rng, 2));
    const std::string method = "svc.method" + std::to_string(rng.uniform_int(0, 9));

    auto xml_call = xmlrpc::decode_call(xmlrpc::encode_call(method, params));
    ASSERT_TRUE(xml_call.is_ok());
    EXPECT_EQ(xml_call.value().method, method);
    EXPECT_EQ(Value(xml_call.value().params), Value(params));

    auto json_call = jsonrpc::decode_call(jsonrpc::encode_call(method, params, i));
    ASSERT_TRUE(json_call.is_ok());
    EXPECT_EQ(json_call.value().method, method);
    EXPECT_EQ(Value(json_call.value().params), Value(params));
  }
}

TEST_P(CodecFuzzTest, RandomGarbageNeverCrashesDecoders) {
  Rng rng(GetParam() + 3000);
  for (int i = 0; i < 200; ++i) {
    std::string garbage;
    const auto len = rng.uniform_int(0, 200);
    for (int c = 0; c < len; ++c) {
      garbage.push_back(static_cast<char>(rng.uniform_int(1, 127)));
    }
    // Any result is fine as long as nothing throws or crashes.
    (void)xmlrpc::decode_call(garbage);
    (void)xmlrpc::decode_response(garbage);
    (void)json::decode(garbage);
    (void)jsonrpc::decode_call(garbage);
    (void)jsonrpc::decode_response(garbage);
  }
}

TEST_P(CodecFuzzTest, MutatedValidDocumentsNeverCrash) {
  Rng rng(GetParam() + 4000);
  const std::string valid = xmlrpc::encode_call(
      "steering.move", {Value("task-1"), Value(Struct{{"site", Value("b")}})});
  for (int i = 0; i < 200; ++i) {
    std::string mutated = valid;
    const auto pos = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(valid.size()) - 1));
    mutated[pos] = static_cast<char>(rng.uniform_int(1, 127));
    (void)xmlrpc::decode_call(mutated);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecFuzzTest, ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace gae::rpc
