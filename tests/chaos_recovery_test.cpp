// Chaos tests: deterministic fault injection against the live RPC stack, and
// steering Backup & Recovery (journal included) under simulated failures.
//
// Everything here replays bit-for-bit: transport faults follow a scripted
// plan or a seeded RNG, and the simulation side runs in virtual time.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>

#include "exec/execution_service.h"
#include "net/fault_injector.h"
#include "rpc/client.h"
#include "rpc/server.h"
#include "sim/load.h"
#include "sim/network.h"
#include "steering/journal.h"
#include "steering/service.h"

namespace gae {
namespace {

// ---------------------------------------------------------------------------
// Journal format
// ---------------------------------------------------------------------------

TEST(RecoveryJournal, RecordRoundTripsAwkwardCharacters) {
  steering::JournalRecord rec;
  rec.kind = "watch";
  rec.fields["task"] = "t 1=weird%stuff";
  rec.fields["detail"] = "line\nbreak and = signs";

  auto parsed = steering::JournalRecord::parse(rec.to_line());
  ASSERT_TRUE(parsed.is_ok()) << parsed.status();
  EXPECT_EQ(parsed.value().kind, "watch");
  EXPECT_EQ(parsed.value().fields, rec.fields);
}

TEST(RecoveryJournal, TornTrailingLineIsTolerated) {
  steering::JournalRecord rec;
  rec.kind = "watch";
  rec.fields["task"] = "t1";
  const std::vector<std::string> lines = {rec.to_line(), "v1 watch task=t2",
                                          "v1 move task"};  // torn mid-write
  auto strict = steering::parse_journal(lines, /*tolerate_trailing_garbage=*/false);
  EXPECT_FALSE(strict.is_ok());
  auto lenient = steering::parse_journal(lines, /*tolerate_trailing_garbage=*/true);
  ASSERT_TRUE(lenient.is_ok());
  EXPECT_EQ(lenient.value().size(), 2u);
}

TEST(RecoveryJournal, UnknownVersionRejected) {
  EXPECT_FALSE(steering::JournalRecord::parse("v9 watch task=t1").is_ok());
  EXPECT_FALSE(steering::JournalRecord::parse("v1").is_ok());
}

// ---------------------------------------------------------------------------
// Live transport chaos: RpcClient vs FaultInjector
// ---------------------------------------------------------------------------

struct CountingServer {
  std::shared_ptr<rpc::Dispatcher> dispatcher = std::make_shared<rpc::Dispatcher>();
  std::atomic<int> increments{0};
  std::unique_ptr<rpc::RpcServer> server;
  std::uint16_t port = 0;

  CountingServer() {
    dispatcher->register_method(
        "counter.incr",
        [this](const rpc::Array&, const rpc::CallContext&) -> Result<rpc::Value> {
          return rpc::Value(static_cast<std::int64_t>(++increments));
        });
    dispatcher->register_method(
        "echo", [](const rpc::Array& params, const rpc::CallContext&) -> Result<rpc::Value> {
          return params.empty() ? rpc::Value() : params.front();
        });
    server = std::make_unique<rpc::RpcServer>(dispatcher, rpc::ServerOptions{0, 4});
    auto p = server->start();
    EXPECT_TRUE(p.is_ok());
    port = p.value_or(0);
  }
};

/// Client options tuned for tests: fast deterministic backoff, lenient
/// breaker (individual tests override what they probe).
rpc::ClientOptions chaos_client_options() {
  rpc::ClientOptions options;
  options.default_call.retry.max_attempts = 5;
  options.default_call.retry.initial_backoff_ms = 1;
  options.default_call.retry.max_backoff_ms = 5;
  options.default_call.retry.jitter_fraction = 0.0;
  options.breaker.min_samples = 1000;  // out of the way unless a test wants it
  return options;
}

TEST(TransportChaos, RetriesThroughScriptedFaultsAndSucceeds) {
  CountingServer backend;
  net::FaultPlan plan;
  plan.script = {{net::FaultKind::kRefuseConnect, 0, 0},
                 {net::FaultKind::kGarbage, 0, 0},
                 {net::FaultKind::kNone, 0, 0}};
  net::FaultInjector proxy("127.0.0.1", backend.port, plan);
  auto proxy_port = proxy.start();
  ASSERT_TRUE(proxy_port.is_ok());

  rpc::RpcClient client({{"127.0.0.1", proxy_port.value()}}, rpc::Protocol::kXmlRpc,
                        chaos_client_options());
  auto r = client.call("echo", {rpc::Value(std::int64_t{41})});
  ASSERT_TRUE(r.is_ok()) << r.status();
  EXPECT_EQ(r.value().as_int(), 41);

  // Two faulted connections, then the clean one.
  EXPECT_EQ(client.stats().retries, 2u);
  EXPECT_EQ(proxy.faults_injected(), 2u);
  auto counts = proxy.fault_counts();
  EXPECT_EQ(counts["refuse-connect"], 1u);
  EXPECT_EQ(counts["garbage"], 1u);
  proxy.stop();
}

TEST(TransportChaos, DroppedResponseIsNotRetriedForNonIdempotentCalls) {
  CountingServer backend;
  net::FaultPlan plan;
  plan.script = {{net::FaultKind::kDropResponse, 0, 0}};
  net::FaultInjector proxy("127.0.0.1", backend.port, plan);
  auto proxy_port = proxy.start();
  ASSERT_TRUE(proxy_port.is_ok());

  rpc::RpcClient client({{"127.0.0.1", proxy_port.value()}}, rpc::Protocol::kXmlRpc,
                        chaos_client_options());
  rpc::CallOptions call = chaos_client_options().default_call;
  call.idempotent = false;

  auto r = client.call("counter.incr", {}, call);
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(r.status().message().find("non-idempotent"), std::string::npos);

  // The server executed the call exactly once: the client refused to
  // double-send a request that may already have been applied.
  EXPECT_EQ(backend.increments.load(), 1);
  EXPECT_EQ(client.stats().attempts, 1u);
  proxy.stop();
}

TEST(TransportChaos, DroppedResponseIsRetriedWhenIdempotent) {
  CountingServer backend;
  net::FaultPlan plan;
  plan.script = {{net::FaultKind::kDropResponse, 0, 0}};
  net::FaultInjector proxy("127.0.0.1", backend.port, plan);
  auto proxy_port = proxy.start();
  ASSERT_TRUE(proxy_port.is_ok());

  rpc::RpcClient client({{"127.0.0.1", proxy_port.value()}}, rpc::Protocol::kXmlRpc,
                        chaos_client_options());
  auto r = client.call("counter.incr", {});  // idempotent by default
  ASSERT_TRUE(r.is_ok()) << r.status();
  // Re-sent after the swallowed response — which is why the default is only
  // safe for idempotent methods (the server ran it twice).
  EXPECT_EQ(backend.increments.load(), 2);
  proxy.stop();
}

TEST(TransportChaos, DeadlineFiresOnDelayedTransport) {
  CountingServer backend;
  net::FaultPlan plan;
  plan.script = {{net::FaultKind::kDelay, 0, 2'000}};
  net::FaultInjector proxy("127.0.0.1", backend.port, plan);
  auto proxy_port = proxy.start();
  ASSERT_TRUE(proxy_port.is_ok());

  rpc::ClientOptions options = chaos_client_options();
  options.default_call.retry = RetryPolicy::none();
  rpc::RpcClient client({{"127.0.0.1", proxy_port.value()}}, rpc::Protocol::kXmlRpc,
                        options);
  rpc::CallOptions call;
  call.deadline_ms = 150;
  call.retry = RetryPolicy::none();

  auto r = client.call("echo", {rpc::Value(std::int64_t{1})}, call);
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_GE(client.stats().deadline_exceeded, 1u);
  proxy.stop();
}

TEST(TransportChaos, FailoverReachesSecondEndpointWhenPrimaryMisbehaves) {
  CountingServer backend;
  net::FaultPlan plan;
  plan.fault_rate = 1.0;  // every proxied connection misbehaves
  plan.seed = 7;
  plan.random_kinds = {net::FaultKind::kRefuseConnect};
  net::FaultInjector proxy("127.0.0.1", backend.port, plan);
  auto proxy_port = proxy.start();
  ASSERT_TRUE(proxy_port.is_ok());

  rpc::ClientOptions options = chaos_client_options();
  options.breaker.min_samples = 2;
  options.breaker.failure_rate_threshold = 0.5;
  options.breaker.open_cooldown_ms = 60'000;

  // Primary endpoint goes through the always-faulty proxy; the fallback hits
  // the server directly.
  rpc::RpcClient client({{"127.0.0.1", proxy_port.value()}, {"127.0.0.1", backend.port}},
                        rpc::Protocol::kXmlRpc, options);
  auto r = client.call("echo", {rpc::Value(std::int64_t{99})});
  ASSERT_TRUE(r.is_ok()) << r.status();
  EXPECT_EQ(r.value().as_int(), 99);
  EXPECT_GE(client.stats().failovers, 1u);
  EXPECT_EQ(client.breaker_state(0), CircuitBreaker::State::kOpen);
  EXPECT_EQ(client.breaker_state(1), CircuitBreaker::State::kClosed);

  // Subsequent calls go straight to the healthy endpoint.
  ASSERT_TRUE(client.call("echo", {rpc::Value(std::int64_t{5})}).is_ok());
  proxy.stop();
}

// ---------------------------------------------------------------------------
// Simulated grid chaos: execution-service and link failures under steering
// ---------------------------------------------------------------------------

exec::TaskSpec task_spec(const std::string& id, double work) {
  exec::TaskSpec s;
  s.id = id;
  s.job_id = "job-1";
  s.owner = "alice";
  s.work_seconds = work;
  s.attributes = {{"executable", "primes"}, {"login", "alice"}, {"queue", "q"},
                  {"nodes", "1"}};
  return s;
}

sphinx::JobDescription one_task_job(const std::string& job_id, exec::TaskSpec task) {
  sphinx::JobDescription job;
  job.id = job_id;
  job.owner = "alice";
  job.tasks.push_back({std::move(task), {}});
  return job;
}

/// Two-site grid (site-a deliberately loaded so placement deterministically
/// prefers site-b), network manager wired into both execution services, and
/// a steering service writing a recovery journal.
class ChaosRecoveryTest : public ::testing::Test {
 protected:
  ChaosRecoveryTest() : net_(sim_, grid_) {
    grid_.add_site("site-a").add_node("a0", 1.0,
                                      std::make_shared<sim::ConstantLoad>(0.9));
    grid_.add_site("site-b").add_node("b0", 1.0, nullptr);
    grid_.add_site("tier0").store_file("data.root", 500'000'000);  // 5 s solo
    grid_.set_default_link({100e6, 0});

    exec_a_ = std::make_unique<exec::ExecutionService>(sim_, grid_, "site-a");
    exec_b_ = std::make_unique<exec::ExecutionService>(sim_, grid_, "site-b");
    exec_a_->use_network(&net_);
    exec_b_->use_network(&net_);
    estimate_db_ = std::make_shared<estimators::EstimateDatabase>();

    for (auto* holder : {&est_a_, &est_b_}) {
      *holder = std::make_shared<estimators::RuntimeEstimator>(
          std::make_shared<estimators::TaskHistoryStore>());
      for (int i = 0; i < 5; ++i) {
        (*holder)->record(task_spec("h", 1).attributes, 283.0, 0);
      }
    }

    scheduler_ = std::make_unique<sphinx::SphinxScheduler>(sim_, grid_, &monitoring_,
                                                           estimate_db_);
    scheduler_->add_site("site-a", {exec_a_.get(), est_a_});
    scheduler_->add_site("site-b", {exec_b_.get(), est_b_});

    jms_ = std::make_unique<jobmon::JobMonitoringService>(sim_.clock(), &monitoring_,
                                                          estimate_db_);
    jms_->attach_site("site-a", exec_a_.get());
    jms_->attach_site("site-b", exec_b_.get());
  }

  steering::SteeringService& make_steering(steering::SteeringOptions options = {}) {
    steering::SteeringService::Deps deps;
    deps.sim = &sim_;
    deps.scheduler = scheduler_.get();
    deps.jobmon = jms_.get();
    deps.services = {{"site-a", exec_a_.get()}, {"site-b", exec_b_.get()}};
    deps.journal = &journal_;
    deps.monitoring = &monitoring_;
    steering_ = std::make_unique<steering::SteeringService>(deps, options);
    return *steering_;
  }

  sim::Simulation sim_;
  sim::Grid grid_;
  sim::NetworkManager net_;
  monalisa::Repository monitoring_;
  steering::MemoryJournalSink journal_;
  std::unique_ptr<exec::ExecutionService> exec_a_, exec_b_;
  std::shared_ptr<estimators::RuntimeEstimator> est_a_, est_b_;
  std::shared_ptr<estimators::EstimateDatabase> estimate_db_;
  std::unique_ptr<sphinx::SphinxScheduler> scheduler_;
  std::unique_ptr<jobmon::JobMonitoringService> jms_;
  std::unique_ptr<steering::SteeringService> steering_;
};

TEST_F(ChaosRecoveryTest, ServiceFailureMidJobRecoversViaSphinx) {
  steering::SteeringOptions opts;
  opts.auto_steer = false;  // isolate Backup & Recovery
  auto& steering = make_steering(opts);

  // A long blocker keeps site-a busy so Sphinx deterministically places t1 on
  // free site-b (same idiom as the steering suite).
  ASSERT_TRUE(exec_a_->submit(task_spec("blocker", 50'000)).is_ok());
  estimate_db_->put("blocker", 50'000);
  ASSERT_TRUE(scheduler_->submit(one_task_job("j1", task_spec("t1", 300))).is_ok());
  ASSERT_EQ(scheduler_->task_site("t1").value(), "site-b");

  // Kill the execution service mid-run; Backup & Recovery must resubmit the
  // task through Sphinx at the surviving site. Free site-a so the recovered
  // task finishes promptly.
  sim_.schedule_at(from_seconds(5), [this] { exec_b_->fail_service("chaos"); });
  sim_.schedule_at(from_seconds(6), [this] { exec_a_->kill("blocker", "make room"); });
  sim_.run();

  EXPECT_GE(steering.stats().recoveries, 1u);
  EXPECT_EQ(steering.stats().completions, 1u);
  EXPECT_EQ(scheduler_->task_site("t1").value(), "site-a");
  EXPECT_EQ(jms_->status("t1").value(), "COMPLETED");

  // The journey is journaled and the counters reach MonALISA.
  EXPECT_GE(steering.stats().journal_appends, 3u);  // watch + recover + done
  EXPECT_DOUBLE_EQ(monitoring_.latest("steering", "recoveries").value().value, 1.0);
  EXPECT_DOUBLE_EQ(monitoring_.latest("steering", "completions").value().value, 1.0);
}

TEST_F(ChaosRecoveryTest, JournalReplayAfterSteeringRestartReadoptsTasks) {
  steering::SteeringOptions opts;
  opts.auto_steer = false;
  make_steering(opts);

  ASSERT_TRUE(exec_a_->submit(task_spec("blocker", 50'000)).is_ok());
  estimate_db_->put("blocker", 50'000);
  ASSERT_TRUE(scheduler_->submit(one_task_job("j1", task_spec("t1", 300))).is_ok());
  ASSERT_EQ(scheduler_->task_site("t1").value(), "site-b");
  sim_.schedule_at(from_seconds(5), [this] { exec_b_->fail_service("chaos"); });
  sim_.schedule_at(from_seconds(6), [this] { exec_a_->kill("blocker", "make room"); });
  sim_.run_until(from_seconds(60));
  ASSERT_GE(steering_->stats().recoveries, 1u);  // recovered before the "crash"

  // Steering "crashes": the in-memory watch state is gone. A fresh instance
  // starts empty, then replays the journal and re-adopts the running task.
  steering_.reset();
  auto& revived = make_steering(opts);
  EXPECT_EQ(revived.watched_tasks(), 0u);
  ASSERT_TRUE(revived.restore_from_journal(journal_.lines()).is_ok());
  EXPECT_EQ(revived.watched_tasks(), 1u);
  EXPECT_EQ(revived.stats().journal_adopted, 1u);
  EXPECT_GE(revived.stats().journal_replayed, 2u);

  // The revived service sees the task through to completion.
  sim_.run();
  EXPECT_EQ(revived.stats().completions, 1u);
  EXPECT_EQ(jms_->status("t1").value(), "COMPLETED");

  // Replaying the (now longer) journal again converges: the task is done,
  // so another restart adopts nothing.
  steering_.reset();
  auto& third = make_steering(opts);
  ASSERT_TRUE(third.restore_from_journal(journal_.lines()).is_ok());
  EXPECT_EQ(third.watched_tasks(), 0u);
  EXPECT_EQ(third.stats().journal_adopted, 0u);
}

TEST_F(ChaosRecoveryTest, LinkFailureMidStagingResubmitsThroughSphinx) {
  steering::SteeringOptions opts;
  opts.auto_steer = false;
  opts.recovery_interval_seconds = 15.0;
  opts.max_auto_resubmits = 2;
  auto& steering = make_steering(opts);

  // Keep site-a busy for the whole test: both the initial placement and the
  // post-failure resubmit should pick site-b (the link heals before the
  // recovery tick fires).
  ASSERT_TRUE(exec_a_->submit(task_spec("blocker", 50'000)).is_ok());
  estimate_db_->put("blocker", 50'000);
  exec::TaskSpec spec = task_spec("t1", 50);
  spec.input_files = {"data.root"};
  ASSERT_TRUE(scheduler_->submit(one_task_job("j1", std::move(spec))).is_ok());
  ASSERT_EQ(scheduler_->task_site("t1").value(), "site-b");

  // The WAN to site-b dies two seconds into staging and heals at t=12; the
  // in-flight pull aborts, the task fails, and Backup & Recovery resubmits
  // once the recovery tick fires at t=15.
  sim_.schedule_at(from_seconds(2), [this] {
    net_.fail_link("tier0", "site-b", from_seconds(10));
  });
  sim_.run();

  EXPECT_GE(net_.aborted_transfers(), 1u);
  EXPECT_GE(steering.stats().resubmits, 1u);
  EXPECT_EQ(steering.stats().completions, 1u);
  EXPECT_EQ(jms_->status("t1").value(), "COMPLETED");
  EXPECT_DOUBLE_EQ(monitoring_.latest("steering", "resubmits").value().value, 1.0);
}

}  // namespace
}  // namespace gae
