#include "rpc/xmlrpc.h"

#include <gtest/gtest.h>

namespace gae::rpc::xmlrpc {
namespace {

TEST(XmlRpcCall, RoundTripSimple) {
  Array params{Value(41), Value("hello"), Value(true)};
  const std::string xml = encode_call("job.status", params);
  auto call = decode_call(xml);
  ASSERT_TRUE(call.is_ok());
  EXPECT_EQ(call.value().method, "job.status");
  ASSERT_EQ(call.value().params.size(), 3u);
  EXPECT_EQ(call.value().params[0].as_int(), 41);
  EXPECT_EQ(call.value().params[1].as_string(), "hello");
  EXPECT_TRUE(call.value().params[2].as_bool());
}

TEST(XmlRpcCall, RoundTripNested) {
  Struct inner;
  inner["pi"] = Value(3.14159);
  inner["nil"] = Value();
  Array params{Value(Array{Value(1), Value(Struct(inner))})};
  auto call = decode_call(encode_call("m", params));
  ASSERT_TRUE(call.is_ok());
  EXPECT_EQ(call.value().params[0], params[0]);
}

TEST(XmlRpcCall, EscapingSurvivesRoundTrip) {
  Array params{Value("a<b&c>\"d'e"), Value(std::string("line1\nline2"))};
  auto call = decode_call(encode_call("m<&>", params));
  ASSERT_TRUE(call.is_ok());
  EXPECT_EQ(call.value().method, "m<&>");
  EXPECT_EQ(call.value().params[0].as_string(), "a<b&c>\"d'e");
  EXPECT_EQ(call.value().params[1].as_string(), "line1\nline2");
}

TEST(XmlRpcCall, EmptyParams) {
  auto call = decode_call(encode_call("noargs", {}));
  ASSERT_TRUE(call.is_ok());
  EXPECT_TRUE(call.value().params.empty());
}

TEST(XmlRpcResponse, RoundTripValue) {
  Struct s;
  s["status"] = Value("RUNNING");
  s["progress"] = Value(0.5);
  auto resp = decode_response(encode_response(Value(s)));
  ASSERT_TRUE(resp.is_ok());
  EXPECT_FALSE(resp.value().is_fault);
  EXPECT_EQ(resp.value().result.get_string("status", ""), "RUNNING");
  EXPECT_DOUBLE_EQ(resp.value().result.get_double("progress", 0), 0.5);
}

TEST(XmlRpcResponse, RoundTripFault) {
  auto resp = decode_response(encode_fault(101, "no such job"));
  ASSERT_TRUE(resp.is_ok());
  EXPECT_TRUE(resp.value().is_fault);
  EXPECT_EQ(resp.value().fault_code, 101);
  EXPECT_EQ(resp.value().fault_string, "no such job");
}

TEST(XmlRpcDecode, AcceptsI4AndIntTags) {
  const char* xml =
      "<?xml version=\"1.0\"?><methodCall><methodName>m</methodName><params>"
      "<param><value><i4>7</i4></value></param>"
      "<param><value><int>-3</int></value></param>"
      "</params></methodCall>";
  auto call = decode_call(xml);
  ASSERT_TRUE(call.is_ok());
  EXPECT_EQ(call.value().params[0].as_int(), 7);
  EXPECT_EQ(call.value().params[1].as_int(), -3);
}

TEST(XmlRpcDecode, UntypedValueIsString) {
  const char* xml =
      "<methodCall><methodName>m</methodName><params>"
      "<param><value>plain text</value></param></params></methodCall>";
  auto call = decode_call(xml);
  ASSERT_TRUE(call.is_ok());
  EXPECT_EQ(call.value().params[0].as_string(), "plain text");
}

TEST(XmlRpcDecode, WhitespaceBetweenElementsTolerated) {
  const char* xml =
      "<?xml version=\"1.0\"?>\n<methodCall>\n  <methodName>m</methodName>\n"
      "  <params>\n    <param>\n      <value><i8>1</i8></value>\n    </param>\n"
      "  </params>\n</methodCall>\n";
  auto call = decode_call(xml);
  ASSERT_TRUE(call.is_ok());
  EXPECT_EQ(call.value().params[0].as_int(), 1);
}

TEST(XmlRpcDecode, CommentsSkipped) {
  const char* xml =
      "<!-- prolog comment --><methodCall><methodName>m</methodName>"
      "<params><!-- inner --><param><value><boolean>1</boolean></value></param>"
      "</params></methodCall>";
  auto call = decode_call(xml);
  ASSERT_TRUE(call.is_ok());
  EXPECT_TRUE(call.value().params[0].as_bool());
}

TEST(XmlRpcDecode, NumericCharacterReferences) {
  const char* xml =
      "<methodCall><methodName>m</methodName><params><param>"
      "<value><string>A&#66;&#x43;</string></value></param></params></methodCall>";
  auto call = decode_call(xml);
  ASSERT_TRUE(call.is_ok());
  EXPECT_EQ(call.value().params[0].as_string(), "ABC");
}

TEST(XmlRpcDecode, MalformedInputsRejected) {
  EXPECT_FALSE(decode_call("").is_ok());
  EXPECT_FALSE(decode_call("not xml at all").is_ok());
  EXPECT_FALSE(decode_call("<methodCall><methodName>m</methodName>").is_ok());
  EXPECT_FALSE(decode_call("<wrongRoot/>").is_ok());
  EXPECT_FALSE(decode_call("<methodCall><methodName>m</methodName>"
                           "<params><param><value><int>zz</int></value></param>"
                           "</params></methodCall>")
                   .is_ok());
  EXPECT_FALSE(decode_call("<methodCall><foo></bar></methodCall>").is_ok());
  EXPECT_FALSE(decode_response("<methodResponse></methodResponse>").is_ok());
}

TEST(XmlRpcDecode, MissingMethodName) {
  EXPECT_FALSE(decode_call("<methodCall><params></params></methodCall>").is_ok());
}

TEST(XmlRpcDecode, BadBooleanRejected) {
  EXPECT_FALSE(decode_call("<methodCall><methodName>m</methodName><params>"
                           "<param><value><boolean>2</boolean></value></param>"
                           "</params></methodCall>")
                   .is_ok());
}

TEST(XmlRpc, TraceElementRoundTrips) {
  // The reserved <trace> element carries the trace triple for peers that
  // cannot set the x-gae-trace header.
  auto call = decode_call(encode_call("m", {}, "00c0ffee;01;00"));
  ASSERT_TRUE(call.is_ok());
  EXPECT_EQ(call.value().trace, "00c0ffee;01;00");

  auto bare = decode_call(encode_call("m", {}));
  ASSERT_TRUE(bare.is_ok());
  EXPECT_TRUE(bare.value().trace.empty());
}

TEST(XmlEscape, AllEntities) {
  EXPECT_EQ(xml_escape("<>&\"'"), "&lt;&gt;&amp;&quot;&apos;");
  EXPECT_EQ(xml_escape("plain"), "plain");
}

/// Round-trip property across assorted value shapes.
class XmlRpcRoundTripTest : public ::testing::TestWithParam<Value> {};

TEST_P(XmlRpcRoundTripTest, ValueSurvives) {
  auto resp = decode_response(encode_response(GetParam()));
  ASSERT_TRUE(resp.is_ok());
  EXPECT_EQ(resp.value().result, GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, XmlRpcRoundTripTest,
    ::testing::Values(Value(), Value(false), Value(std::int64_t{-9'000'000'000}),
                      Value(0.0), Value(1e-12), Value(""), Value("  padded  "),
                      Value(Array{}), Value(Struct{}),
                      Value(Array{Value(Array{Value(Array{Value(1)})})}),
                      Value(Struct{{"k", Value(Struct{{"k2", Value("v")}})}})));

}  // namespace
}  // namespace gae::rpc::xmlrpc
