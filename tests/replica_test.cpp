#include "replica/replication.h"

#include <gtest/gtest.h>

#include "sim/load.h"

namespace gae::replica {
namespace {

class ReplicaTest : public ::testing::Test {
 protected:
  ReplicaTest() : catalog_(grid_) {
    grid_.add_site("cern").add_node("c0", 1.0, nullptr);
    grid_.add_site("fnal").add_node("f0", 1.0, nullptr);
    grid_.add_site("nust").add_node("n0", 1.0, nullptr);
    grid_.set_default_link({100e6, 0});
    grid_.site("cern").store_file("dataset.root", 1'000'000'000);  // 10 s to move
  }

  sim::Simulation sim_;
  sim::Grid grid_;
  ReplicaCatalog catalog_;
};

TEST_F(ReplicaTest, RegisterRequiresActualFile) {
  EXPECT_EQ(catalog_.register_replica("dataset.root", "fnal", 0).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(catalog_.register_replica("dataset.root", "ghost-site", 0).code(),
            StatusCode::kNotFound);
  EXPECT_TRUE(catalog_.register_replica("dataset.root", "cern", 0).is_ok());
  EXPECT_TRUE(catalog_.has_replica("dataset.root", "cern"));
  EXPECT_EQ(catalog_.replica_count("dataset.root"), 1u);
}

TEST_F(ReplicaTest, UnregisterRemoves) {
  catalog_.register_replica("dataset.root", "cern", 0);
  EXPECT_TRUE(catalog_.unregister_replica("dataset.root", "cern").is_ok());
  EXPECT_EQ(catalog_.replica_count("dataset.root"), 0u);
  EXPECT_EQ(catalog_.unregister_replica("dataset.root", "cern").code(),
            StatusCode::kNotFound);
}

TEST_F(ReplicaTest, ScanFindsStoredFiles) {
  grid_.site("fnal").store_file("other.root", 5000);
  catalog_.scan(from_seconds(10));
  EXPECT_TRUE(catalog_.has_replica("dataset.root", "cern"));
  EXPECT_TRUE(catalog_.has_replica("other.root", "fnal"));
  EXPECT_EQ(catalog_.files().size(), 2u);
}

TEST_F(ReplicaTest, BestSourcePicksFastestLink) {
  grid_.site("fnal").store_file("dataset.root", 1'000'000'000);
  catalog_.scan(0);
  grid_.set_link("fnal", "nust", {1000e6, 0});  // 10x faster than default
  auto src = catalog_.best_source("dataset.root", "nust");
  ASSERT_TRUE(src.is_ok());
  EXPECT_EQ(src.value(), "fnal");
  EXPECT_FALSE(catalog_.best_source("missing.root", "nust").is_ok());
}

TEST_F(ReplicaTest, ExplicitReplicationTransfersInVirtualTime) {
  catalog_.scan(0);
  ReplicationManager mgr(sim_, grid_, catalog_);
  ASSERT_TRUE(mgr.replicate("dataset.root", "fnal").is_ok());
  EXPECT_EQ(mgr.transfers_in_flight(), 1);
  EXPECT_FALSE(grid_.site("fnal").has_file("dataset.root"));  // not yet

  sim_.run();
  EXPECT_TRUE(grid_.site("fnal").has_file("dataset.root"));
  EXPECT_TRUE(catalog_.has_replica("dataset.root", "fnal"));
  EXPECT_EQ(mgr.stats().replicas_created, 1u);
  EXPECT_EQ(mgr.stats().bytes_transferred, 1'000'000'000u);
  // 1 GB at 100 MB/s = 10 s.
  EXPECT_EQ(sim_.now(), from_seconds(10));
}

TEST_F(ReplicaTest, ReplicateValidation) {
  catalog_.scan(0);
  ReplicationManager mgr(sim_, grid_, catalog_);
  EXPECT_EQ(mgr.replicate("dataset.root", "cern").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(mgr.replicate("dataset.root", "ghost").code(), StatusCode::kNotFound);
  EXPECT_EQ(mgr.replicate("no-such-file", "fnal").code(), StatusCode::kNotFound);
  ASSERT_TRUE(mgr.replicate("dataset.root", "fnal").is_ok());
  EXPECT_EQ(mgr.replicate("dataset.root", "fnal").code(), StatusCode::kAlreadyExists);
}

TEST_F(ReplicaTest, ConcurrencyCapQueuesTransfers) {
  grid_.site("cern").store_file("d2.root", 1'000'000'000);
  grid_.site("cern").store_file("d3.root", 1'000'000'000);
  catalog_.scan(0);
  ReplicationOptions opts;
  opts.max_concurrent_transfers = 1;
  ReplicationManager mgr(sim_, grid_, catalog_, opts);
  ASSERT_TRUE(mgr.replicate("dataset.root", "fnal").is_ok());
  ASSERT_TRUE(mgr.replicate("d2.root", "fnal").is_ok());
  ASSERT_TRUE(mgr.replicate("d3.root", "fnal").is_ok());
  EXPECT_EQ(mgr.transfers_in_flight(), 1);
  sim_.run();
  EXPECT_EQ(mgr.stats().replicas_created, 3u);
  // Serialised: 3 x 10 s.
  EXPECT_EQ(sim_.now(), from_seconds(30));
}

TEST_F(ReplicaTest, HotFileAutoReplicatesFromExecAccesses) {
  catalog_.scan(0);
  ReplicationOptions opts;
  opts.hot_access_threshold = 3;
  // The manager subscribes to the service, so it must be destroyed first:
  // declare the service before the manager.
  exec::ExecutionService service(sim_, grid_, "fnal");
  ReplicationManager mgr(sim_, grid_, catalog_, opts);
  mgr.watch(service);

  // Three staging accesses of the same remote file triggers replication.
  for (int i = 0; i < 3; ++i) {
    exec::TaskSpec spec;
    spec.id = "t" + std::to_string(i);
    spec.work_seconds = 5;
    spec.input_files = {"dataset.root"};
    ASSERT_TRUE(service.submit(spec).is_ok());
    sim_.run();
  }
  EXPECT_EQ(mgr.stats().accesses_recorded, 3u);
  EXPECT_TRUE(grid_.site("fnal").has_file("dataset.root"));
  EXPECT_EQ(mgr.stats().replicas_created, 1u);

  // The next task of that kind needs no staging: it starts instantly.
  exec::TaskSpec spec;
  spec.id = "local-now";
  spec.work_seconds = 5;
  spec.input_files = {"dataset.root"};
  const SimTime before = sim_.now();
  ASSERT_TRUE(service.submit(spec).is_ok());
  sim_.run();
  const auto info = service.query("local-now").value();
  EXPECT_EQ(info.input_bytes_transferred, 0u);
  EXPECT_EQ(info.completion_time - before, from_seconds(5));
}

TEST_F(ReplicaTest, ReplicationContendsOnSharedNetwork) {
  catalog_.scan(0);
  sim::NetworkManager net(sim_, grid_);
  ReplicationManager mgr(sim_, grid_, catalog_, {});
  mgr.use_network(&net);
  // A competing transfer shares cern->fnal for the whole replication.
  ASSERT_TRUE(net.start_transfer("cern", "fnal", 1'000'000'000, [] {}).is_ok());
  ASSERT_TRUE(mgr.replicate("dataset.root", "fnal").is_ok());
  sim_.run();
  // Two equal 1 GB transfers share 100 MB/s: both finish at 20 s, not 10.
  EXPECT_EQ(mgr.stats().replicas_created, 1u);
  EXPECT_NEAR(to_seconds(sim_.now()), 20.0, 0.1);
}

TEST_F(ReplicaTest, ColdFilesNotReplicated) {
  catalog_.scan(0);
  ReplicationOptions opts;
  opts.hot_access_threshold = 5;
  ReplicationManager mgr(sim_, grid_, catalog_, opts);
  mgr.record_access("dataset.root", "fnal");
  mgr.record_access("dataset.root", "fnal");
  sim_.run();
  EXPECT_EQ(mgr.stats().replicas_created, 0u);
  EXPECT_FALSE(grid_.site("fnal").has_file("dataset.root"));
}

}  // namespace
}  // namespace gae::replica
