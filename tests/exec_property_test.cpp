// Property-based checks on the execution service's accounting invariants,
// swept over random workloads and load profiles.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "exec/execution_service.h"
#include "sim/load.h"

namespace gae::exec {
namespace {

struct Scenario {
  std::uint64_t seed;
  int tasks;
  int nodes;
};

class ExecPropertyTest : public ::testing::TestWithParam<Scenario> {};

TEST_P(ExecPropertyTest, AccountingInvariantsHold) {
  const Scenario sc = GetParam();
  Rng rng(sc.seed);

  sim::Simulation sim;
  sim::Grid grid;
  auto& site = grid.add_site("s");
  for (int n = 0; n < sc.nodes; ++n) {
    // Mixed load profiles, including time-varying ones.
    std::shared_ptr<sim::LoadProfile> profile;
    switch (rng.uniform_int(0, 2)) {
      case 0:
        profile = std::make_shared<sim::ConstantLoad>(rng.uniform(0.0, 0.8));
        break;
      case 1:
        profile = std::make_shared<sim::PeriodicLoad>(
            rng.uniform(0.0, 0.3), rng.uniform(0.4, 0.9),
            from_seconds(rng.uniform(5, 60)), from_seconds(rng.uniform(5, 60)));
        break;
      default:
        profile = std::shared_ptr<sim::LoadProfile>(sim::make_random_walk_load(
            rng.fork("walk" + std::to_string(n)), 0.0, 0.9, from_seconds(20),
            from_seconds(20000)));
    }
    site.add_node("n" + std::to_string(n), rng.uniform(0.5, 2.0), profile);
  }

  ExecutionService exec(sim, grid, "s");
  std::vector<double> works;
  for (int i = 0; i < sc.tasks; ++i) {
    TaskSpec spec;
    spec.id = "t" + std::to_string(i);
    spec.job_id = "job";
    spec.owner = "u";
    spec.work_seconds = rng.uniform(1.0, 300.0);
    spec.priority = static_cast<int>(rng.uniform_int(0, 3));
    works.push_back(spec.work_seconds);
    ASSERT_TRUE(exec.submit(spec).is_ok());
  }

  sim.run();

  for (int i = 0; i < sc.tasks; ++i) {
    auto info = exec.query("t" + std::to_string(i));
    ASSERT_TRUE(info.is_ok());
    const TaskInfo& t = info.value();

    // Everything completes (no failures configured).
    EXPECT_EQ(t.state, TaskState::kCompleted) << t.spec.id;

    // CPU accounting lands exactly on the requested work.
    EXPECT_NEAR(t.cpu_seconds_used, works[static_cast<std::size_t>(i)], 1e-6);
    EXPECT_DOUBLE_EQ(t.progress, 1.0);

    // Causality: submit <= start <= completion.
    EXPECT_LE(t.submit_time, t.start_time);
    EXPECT_LT(t.start_time, t.completion_time);

    // Wall time running >= work / max-possible-rate. With speeds <= 2.0 the
    // run cannot take less than work/2 wall seconds.
    const double wall = to_seconds(t.completion_time - t.start_time);
    EXPECT_GE(wall + 1e-6, works[static_cast<std::size_t>(i)] / 2.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ExecPropertyTest,
    ::testing::Values(Scenario{1, 5, 1}, Scenario{2, 10, 2}, Scenario{3, 20, 3},
                      Scenario{4, 30, 4}, Scenario{5, 8, 8}, Scenario{6, 40, 2},
                      Scenario{7, 15, 5}, Scenario{8, 25, 1}));

/// Determinism: the same scenario replayed twice yields identical timings.
TEST(ExecDeterminism, IdenticalRunsProduceIdenticalTimelines) {
  auto run_once = [] {
    sim::Simulation sim;
    sim::Grid grid;
    auto& site = grid.add_site("s");
    site.add_node("n0", 1.0,
                  std::make_shared<sim::PeriodicLoad>(0.1, 0.7, from_seconds(13),
                                                      from_seconds(7)));
    site.add_node("n1", 1.3, std::make_shared<sim::ConstantLoad>(0.2));
    ExecutionService exec(sim, grid, "s");
    for (int i = 0; i < 12; ++i) {
      TaskSpec spec;
      spec.id = "t" + std::to_string(i);
      spec.work_seconds = 10.0 + 7.0 * i;
      spec.priority = i % 3;
      exec.submit(spec);
    }
    sim.run();
    std::vector<SimTime> completions;
    for (const auto& info : exec.list_tasks()) completions.push_back(info.completion_time);
    return completions;
  };
  EXPECT_EQ(run_once(), run_once());
}

/// Priority inversion never happens among queued tasks: a task never starts
/// while a strictly higher-priority task is still queued.
TEST(ExecOrdering, NoPriorityInversionAtDispatch) {
  sim::Simulation sim;
  sim::Grid grid;
  grid.add_site("s").add_node("n0", 1.0, nullptr);
  ExecutionService exec(sim, grid, "s");

  std::vector<std::pair<std::string, int>> start_order;
  exec.subscribe([&](const TaskEvent& ev) {
    if (ev.new_state == TaskState::kStaging) {
      auto info = exec.query(ev.task_id);
      start_order.emplace_back(ev.task_id, info.value().spec.priority);
    }
  });

  Rng rng(99);
  for (int i = 0; i < 20; ++i) {
    TaskSpec spec;
    spec.id = "t" + std::to_string(i);
    spec.work_seconds = rng.uniform(1, 5);
    spec.priority = static_cast<int>(rng.uniform_int(0, 4));
    ASSERT_TRUE(exec.submit(spec).is_ok());
  }
  sim.run();

  // After the first dispatch (which happens per-submit), priorities of
  // subsequent starts must be non-increasing *per wave*: verify weaker but
  // robust invariant -- every started task had max priority among then-queued.
  // Since all tasks were submitted at t=0 before any completion, the start
  // order from the second task onwards must be sorted by priority desc.
  ASSERT_EQ(start_order.size(), 20u);
  for (std::size_t i = 2; i < start_order.size(); ++i) {
    EXPECT_GE(start_order[i - 1].second, start_order[i].second)
        << start_order[i - 1].first << " before " << start_order[i].first;
  }
}

}  // namespace
}  // namespace gae::exec
