#include "common/config.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace gae {
namespace {

TEST(Config, ParsesKeyValues) {
  auto cfg = Config::parse("a = 1\nb=hello\n c  =  2.5 \n");
  ASSERT_TRUE(cfg.is_ok());
  EXPECT_EQ(cfg.value().get_int("a", 0), 1);
  EXPECT_EQ(cfg.value().get_string("b", ""), "hello");
  EXPECT_DOUBLE_EQ(cfg.value().get_double("c", 0), 2.5);
}

TEST(Config, CommentsAndBlankLines) {
  auto cfg = Config::parse("# comment\n\n; also comment\nkey = v\n");
  ASSERT_TRUE(cfg.is_ok());
  EXPECT_EQ(cfg.value().values().size(), 1u);
  EXPECT_EQ(cfg.value().get_string("key", ""), "v");
}

TEST(Config, SectionsPrefixKeys) {
  auto cfg = Config::parse("[grid]\nsites = 3\n[steering]\nauto = true\n");
  ASSERT_TRUE(cfg.is_ok());
  EXPECT_EQ(cfg.value().get_int("grid.sites", 0), 3);
  EXPECT_TRUE(cfg.value().get_bool("steering.auto", false));
}

TEST(Config, BoolParsing) {
  auto cfg = Config::parse("a=yes\nb=off\nc=TRUE\nd=0\ne=maybe\n");
  ASSERT_TRUE(cfg.is_ok());
  EXPECT_TRUE(cfg.value().get_bool("a", false));
  EXPECT_FALSE(cfg.value().get_bool("b", true));
  EXPECT_TRUE(cfg.value().get_bool("c", false));
  EXPECT_FALSE(cfg.value().get_bool("d", true));
  EXPECT_TRUE(cfg.value().get_bool("e", true));  // unparseable -> fallback
}

TEST(Config, MalformedLineRejected) {
  EXPECT_FALSE(Config::parse("novalue\n").is_ok());
  EXPECT_FALSE(Config::parse("= empty key\n").is_ok());
  EXPECT_FALSE(Config::parse("[unterminated\n").is_ok());
}

TEST(Config, FallbacksForMissingAndUnparseable) {
  auto cfg = Config::parse("x = notanumber\n");
  ASSERT_TRUE(cfg.is_ok());
  EXPECT_EQ(cfg.value().get_int("x", 99), 99);
  EXPECT_EQ(cfg.value().get_int("missing", -1), -1);
  EXPECT_EQ(cfg.value().get_string("missing", "d"), "d");
}

TEST(Config, SetAndHas) {
  Config cfg;
  EXPECT_FALSE(cfg.has("k"));
  cfg.set("k", "v");
  EXPECT_TRUE(cfg.has("k"));
  EXPECT_EQ(cfg.get_string("k", ""), "v");
}

TEST(Config, LoadFileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/gae_config_test.ini";
  {
    std::ofstream out(path);
    out << "[sim]\nseed = 42\n";
  }
  auto cfg = Config::load_file(path);
  ASSERT_TRUE(cfg.is_ok());
  EXPECT_EQ(cfg.value().get_int("sim.seed", 0), 42);
  std::remove(path.c_str());
}

TEST(Config, LoadMissingFileIsNotFound) {
  auto cfg = Config::load_file("/nonexistent/path/nope.ini");
  ASSERT_FALSE(cfg.is_ok());
  EXPECT_EQ(cfg.status().code(), StatusCode::kNotFound);
}

TEST(Status, ToStringFormats) {
  EXPECT_EQ(Status::ok().to_string(), "OK");
  EXPECT_EQ(not_found_error("x").to_string(), "NOT_FOUND: x");
  EXPECT_EQ(Status(StatusCode::kInternal, "").to_string(), "INTERNAL");
}

TEST(Result, ValueAndStatusPaths) {
  Result<int> ok(7);
  ASSERT_TRUE(ok.is_ok());
  EXPECT_EQ(ok.value(), 7);
  EXPECT_EQ(ok.value_or(1), 7);

  Result<int> bad(invalid_argument_error("nope"));
  ASSERT_FALSE(bad.is_ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(bad.value_or(5), 5);
}

}  // namespace
}  // namespace gae
