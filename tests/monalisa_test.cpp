#include "monalisa/repository.h"

#include <gtest/gtest.h>

namespace gae::monalisa {
namespace {

TEST(Repository, PublishAndLatest) {
  Repository repo;
  repo.publish("site-a", "cpu_load", from_seconds(1), 0.3);
  repo.publish("site-a", "cpu_load", from_seconds(2), 0.5);
  auto latest = repo.latest("site-a", "cpu_load");
  ASSERT_TRUE(latest.is_ok());
  EXPECT_DOUBLE_EQ(latest.value().value, 0.5);
  EXPECT_EQ(latest.value().time, from_seconds(2));
  EXPECT_EQ(repo.latest("site-a", "mem").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(repo.latest("site-b", "cpu_load").status().code(), StatusCode::kNotFound);
}

TEST(Repository, SeriesRangeQuery) {
  Repository repo;
  for (int i = 0; i < 10; ++i) {
    repo.publish("s", "m", from_seconds(i), static_cast<double>(i));
  }
  const auto points = repo.series("s", "m", from_seconds(3), from_seconds(6));
  ASSERT_EQ(points.size(), 4u);
  EXPECT_DOUBLE_EQ(points.front().value, 3.0);
  EXPECT_DOUBLE_EQ(points.back().value, 6.0);
  EXPECT_TRUE(repo.series("s", "nope", 0, from_seconds(100)).empty());
}

TEST(Repository, WindowedAverage) {
  Repository repo;
  repo.publish("s", "m", from_seconds(0), 10.0);
  repo.publish("s", "m", from_seconds(50), 20.0);
  repo.publish("s", "m", from_seconds(100), 30.0);
  // Window covering the last two points only.
  auto avg = repo.windowed_average("s", "m", from_seconds(100), from_seconds(60));
  ASSERT_TRUE(avg.is_ok());
  EXPECT_DOUBLE_EQ(avg.value(), 25.0);
  // Empty window.
  EXPECT_FALSE(repo.windowed_average("s", "m", from_seconds(1000), from_seconds(10)).is_ok());
}

TEST(Repository, RetentionCapDropsOldest) {
  Repository repo(/*max_points_per_series=*/5);
  for (int i = 0; i < 10; ++i) {
    repo.publish("s", "m", from_seconds(i), static_cast<double>(i));
  }
  const auto points = repo.series("s", "m", 0, from_seconds(100));
  ASSERT_EQ(points.size(), 5u);
  EXPECT_DOUBLE_EQ(points.front().value, 5.0);
}

TEST(Repository, SeriesNames) {
  Repository repo;
  repo.publish("a", "x", 0, 1);
  repo.publish("b", "y", 0, 2);
  const auto names = repo.series_names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], (std::pair<std::string, std::string>{"a", "x"}));
}

TEST(Repository, MetricSubscription) {
  Repository repo;
  std::vector<double> seen;
  const int token = repo.subscribe_metrics(
      [&](const std::string& src, const std::string& metric, const MetricPoint& p) {
        EXPECT_EQ(src, "s");
        EXPECT_EQ(metric, "m");
        seen.push_back(p.value);
      });
  repo.publish("s", "m", 0, 1.0);
  repo.publish("s", "m", 1, 2.0);
  repo.unsubscribe(token);
  repo.publish("s", "m", 2, 3.0);
  EXPECT_EQ(seen, (std::vector<double>{1.0, 2.0}));
}

TEST(Repository, TextEvents) {
  Repository repo;
  std::vector<std::string> kinds;
  repo.subscribe_events([&](const TextEvent& e) { kinds.push_back(e.kind); });
  repo.publish_event({from_seconds(1), "site-a", "job_state", "t1:RUNNING"});
  repo.publish_event({from_seconds(2), "site-a", "job_state", "t1:COMPLETED"});
  EXPECT_EQ(repo.event_count(), 2u);
  EXPECT_EQ(kinds.size(), 2u);
  const auto since = repo.events_since(from_seconds(2));
  ASSERT_EQ(since.size(), 1u);
  EXPECT_EQ(since[0].payload, "t1:COMPLETED");
}

TEST(PeriodicSampler, FiresAtInterval) {
  sim::Simulation sim;
  int samples = 0;
  {
    PeriodicSampler sampler(sim, from_seconds(10), [&] { ++samples; });
    sim.run_until(from_seconds(55));
    EXPECT_EQ(samples, 5);  // t = 10, 20, 30, 40, 50
  }
  // Destroyed sampler stops sampling.
  sim.run_until(from_seconds(200));
  EXPECT_EQ(samples, 5);
}

TEST(PeriodicSampler, DrivesRepositoryMetrics) {
  sim::Simulation sim;
  Repository repo;
  double load = 0.0;
  PeriodicSampler sampler(sim, from_seconds(5), [&] {
    load += 0.1;
    repo.publish("site-a", "cpu_load", sim.now(), load);
  });
  sim.run_until(from_seconds(26));
  auto avg = repo.windowed_average("site-a", "cpu_load", sim.now(), from_seconds(30));
  ASSERT_TRUE(avg.is_ok());
  EXPECT_NEAR(avg.value(), 0.3, 1e-9);  // mean of 0.1..0.5
}

}  // namespace
}  // namespace gae::monalisa
