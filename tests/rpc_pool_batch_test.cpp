// Connection-pool, multi-call batch, and read-cache coverage: the pool's
// checkout/checkin lifecycle (reuse, health eviction, overflow, reaping,
// concurrent callers against a dying peer), rpc.batch round trips on both
// the dispatcher and the wire, the sticky failover walk, the jobmon
// ReadCache TTL/invalidation contract, and cache drop on promotion.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <thread>
#include <vector>

#include "clarens/registry.h"
#include "common/clock.h"
#include "ha/failover.h"
#include "jobmon/read_cache.h"
#include "net/socket.h"
#include "rpc/batch.h"
#include "rpc/client.h"
#include "rpc/pool.h"
#include "rpc/server.h"
#include "telemetry/metrics.h"

namespace gae::rpc {
namespace {

std::shared_ptr<Dispatcher> echo_dispatcher() {
  auto d = std::make_shared<Dispatcher>();
  d->register_method("echo", [](const Array& params, const CallContext&) -> Result<Value> {
    return params.empty() ? Value() : params.front();
  });
  return d;
}

/// A bare TCP peer that accepts connections and parks them (the sockets stay
/// open until the test drops them), so pool checkouts have a live endpoint.
class ParkingPeer {
 public:
  ParkingPeer() {
    auto l = net::TcpListener::bind(0);
    EXPECT_TRUE(l.is_ok());
    listener_ = std::move(l).value();
    port_ = listener_.port();
    accept_thread_ = std::thread([this] {
      for (;;) {
        auto s = listener_.accept();
        if (!s.is_ok()) return;
        {
          std::lock_guard<std::mutex> lock(mutex_);
          accepted_.push_back(std::move(s).value());
        }
        cv_.notify_all();
      }
    });
  }
  ~ParkingPeer() {
    listener_.close();
    if (accept_thread_.joinable()) accept_thread_.join();
  }

  std::uint16_t port() const { return port_; }

  std::size_t accepted_count() {
    std::lock_guard<std::mutex> lock(mutex_);
    return accepted_.size();
  }

  /// Blocks until the accept thread has registered `n` connections (a dial
  /// returning does not mean the acceptor has run yet).
  void wait_for_accepts(std::size_t n) {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait_for(lock, std::chrono::seconds(30), [&] { return accepted_.size() >= n; });
  }

  /// Closes every accepted socket (the peer "dies" from the pool's view).
  void close_all() {
    std::lock_guard<std::mutex> lock(mutex_);
    accepted_.clear();
  }

  /// Writes one byte on every accepted socket (desyncs parked connections).
  void spray_bytes() {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& s : accepted_) (void)s.write_all("x");
  }

 private:
  net::TcpListener listener_;
  std::uint16_t port_ = 0;
  std::thread accept_thread_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<net::TcpStream> accepted_;
};

/// Checks the parked connection out and back in until the pool's health
/// probe notices the damage `mutate` inflicted (a FIN or stray bytes reach
/// our side of a loopback socket asynchronously). Checkin parks without
/// probing, so the round trip is lossless until the eviction fires.
void probe_until_evicted(ConnectionPool& pool, std::uint16_t port) {
  const auto give_up = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (pool.stats().health_evictions == 0 &&
         std::chrono::steady_clock::now() < give_up) {
    auto probe = pool.checkout("127.0.0.1", port);
    ASSERT_TRUE(probe.is_ok());
    pool.checkin(std::move(probe).value());
    std::this_thread::yield();
  }
}

TEST(ConnectionPool, CheckinParksAndCheckoutReuses) {
  ParkingPeer peer;
  ConnectionPool pool;

  auto first = pool.checkout("127.0.0.1", peer.port());
  ASSERT_TRUE(first.is_ok()) << first.status();
  EXPECT_FALSE(first.value().reused);
  pool.checkin(std::move(first).value());
  EXPECT_EQ(pool.idle_count("127.0.0.1", peer.port()), 1u);

  auto second = pool.checkout("127.0.0.1", peer.port());
  ASSERT_TRUE(second.is_ok());
  EXPECT_TRUE(second.value().reused);
  EXPECT_EQ(pool.stats().dials, 1u);
  EXPECT_EQ(pool.stats().reuses, 1u);
  pool.discard(std::move(second).value());
  EXPECT_EQ(pool.stats().discards, 1u);
  EXPECT_EQ(pool.live_count("127.0.0.1", peer.port()), 0u);
}

TEST(ConnectionPool, EvictsPeerClosedConnectionAtCheckout) {
  ParkingPeer peer;
  ConnectionPool pool;

  auto conn = pool.checkout("127.0.0.1", peer.port());
  ASSERT_TRUE(conn.is_ok());
  pool.checkin(std::move(conn).value());

  // Peer dies while the connection is parked; probe until the FIN lands.
  peer.wait_for_accepts(1);
  peer.close_all();
  probe_until_evicted(pool, peer.port());

  EXPECT_EQ(pool.stats().health_evictions, 1u);  // dead socket never reused
  EXPECT_EQ(pool.stats().dials, 2u);
}

TEST(ConnectionPool, EvictsDesyncedConnectionAtCheckout) {
  ParkingPeer peer;
  ConnectionPool pool;

  auto conn = pool.checkout("127.0.0.1", peer.port());
  ASSERT_TRUE(conn.is_ok());
  pool.checkin(std::move(conn).value());

  // Unread bytes appear while parked (a desynced exchange): the connection
  // must not be handed to the next caller, who would read a stale response.
  peer.wait_for_accepts(1);
  peer.spray_bytes();
  probe_until_evicted(pool, peer.port());

  EXPECT_EQ(pool.stats().health_evictions, 1u);
}

TEST(ConnectionPool, OverflowDialsBeyondMaxSizeAndNeverParks) {
  ParkingPeer peer;
  PoolOptions options;
  options.max_size = 1;
  options.max_idle = 4;
  ConnectionPool pool(options);

  auto first = pool.checkout("127.0.0.1", peer.port());
  ASSERT_TRUE(first.is_ok());
  auto second = pool.checkout("127.0.0.1", peer.port());  // beyond max_size
  ASSERT_TRUE(second.is_ok());
  EXPECT_EQ(pool.stats().overflow, 1u);

  pool.checkin(std::move(second).value());  // overflow conn: closed, not parked
  pool.checkin(std::move(first).value());
  EXPECT_EQ(pool.idle_count("127.0.0.1", peer.port()), 1u);
}

TEST(ConnectionPool, ReapsIdleConnectionsPastTimeout) {
  ParkingPeer peer;
  ManualClock clock;
  PoolOptions options;
  options.idle_timeout_ms = 1000;
  options.clock = &clock;
  ConnectionPool pool(options);

  auto conn = pool.checkout("127.0.0.1", peer.port());
  ASSERT_TRUE(conn.is_ok());
  pool.checkin(std::move(conn).value());
  EXPECT_EQ(pool.idle_count("127.0.0.1", peer.port()), 1u);

  clock.advance_by(from_millis(2000));
  pool.reap_idle();
  EXPECT_EQ(pool.idle_count("127.0.0.1", peer.port()), 0u);
  EXPECT_EQ(pool.stats().idle_reaped, 1u);
}

TEST(ConnectionPool, ConcurrentCheckoutCheckinWithDyingPeer) {
  ParkingPeer peer;
  PoolOptions options;
  options.health_check = true;
  ConnectionPool pool(options);
  constexpr int kThreads = 8;
  constexpr int kIters = 40;

  std::atomic<int> dial_failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        auto conn = pool.checkout("127.0.0.1", peer.port());
        if (!conn.is_ok()) {
          dial_failures.fetch_add(1);
          continue;
        }
        // Alternate clean checkin and discard, as real callers would.
        if ((t + i) % 3 == 0) {
          pool.discard(std::move(conn).value());
        } else {
          pool.checkin(std::move(conn).value());
        }
      }
    });
  }
  // The peer keeps killing parked connections under the callers' feet for
  // the whole run — paced by the scheduler, not a fixed burst timetable.
  std::atomic<bool> workers_done{false};
  std::thread killer([&] {
    while (!workers_done.load()) {
      peer.close_all();
      std::this_thread::yield();
    }
  });
  for (auto& t : threads) t.join();
  workers_done.store(true);
  killer.join();

  // Accounting stayed consistent: nothing is still marked checked out.
  EXPECT_EQ(pool.live_count("127.0.0.1", peer.port()),
            pool.idle_count("127.0.0.1", peer.port()));
  const PoolStats stats = pool.stats();
  EXPECT_EQ(stats.dials + stats.reuses,
            static_cast<std::uint64_t>(kThreads * kIters - dial_failures.load()));
}

// ---------------------------------------------------------------------------
// Thread-safe client: pooled concurrent calls, sticky failover
// ---------------------------------------------------------------------------

TEST(RpcClientPooled, ConcurrentCallsShareTheClientSafely) {
  auto dispatcher = echo_dispatcher();
  RpcServer server(dispatcher, ServerOptions{0, 8});
  auto port = server.start();
  ASSERT_TRUE(port.is_ok());

  ClientOptions options;
  options.default_call.retry.max_attempts = 3;
  RpcClient client({{"127.0.0.1", port.value()}}, Protocol::kJsonRpc, options);

  constexpr int kThreads = 8;
  constexpr int kIters = 25;
  std::atomic<int> ok{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        auto r = client.call("echo", {Value(t * 1000 + i)});
        if (r.is_ok() && r.value().as_int() == t * 1000 + i) ok.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ok.load(), kThreads * kIters);
  // Keep-alive reuse did the heavy lifting: far fewer dials than calls.
  EXPECT_GT(client.pool().stats().reuses, 0u);
  EXPECT_LT(client.pool().stats().dials,
            static_cast<std::uint64_t>(kThreads * kIters));
  server.stop();
}

TEST(RpcClientPooled, FailoverUnderConcurrentLoadWhenEndpointDies) {
  auto dispatcher = echo_dispatcher();
  auto doomed = std::make_unique<RpcServer>(echo_dispatcher(), ServerOptions{0, 4});
  auto doomed_port = doomed->start();
  ASSERT_TRUE(doomed_port.is_ok());
  RpcServer stable(dispatcher, ServerOptions{0, 4});
  auto stable_port = stable.start();
  ASSERT_TRUE(stable_port.is_ok());

  ClientOptions options;
  options.default_call.retry.max_attempts = 4;
  options.default_call.retry.initial_backoff_ms = 1;
  RpcClient client(
      {{"127.0.0.1", doomed_port.value()}, {"127.0.0.1", stable_port.value()}},
      Protocol::kJsonRpc, options);

  constexpr int kThreads = 6;
  constexpr int kIters = 20;
  std::atomic<int> ok{0};
  std::atomic<bool> killed{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        if (t == 0 && i == kIters / 2 && !killed.exchange(true)) {
          doomed->stop();  // the primary dies mid-burst
        }
        auto r = client.call("echo", {Value(i)});
        if (r.is_ok() && r.value().as_int() == i) ok.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  // Every call succeeded: dial failures against the dead endpoint fail over
  // within the same attempt, and interrupted exchanges retry.
  EXPECT_EQ(ok.load(), kThreads * kIters);
  EXPECT_GT(client.stats().failovers, 0u);
  stable.stop();
}

TEST(RpcClientPooled, StickyWalkDoesNotReturnToRecoveredEarlierEndpoint) {
  // Endpoint 0 starts dead (nothing listening); endpoint 1 serves. After the
  // first call fails over, the walk must START at endpoint 1 — a recovered
  // endpoint 0 must not steal traffic back while 1 keeps succeeding.
  std::uint16_t dead_port = 0;
  {
    auto probe = net::TcpListener::bind(0);
    ASSERT_TRUE(probe.is_ok());
    dead_port = probe.value().port();
  }  // closed again: the port is (very likely) free and refuses connections

  auto dispatcher = echo_dispatcher();
  RpcServer stable(dispatcher, ServerOptions{0, 2});
  auto stable_port = stable.start();
  ASSERT_TRUE(stable_port.is_ok());

  RpcClient client({{"127.0.0.1", dead_port}, {"127.0.0.1", stable_port.value()}},
                   Protocol::kJsonRpc, {});
  ASSERT_TRUE(client.call("echo", {Value(1)}).is_ok());
  EXPECT_EQ(client.stats().failovers, 1u);

  // Endpoint 0 comes back to life — and must stay idle.
  auto revived = net::TcpListener::bind(dead_port);
  if (!revived.is_ok()) GTEST_SKIP() << "port was reused by another process";
  std::atomic<int> revived_accepts{0};
  std::thread accept_thread([&] {
    for (;;) {
      auto s = revived.value().accept();
      if (!s.is_ok()) return;
      revived_accepts.fetch_add(1);
    }
  });

  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(client.call("echo", {Value(i)}).is_ok());
  }
  EXPECT_EQ(revived_accepts.load(), 0);  // sticky: the walk starts at endpoint 1

  revived.value().close();
  accept_thread.join();
  stable.stop();
}

// ---------------------------------------------------------------------------
// rpc.batch: dispatcher semantics and the wire round trip
// ---------------------------------------------------------------------------

Value batch_item(const std::string& method, Array params = {}) {
  Struct s;
  s["method"] = Value(method);
  s["params"] = Value(std::move(params));
  return Value(std::move(s));
}

TEST(RpcBatch, DispatcherRunsItemsAndIsolatesFailures) {
  Dispatcher d;
  d.register_method("echo", [](const Array& params, const CallContext&) -> Result<Value> {
    return params.empty() ? Value() : params.front();
  });
  d.register_method("tier", [](const Array&, const CallContext& ctx) -> Result<Value> {
    return Value(static_cast<std::int64_t>(ctx.tier));
  });
  d.enable_batch(4);

  CallContext ctx;
  ctx.tier = Criticality::kControl;
  Array items;
  items.push_back(batch_item("echo", {Value(42)}));
  items.push_back(batch_item("tier"));
  items.push_back(batch_item("rpc.batch"));  // nesting refused per item
  items.push_back(batch_item("no.such.method"));
  auto r = d.dispatch("rpc.batch", {Value(std::move(items))}, ctx);
  ASSERT_TRUE(r.is_ok()) << r.status();
  const Array& out = r.value().as_array();
  ASSERT_EQ(out.size(), 4u);

  EXPECT_TRUE(out[0].get_bool("ok", false));
  EXPECT_EQ(out[0].at("result").as_int(), 42);
  // Items inherit the envelope's context (the wire tier).
  EXPECT_TRUE(out[1].get_bool("ok", false));
  EXPECT_EQ(out[1].at("result").as_int(),
            static_cast<std::int64_t>(Criticality::kControl));
  EXPECT_FALSE(out[2].get_bool("ok", true));
  EXPECT_EQ(fault_code_to_status(static_cast<int>(out[2].get_int("code", 0))),
            StatusCode::kInvalidArgument);
  EXPECT_FALSE(out[3].get_bool("ok", true));
  EXPECT_EQ(fault_code_to_status(static_cast<int>(out[3].get_int("code", 0))),
            StatusCode::kNotFound);
}

TEST(RpcBatch, DispatcherRefusesOversizedBatch) {
  Dispatcher d;
  d.enable_batch(2);
  Array items;
  for (int i = 0; i < 3; ++i) items.push_back(batch_item("echo"));
  EXPECT_EQ(d.dispatch("rpc.batch", {Value(std::move(items))}, {}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(d.dispatch("rpc.batch", {Value(7)}, {}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(RpcBatch, CallManyRoundTripsOverTheWire) {
  auto dispatcher = echo_dispatcher();
  dispatcher->enable_batch();
  RpcServer server(dispatcher, ServerOptions{0, 4});
  auto port = server.start();
  ASSERT_TRUE(port.is_ok());
  RpcClient client({{"127.0.0.1", port.value()}}, Protocol::kJsonRpc, {});

  std::vector<BatchItem> items;
  items.push_back({"echo", {Value("a")}, Criticality::kBulk});
  items.push_back({"no.such.method", {}, Criticality::kStatus});
  items.push_back({"echo", {Value(7)}, Criticality::kControl});
  auto results = client.call_many(items);
  ASSERT_EQ(results.size(), 3u);
  ASSERT_TRUE(results[0].is_ok()) << results[0].status();
  EXPECT_EQ(results[0].value().as_string(), "a");
  EXPECT_EQ(results[1].status().code(), StatusCode::kNotFound);
  ASSERT_TRUE(results[2].is_ok());
  EXPECT_EQ(results[2].value().as_int(), 7);

  // One wire exchange carried all three items.
  EXPECT_EQ(client.stats().batches, 1u);
  EXPECT_EQ(client.stats().batched_items, 3u);
  EXPECT_EQ(client.stats().calls, 1u);
  server.stop();
}

TEST(RpcBatch, CallManyFallsBackItemByItemForOldServers) {
  auto dispatcher = echo_dispatcher();  // no enable_batch: an "old" peer
  RpcServer server(dispatcher, ServerOptions{0, 4});
  auto port = server.start();
  ASSERT_TRUE(port.is_ok());
  RpcClient client({{"127.0.0.1", port.value()}}, Protocol::kJsonRpc, {});

  std::vector<BatchItem> items;
  items.push_back({"echo", {Value(1)}, Criticality::kStatus});
  items.push_back({"echo", {Value(2)}, Criticality::kStatus});
  auto results = client.call_many(items);
  ASSERT_EQ(results.size(), 2u);
  ASSERT_TRUE(results[0].is_ok()) << results[0].status();
  EXPECT_EQ(results[0].value().as_int(), 1);
  ASSERT_TRUE(results[1].is_ok());
  EXPECT_EQ(results[1].value().as_int(), 2);
  EXPECT_EQ(client.stats().batches, 0u);  // served serially
  server.stop();
}

TEST(RpcBatch, SingleItemBatchDegradesToPlainCall) {
  auto dispatcher = echo_dispatcher();
  dispatcher->enable_batch();
  RpcServer server(dispatcher, ServerOptions{0, 2});
  auto port = server.start();
  ASSERT_TRUE(port.is_ok());
  RpcClient client({{"127.0.0.1", port.value()}}, Protocol::kJsonRpc, {});

  auto results = client.call_many({{"echo", {Value(5)}, Criticality::kStatus}});
  ASSERT_EQ(results.size(), 1u);
  ASSERT_TRUE(results[0].is_ok());
  EXPECT_EQ(results[0].value().as_int(), 5);
  EXPECT_EQ(client.stats().batches, 0u);

  EXPECT_TRUE(client.call_many({}).empty());
  server.stop();
}

TEST(RpcBatch, BatchBuilderAccumulatesAndFlushes) {
  auto dispatcher = echo_dispatcher();
  dispatcher->enable_batch();
  RpcServer server(dispatcher, ServerOptions{0, 2});
  auto port = server.start();
  ASSERT_TRUE(port.is_ok());
  RpcClient client({{"127.0.0.1", port.value()}}, Protocol::kJsonRpc, {});

  BatchBuilder batch(client);
  batch.add("echo", {Value(1)}).add("echo", {Value(2)}, Criticality::kBulk);
  EXPECT_EQ(batch.size(), 2u);
  auto results = batch.send();
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].value().as_int(), 1);
  EXPECT_EQ(results[1].value().as_int(), 2);
  EXPECT_TRUE(batch.empty());  // send() resets the builder
  server.stop();
}

}  // namespace
}  // namespace gae::rpc

// ---------------------------------------------------------------------------
// jobmon ReadCache: TTL, invalidation, brownout acceptance, failover drop
// ---------------------------------------------------------------------------

namespace gae::jobmon {
namespace {

ReadCache make_cache(std::int64_t* now_us, int ttl_ms = 100, int brownout_ttl_ms = 1000) {
  ReadCacheOptions options;
  options.ttl_ms = ttl_ms;
  options.brownout_ttl_ms = brownout_ttl_ms;
  options.now_us = [now_us] { return *now_us; };
  return ReadCache(options);
}

TEST(ReadCache, HitUntilTtlThenMiss) {
  std::int64_t now = 0;
  ReadCache cache = make_cache(&now);
  cache.put("info/t1", rpc::Value(1));
  ASSERT_TRUE(cache.get("info/t1").has_value());
  now += 99'000;
  ASSERT_TRUE(cache.get("info/t1").has_value());
  now += 2'000;  // past 100 ms
  EXPECT_FALSE(cache.get("info/t1").has_value());
  EXPECT_EQ(cache.stats().hits, 2u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.size(), 0u);  // the expired entry was erased on the miss
}

TEST(ReadCache, BrownoutAcceptsOlderEntries) {
  std::int64_t now = 0;
  ReadCache cache = make_cache(&now, 100, 1000);
  cache.put("status/t1", rpc::Value("RUNNING"));
  now += 500'000;  // stale for normal serving, fine for brownout
  EXPECT_FALSE(cache.get("status/t1", /*brownout=*/false).has_value());
  // The normal-path miss erased the entry — repopulate as a handler would.
  cache.put("status/t1", rpc::Value("RUNNING"));
  now += 500'000;
  ASSERT_TRUE(cache.get("status/t1", /*brownout=*/true).has_value());
}

TEST(ReadCache, InvalidateTaskDropsDerivedKeysAndList) {
  std::int64_t now = 0;
  ReadCache cache = make_cache(&now);
  cache.put(ReadCache::info_key("t1"), rpc::Value(1));
  cache.put(ReadCache::status_key("t1"), rpc::Value("RUNNING"));
  cache.put(ReadCache::info_key("t2"), rpc::Value(2));
  cache.put(ReadCache::kListKey, rpc::Value(rpc::Array{}));

  cache.invalidate_task("t1");
  EXPECT_FALSE(cache.get(ReadCache::info_key("t1")).has_value());
  EXPECT_FALSE(cache.get(ReadCache::status_key("t1")).has_value());
  EXPECT_FALSE(cache.get(ReadCache::kListKey).has_value());
  EXPECT_TRUE(cache.get(ReadCache::info_key("t2")).has_value());  // untouched
  EXPECT_EQ(cache.stats().invalidations, 3u);
}

TEST(ReadCache, InvalidateAllEmptiesEveryShard) {
  std::int64_t now = 0;
  ReadCache cache = make_cache(&now);
  for (int i = 0; i < 64; ++i) {
    cache.put("info/task-" + std::to_string(i), rpc::Value(i));
  }
  EXPECT_EQ(cache.size(), 64u);
  cache.invalidate_all();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().invalidations, 64u);
}

TEST(ReadCache, FullShardStaysBoundedAndAcceptsNewEntries) {
  std::int64_t now = 0;
  ReadCacheOptions options;
  options.ttl_ms = 100;
  options.shards = 1;
  options.max_entries_per_shard = 8;
  options.now_us = [&now] { return now; };
  ReadCache cache(options);
  for (int i = 0; i < 50; ++i) {
    cache.put("k" + std::to_string(i), rpc::Value(i));
  }
  EXPECT_LE(cache.size(), 9u);  // bounded (cap + the entry just inserted)
  ASSERT_TRUE(cache.get("k49").has_value());  // the newest entry survived
}

TEST(ReadCachePromotion, PromoteStandbyDropsTheCache) {
  std::int64_t now = 0;
  ReadCache cache = make_cache(&now);
  cache.put(ReadCache::info_key("t1"), rpc::Value(1));

  ManualClock clock;
  clarens::RegistryOptions registry_options;
  registry_options.default_ttl = from_millis(500);
  clarens::ServiceRegistry registry("arbiter", &clock, registry_options);

  ha::PromotionOptions promotion;
  promotion.registry = &registry;
  promotion.service = "jobmon";
  promotion.self.name = "jobmon";
  promotion.self.host = "127.0.0.1";
  promotion.self.port = 9000;
  promotion.drop_caches = [&cache] { cache.invalidate_all(); };

  // Failure path: the lease is held elsewhere — the cache must survive.
  auto held = registry.acquire_primary("jobmon");
  ASSERT_TRUE(held.is_ok());
  EXPECT_FALSE(ha::promote_standby(promotion).is_ok());
  EXPECT_EQ(cache.size(), 1u);

  clock.advance_by(from_millis(501));  // the lease lapses; promotion wins
  auto won = ha::promote_standby(promotion);
  ASSERT_TRUE(won.is_ok()) << won.status();
  EXPECT_EQ(cache.size(), 0u);  // entries from the old epoch are gone
}

}  // namespace
}  // namespace gae::jobmon
