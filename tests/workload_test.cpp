#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "common/stats.h"
#include "workload/paragon_trace.h"
#include "workload/task_generator.h"

namespace gae::workload {
namespace {

TEST(ApplicationPopulation, MakeProducesRequestedCount) {
  Rng rng(1);
  PopulationOptions opts;
  opts.num_applications = 10;
  auto pop = ApplicationPopulation::make(rng, opts);
  EXPECT_EQ(pop.applications().size(), 10u);
  for (const auto& app : pop.applications()) {
    EXPECT_FALSE(app.login.empty());
    EXPECT_FALSE(app.executable.empty());
    EXPECT_GT(app.base_runtime, 0.0);
    EXPECT_GE(app.ref_nodes, 1);
  }
}

TEST(ApplicationPopulation, DeterministicForSeed) {
  PopulationOptions opts;
  Rng r1(42), r2(42);
  auto a = ApplicationPopulation::make(r1, opts);
  auto b = ApplicationPopulation::make(r2, opts);
  ASSERT_EQ(a.applications().size(), b.applications().size());
  for (std::size_t i = 0; i < a.applications().size(); ++i) {
    EXPECT_EQ(a.applications()[i].executable, b.applications()[i].executable);
    EXPECT_DOUBLE_EQ(a.applications()[i].base_runtime, b.applications()[i].base_runtime);
  }
}

TEST(ApplicationPopulation, RuntimeScalesWithNodes) {
  Rng rng(7);
  PopulationOptions opts;
  auto pop = ApplicationPopulation::make(rng, opts);
  const Application& app = pop.applications().front();
  // Average many samples: more nodes => shorter runtime.
  RunningStats few, many;
  for (int i = 0; i < 500; ++i) {
    few.add(pop.sample_runtime(app, app.ref_nodes, rng));
    many.add(pop.sample_runtime(app, app.ref_nodes * 4, rng));
  }
  EXPECT_GT(few.mean(), many.mean());
}

TEST(Trace, FieldsPopulatedAndOrdered) {
  Rng rng(3);
  auto pop = ApplicationPopulation::make(rng, {});
  TraceOptions topts;
  topts.num_records = 100;
  const auto trace = generate_trace(pop, rng, topts);
  ASSERT_EQ(trace.size(), 100u);
  SimTime last_submit = -1;
  for (const auto& rec : trace) {
    EXPECT_FALSE(rec.account.empty());
    EXPECT_FALSE(rec.login.empty());
    EXPECT_FALSE(rec.partition.empty());
    EXPECT_FALSE(rec.queue.empty());
    EXPECT_GE(rec.nodes, 1);
    EXPECT_GE(rec.submit_time, last_submit);       // submit-ordered
    EXPECT_GE(rec.start_time, rec.submit_time);    // queued before start
    EXPECT_GT(rec.complete_time, rec.start_time);  // positive runtime
    EXPECT_GT(rec.requested_cpu_hours, 0.0);
    last_submit = rec.submit_time;
  }
}

TEST(Trace, FailureRateRoughlyHonoured) {
  Rng rng(5);
  auto pop = ApplicationPopulation::make(rng, {});
  TraceOptions topts;
  topts.num_records = 2000;
  topts.failure_rate = 0.2;
  const auto trace = generate_trace(pop, rng, topts);
  int failures = 0;
  for (const auto& rec : trace) {
    if (!rec.successful) ++failures;
  }
  EXPECT_NEAR(static_cast<double>(failures) / 2000.0, 0.2, 0.03);
}

// The statistical premise of the paper's §6.1: runs of the *same*
// application disperse much less than runs of different applications.
TEST(Trace, SimilarTasksHaveSimilarRuntimes) {
  Rng rng(11);
  PopulationOptions popts;
  popts.num_applications = 20;
  auto pop = ApplicationPopulation::make(rng, popts);
  TraceOptions topts;
  topts.num_records = 2000;
  topts.failure_rate = 0.0;
  const auto trace = generate_trace(pop, rng, topts);

  std::map<std::string, RunningStats> per_app;
  RunningStats global;
  for (const auto& rec : trace) {
    const double log_rt = std::log(rec.runtime_seconds());
    per_app[rec.executable].add(log_rt);
    global.add(log_rt);
  }
  double within = 0;
  int counted = 0;
  for (const auto& [app, stats] : per_app) {
    if (stats.count() >= 10) {
      within += stats.stddev();
      ++counted;
    }
  }
  ASSERT_GT(counted, 3);
  within /= counted;
  // Within-application dispersion (log-scale) well below global dispersion.
  EXPECT_LT(within, global.stddev() * 0.6);
}

TEST(TaskGenerator, SpecFieldsAndAttributes) {
  Rng rng(13);
  auto pop = ApplicationPopulation::make(rng, {});
  TaskGenOptions gopts;
  const auto spec = make_task(pop, rng, gopts, "task-1");
  EXPECT_EQ(spec.id, "task-1");
  EXPECT_GT(spec.work_seconds, 0.0);
  EXPECT_GE(spec.priority, gopts.priority_min);
  EXPECT_LE(spec.priority, gopts.priority_max);
  for (const char* key : {"login", "executable", "queue", "partition", "nodes", "jobtype"}) {
    EXPECT_TRUE(spec.attributes.count(key)) << key;
  }
  EXPECT_EQ(spec.owner, spec.attributes.at("login"));
}

TEST(TaskGenerator, BatchIdsAndCount) {
  Rng rng(17);
  auto pop = ApplicationPopulation::make(rng, {});
  const auto specs = make_tasks(pop, rng, {}, "batch", 25);
  ASSERT_EQ(specs.size(), 25u);
  EXPECT_EQ(specs[0].id, "batch-0");
  EXPECT_EQ(specs[24].id, "batch-24");
}

TEST(TaskGenerator, RecordAttributesMatchSchema) {
  AccountingRecord rec;
  rec.login = "user1";
  rec.executable = "app3";
  rec.queue = "standard";
  rec.partition = "compute";
  rec.nodes = 16;
  rec.interactive = true;
  const auto attrs = record_attributes(rec);
  EXPECT_EQ(attrs.at("login"), "user1");
  EXPECT_EQ(attrs.at("nodes"), "16");
  EXPECT_EQ(attrs.at("jobtype"), "interactive");
}

}  // namespace
}  // namespace gae::workload
