// Deterministic simulation harness: transport-seam conformance (the same
// byte-stream contract over live TCP and the simulated network), cluster
// determinism (one seed, one bit-identical trace), whole-cluster failure
// schedules on virtual time, and a seed sweep over randomized kill +
// partition + bit-rot schedules.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/rng.h"
#include "dst/cluster.h"
#include "dst/explore.h"
#include "dst/simnet.h"
#include "rpc/transport.h"

namespace gae {
namespace {

using dst::Action;
using dst::Cluster;
using dst::ClusterOptions;
using dst::ExploreOptions;
using dst::SimNetwork;
using dst::SimStream;

// ---------------------------------------------------------------------------
// Transport conformance: one set of assertions, two transports. Each
// environment provides a transport, an echo server (echoes every byte until
// the peer hangs up), and a port nobody listens on.

class TcpTransportEnv {
 public:
  TcpTransportEnv() {
    auto listener = transport().listen(0);
    EXPECT_TRUE(listener.is_ok()) << listener.status().message();
    listener_ = std::move(listener).value();
    echo_port_ = listener_->port();
    server_ = std::thread([this] {
      for (;;) {
        auto conn = listener_->accept();
        if (!conn.is_ok()) return;  // listener closed: test over
        char buf[256];
        for (;;) {
          auto n = conn.value()->read_some(buf, sizeof(buf));
          if (!n.is_ok() || n.value() == 0) break;
          if (!conn.value()->write_all(buf, n.value()).is_ok()) break;
        }
      }
    });

    // A bound-then-closed listener yields a port that refuses connections.
    auto dead = transport().listen(0);
    EXPECT_TRUE(dead.is_ok());
    dead_port_ = dead.value()->port();
  }

  ~TcpTransportEnv() {
    listener_->close();
    if (server_.joinable()) server_.join();
  }

  rpc::Transport& transport() { return rpc::tcp_transport(); }
  std::string echo_host() const { return "127.0.0.1"; }
  std::uint16_t echo_port() const { return echo_port_; }
  std::uint16_t dead_port() const { return dead_port_; }

 private:
  std::unique_ptr<rpc::Listener> listener_;
  std::uint16_t echo_port_ = 0;
  std::uint16_t dead_port_ = 0;
  std::thread server_;
};

class SimTransportEnv {
 public:
  SimTransportEnv() : net_(clock_, /*seed=*/7) {
    auto port = net_.listen_push("server", 0, [this](std::unique_ptr<SimStream> stream) {
      conns_.push_back(std::move(stream));
      SimStream* conn = conns_.back().get();
      conn->set_on_readable([conn] {
        char buf[256];
        while (conn->has_buffered()) {
          auto n = conn->read_some(buf, sizeof(buf));
          if (!n.is_ok() || n.value() == 0) return;
          if (!conn->write_all(buf, n.value()).is_ok()) return;
        }
      });
    });
    EXPECT_TRUE(port.is_ok()) << port.status().message();
    echo_port_ = port.value();
  }

  rpc::Transport& transport() { return net_.transport_for("client"); }
  std::string echo_host() const { return "server"; }
  std::uint16_t echo_port() const { return echo_port_; }
  std::uint16_t dead_port() const { return 9999; }

 private:
  ManualClock clock_;
  SimNetwork net_;
  std::vector<std::unique_ptr<SimStream>> conns_;
  std::uint16_t echo_port_ = 0;
};

template <typename Env>
class TransportConformance : public ::testing::Test {
 protected:
  Env env_;
};

using TransportEnvs = ::testing::Types<TcpTransportEnv, SimTransportEnv>;
TYPED_TEST_SUITE(TransportConformance, TransportEnvs);

TYPED_TEST(TransportConformance, ConnectToDeadPortFails) {
  auto conn = this->env_.transport().connect(this->env_.echo_host(), this->env_.dead_port());
  EXPECT_FALSE(conn.is_ok());
}

TYPED_TEST(TransportConformance, EchoesBytesInOrder) {
  auto conn = this->env_.transport().connect(this->env_.echo_host(), this->env_.echo_port());
  ASSERT_TRUE(conn.is_ok()) << conn.status().message();
  const std::string payload = "the quick brown fox";
  ASSERT_TRUE(conn.value()->write_all(payload).is_ok());
  std::string back(payload.size(), '\0');
  ASSERT_TRUE(conn.value()->read_exact(back.data(), back.size()).is_ok());
  EXPECT_EQ(back, payload);
}

TYPED_TEST(TransportConformance, SecondRoundTripOnSameConnection) {
  auto conn = this->env_.transport().connect(this->env_.echo_host(), this->env_.echo_port());
  ASSERT_TRUE(conn.is_ok()) << conn.status().message();
  for (const std::string payload : {"first", "second, longer payload"}) {
    ASSERT_TRUE(conn.value()->write_all(payload).is_ok());
    std::string back(payload.size(), '\0');
    ASSERT_TRUE(conn.value()->read_exact(back.data(), back.size()).is_ok());
    EXPECT_EQ(back, payload);
  }
}

TYPED_TEST(TransportConformance, RecvTimeoutIsDeadlineExceeded) {
  auto conn = this->env_.transport().connect(this->env_.echo_host(), this->env_.echo_port());
  ASSERT_TRUE(conn.is_ok()) << conn.status().message();
  ASSERT_TRUE(conn.value()->set_recv_timeout_ms(30).is_ok());
  char buf[8];
  auto n = conn.value()->read_some(buf, sizeof(buf));
  ASSERT_FALSE(n.is_ok());
  EXPECT_EQ(n.status().code(), StatusCode::kDeadlineExceeded) << n.status().message();
}

TYPED_TEST(TransportConformance, CleanShutdownReadsAsEof) {
  auto conn = this->env_.transport().connect(this->env_.echo_host(), this->env_.echo_port());
  ASSERT_TRUE(conn.is_ok()) << conn.status().message();
  // Echo servers hang up after we half-close: drain the echo, then expect
  // EOF rather than an error.
  const std::string payload = "bye";
  ASSERT_TRUE(conn.value()->write_all(payload).is_ok());
  std::string back(payload.size(), '\0');
  ASSERT_TRUE(conn.value()->read_exact(back.data(), back.size()).is_ok());
  conn.value()->shutdown_both();
  char buf[8];
  auto n = conn.value()->read_some(buf, sizeof(buf));
  ASSERT_TRUE(n.is_ok()) << n.status().message();
  EXPECT_EQ(n.value(), 0u);
}

// ---------------------------------------------------------------------------
// Determinism: the same seed must produce the same cluster, byte for byte.

std::vector<std::string> traced_run(std::uint64_t seed) {
  ClusterOptions options;
  options.seed = seed;
  options.trace = true;
  Cluster cluster(options);
  Rng rng = Rng(seed).fork("schedule");
  for (int i = 0; i < 30; ++i) {
    if (rng.bernoulli(0.2)) cluster.apply(dst::draw_action(rng));
    cluster.tick();
  }
  return cluster.net().trace();
}

TEST(DstDeterminism, SameSeedSameEventTrace) {
  const auto first = traced_run(42);
  const auto second = traced_run(42);
  ASSERT_FALSE(first.empty());
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    ASSERT_EQ(first[i], second[i]) << "trace diverged at event " << i;
  }
}

TEST(DstDeterminism, DifferentSeedDifferentSchedule) {
  EXPECT_NE(traced_run(42), traced_run(43));
}

// ---------------------------------------------------------------------------
// Whole-cluster schedules on virtual time.

TEST(DstCluster, HealthyWorkloadAcksWritesAndServesReads) {
  ClusterOptions options;
  options.seed = 5;
  Cluster cluster(options);
  for (int i = 0; i < 60; ++i) cluster.tick();
  EXPECT_GT(cluster.tasks_submitted(), 0u);
  EXPECT_GT(cluster.writes_acked(), 0u);
  EXPECT_GT(cluster.reads_ok(), 0u);
  EXPECT_GT(cluster.estimates_ok(), 0u);
  EXPECT_FALSE(cluster.promoted());
  EXPECT_TRUE(cluster.violations().empty())
      << cluster.violations().front() << " (+" << cluster.violations().size() - 1 << " more)";
}

TEST(DstCluster, PrimaryKillFailsOverWithoutLosingAckedWrites) {
  ClusterOptions options;
  options.seed = 6;
  Cluster cluster(options);
  for (int i = 0; i < 12; ++i) cluster.tick();
  const std::uint64_t acked_before = cluster.writes_acked();
  EXPECT_GT(acked_before, 0u);
  cluster.apply({Action::Kind::kKillPrimary});
  for (int i = 0; i < 80 && !cluster.promoted(); ++i) cluster.tick();
  EXPECT_TRUE(cluster.promoted());
  for (int i = 0; i < 20; ++i) cluster.tick();
  EXPECT_TRUE(cluster.violations().empty())
      << cluster.violations().front() << " (+" << cluster.violations().size() - 1 << " more)";
}

TEST(DstCluster, ArbiterPartitionFencesLiveZombiePrimary) {
  ClusterOptions options;
  options.seed = 7;
  Cluster cluster(options);
  for (int i = 0; i < 10; ++i) cluster.tick();
  // The primary stays alive but can no longer heartbeat or renew: the
  // standby must take over, and the zombie's own shipping must fence it.
  cluster.apply({Action::Kind::kPartitionPrimaryArbiter});
  for (int i = 0; i < 80 && !cluster.promoted(); ++i) cluster.tick();
  EXPECT_TRUE(cluster.promoted());
  cluster.apply({Action::Kind::kHealAll});
  for (int i = 0; i < 20; ++i) cluster.tick();
  EXPECT_TRUE(cluster.violations().empty())
      << cluster.violations().front() << " (+" << cluster.violations().size() - 1 << " more)";
}

TEST(DstCluster, StandbyBitRotNeverLosesDataSilently) {
  ClusterOptions options;
  options.seed = 8;
  Cluster cluster(options);
  for (int i = 0; i < 15; ++i) cluster.tick();
  Action rot;
  rot.kind = Action::Kind::kRotStandbyWalByte;
  rot.offset = 64;
  cluster.apply(rot);
  cluster.apply({Action::Kind::kKillPrimary});
  for (int i = 0; i < 100; ++i) cluster.tick();
  // Either the rot landed somewhere harmless and the standby promoted with
  // full state, or recovery detected the damage — silent loss is the only
  // failure mode, and check_invariants records it.
  EXPECT_TRUE(cluster.violations().empty())
      << cluster.violations().front() << " (+" << cluster.violations().size() - 1 << " more)";
}

// ---------------------------------------------------------------------------
// Seed sweep: randomized kill + partition + bit-rot schedules.

TEST(DstSweep, ThousandSeedsOfChaosHoldEveryInvariant) {
  ExploreOptions options;
  options.ticks = 20;
  options.settle_ticks = 35;
  options.action_prob = 0.2;
  auto report = dst::explore(1, 1001, options);
  EXPECT_EQ(report.seeds_run, 1000u);
  EXPECT_GT(report.total_invariant_checks, 0u);
  EXPECT_GT(report.total_writes_acked, 0u);
  std::string failures;
  for (const auto& failure : report.failures) failures += dst::format_failure(failure);
  EXPECT_TRUE(report.failures.empty()) << failures;
}

}  // namespace
}  // namespace gae
