#include "steering/service.h"

#include <gtest/gtest.h>

#include "clarens/host.h"
#include "sim/load.h"
#include "steering/rpc_binding.h"

namespace gae::steering {
namespace {

exec::TaskSpec spec(const std::string& id, double work, bool checkpointable = false) {
  exec::TaskSpec s;
  s.id = id;
  s.job_id = "job-1";
  s.owner = "alice";
  s.work_seconds = work;
  s.checkpointable = checkpointable;
  s.attributes = {{"executable", "primes"}, {"login", "alice"}, {"queue", "q"},
                  {"nodes", "1"}};
  return s;
}

sphinx::JobDescription one_task_job(const std::string& job_id, exec::TaskSpec task) {
  sphinx::JobDescription job;
  job.id = job_id;
  job.owner = "alice";
  job.tasks.push_back({std::move(task), {}});
  return job;
}

// Full in-simulation stack: two sites (site-a deliberately loaded), seeded
// estimators, scheduler, job monitoring, steering.
class SteeringTest : public ::testing::Test {
 protected:
  explicit SteeringTest(double site_a_load = 0.9) {
    grid_.add_site("site-a").add_node("a0", 1.0,
                                      std::make_shared<sim::ConstantLoad>(site_a_load));
    grid_.add_site("site-b").add_node("b0", 1.0, nullptr);
    grid_.set_default_link({100e6, 0});
    exec_a_ = std::make_unique<exec::ExecutionService>(sim_, grid_, "site-a");
    exec_b_ = std::make_unique<exec::ExecutionService>(sim_, grid_, "site-b");
    estimate_db_ = std::make_shared<estimators::EstimateDatabase>();

    for (auto* holder : {&est_a_, &est_b_}) {
      *holder = std::make_shared<estimators::RuntimeEstimator>(
          std::make_shared<estimators::TaskHistoryStore>());
      for (int i = 0; i < 5; ++i) {
        (*holder)->record(spec("h", 1).attributes, 283.0, 0);
      }
    }

    scheduler_ = std::make_unique<sphinx::SphinxScheduler>(sim_, grid_, &monitoring_,
                                                           estimate_db_);
    scheduler_->add_site("site-a", {exec_a_.get(), est_a_});
    scheduler_->add_site("site-b", {exec_b_.get(), est_b_});

    jms_ = std::make_unique<jobmon::JobMonitoringService>(sim_.clock(), &monitoring_,
                                                          estimate_db_);
    jms_->attach_site("site-a", exec_a_.get());
    jms_->attach_site("site-b", exec_b_.get());
  }

  SteeringService& make_steering(SteeringOptions options = {},
                                 clarens::AuthService* auth = nullptr,
                                 quota::QuotaAccountingService* quota = nullptr) {
    SteeringService::Deps deps;
    deps.sim = &sim_;
    deps.scheduler = scheduler_.get();
    deps.jobmon = jms_.get();
    deps.services = {{"site-a", exec_a_.get()}, {"site-b", exec_b_.get()}};
    deps.auth = auth;
    deps.quota = quota;
    steering_ = std::make_unique<SteeringService>(deps, options);
    return *steering_;
  }

  sim::Simulation sim_;
  sim::Grid grid_;
  monalisa::Repository monitoring_;
  std::unique_ptr<exec::ExecutionService> exec_a_, exec_b_;
  std::shared_ptr<estimators::RuntimeEstimator> est_a_, est_b_;
  std::shared_ptr<estimators::EstimateDatabase> estimate_db_;
  std::unique_ptr<sphinx::SphinxScheduler> scheduler_;
  std::unique_ptr<jobmon::JobMonitoringService> jms_;
  std::unique_ptr<SteeringService> steering_;
};

TEST_F(SteeringTest, SubscriberWatchesScheduledJobs) {
  auto& steering = make_steering();
  EXPECT_EQ(steering.watched_tasks(), 0u);
  ASSERT_TRUE(scheduler_->submit(one_task_job("j1", spec("t1", 100))).is_ok());
  EXPECT_EQ(steering.watched_tasks(), 1u);
}

TEST_F(SteeringTest, CommandsRequireWatchedTask) {
  auto& steering = make_steering();
  EXPECT_EQ(steering.kill("", "ghost").code(), StatusCode::kNotFound);
  EXPECT_EQ(steering.pause("", "ghost").code(), StatusCode::kNotFound);
  EXPECT_EQ(steering.move("", "ghost").status().code(), StatusCode::kNotFound);
}

TEST_F(SteeringTest, PauseResumeKillFlow) {
  SteeringOptions opts;
  opts.auto_steer = false;
  auto& steering = make_steering(opts);
  ASSERT_TRUE(scheduler_->submit(one_task_job("j1", spec("t1", 100))).is_ok());
  sim_.run_until(from_seconds(5));

  ASSERT_TRUE(steering.pause("", "t1").is_ok());
  EXPECT_EQ(jms_->status("t1").value(), "SUSPENDED");
  ASSERT_TRUE(steering.resume("", "t1").is_ok());
  sim_.run_until(from_seconds(6));
  EXPECT_EQ(jms_->status("t1").value(), "RUNNING");
  ASSERT_TRUE(steering.change_priority("", "t1", 7).is_ok());
  ASSERT_TRUE(steering.kill("", "t1").is_ok());
  EXPECT_EQ(jms_->status("t1").value(), "KILLED");
}

TEST_F(SteeringTest, SessionManagerEnforcesOwnership) {
  ManualClock wall;
  clarens::AuthService auth(wall);
  auth.register_user("alice", "pw");
  auth.register_user("eve", "pw");
  auth.register_user("admin", "pw");
  SteeringOptions opts;
  opts.auto_steer = false;
  auto& steering = make_steering(opts, &auth);

  ASSERT_TRUE(scheduler_->submit(one_task_job("j1", spec("t1", 100))).is_ok());
  sim_.run_until(from_seconds(1));

  const std::string alice = auth.login("alice", "pw").value();
  const std::string eve = auth.login("eve", "pw").value();
  const std::string admin = auth.login("admin", "pw").value();

  EXPECT_EQ(steering.pause("bad-token", "t1").code(), StatusCode::kUnauthenticated);
  EXPECT_EQ(steering.pause(eve, "t1").code(), StatusCode::kPermissionDenied);
  EXPECT_TRUE(steering.pause(alice, "t1").is_ok());
  EXPECT_TRUE(steering.resume(admin, "t1").is_ok());  // admin may steer anything
  EXPECT_TRUE(steering.job_info(alice, "t1").is_ok());
  EXPECT_EQ(steering.job_info(eve, "t1").status().code(), StatusCode::kPermissionDenied);
}

TEST_F(SteeringTest, ManualMoveRestartsElsewhere) {
  SteeringOptions opts;
  opts.auto_steer = false;
  auto& steering = make_steering(opts);
  ASSERT_TRUE(scheduler_->submit(one_task_job("j1", spec("t1", 283))).is_ok());
  ASSERT_EQ(scheduler_->task_site("t1").value(), "site-a");  // tie-break favours a
  sim_.run_until(from_seconds(50));

  auto placement = steering.move("", "t1", "site-b");
  ASSERT_TRUE(placement.is_ok()) << placement.status();
  EXPECT_EQ(placement.value().site, "site-b");
  EXPECT_EQ(steering.stats().manual_moves, 1u);

  // Original killed at site-a (not checkpointable -> restart from zero).
  EXPECT_EQ(exec_a_->query("t1").value().state, exec::TaskState::kKilled);
  sim_.run();
  auto done = exec_b_->query("t1").value();
  EXPECT_EQ(done.state, exec::TaskState::kCompleted);
  EXPECT_EQ(done.completion_time - done.start_time, from_seconds(283));
}

TEST_F(SteeringTest, MoveToSameSiteRejected) {
  SteeringOptions opts;
  opts.auto_steer = false;
  auto& steering = make_steering(opts);
  ASSERT_TRUE(scheduler_->submit(one_task_job("j1", spec("t1", 100))).is_ok());
  const std::string site = scheduler_->task_site("t1").value();
  EXPECT_EQ(steering.move("", "t1", site).status().code(), StatusCode::kInvalidArgument);
}

TEST_F(SteeringTest, CheckpointableMoveCarriesProgress) {
  SteeringOptions opts;
  opts.auto_steer = false;
  auto& steering = make_steering(opts);
  ASSERT_TRUE(scheduler_->submit(one_task_job("j1", spec("t1", 100, true))).is_ok());
  sim_.run_until(from_seconds(400));  // at 0.1 rate: 40 cpu-seconds done

  auto placement = steering.move("", "t1", "site-b");
  ASSERT_TRUE(placement.is_ok());
  sim_.run();
  auto done = exec_b_->query("t1").value();
  EXPECT_EQ(done.state, exec::TaskState::kCompleted);
  // Only ~60 cpu-seconds remained.
  EXPECT_NEAR(to_seconds(done.completion_time - done.start_time), 60.0, 1.0);
}

TEST_F(SteeringTest, OptimizerMovesSlowTask) {
  SteeringOptions opts;
  opts.optimizer_interval_seconds = 15;
  opts.min_observation_seconds = 30;
  auto& steering = make_steering(opts);
  ASSERT_TRUE(scheduler_->submit(one_task_job("j1", spec("t1", 283))).is_ok());
  ASSERT_EQ(scheduler_->task_site("t1").value(), "site-a");

  sim_.run();
  EXPECT_GE(steering.stats().auto_moves, 1u);
  EXPECT_EQ(scheduler_->task_site("t1").value(), "site-b");
  auto done = exec_b_->query("t1").value();
  EXPECT_EQ(done.state, exec::TaskState::kCompleted);
  // Far sooner than the ~2830 s it would have taken at the loaded site.
  EXPECT_LT(to_seconds(done.completion_time), 500.0);

  bool saw_move_notification = false;
  for (const auto& n : steering.notification_log()) {
    if (n.kind == "moved" && n.task_id == "t1") saw_move_notification = true;
  }
  EXPECT_TRUE(saw_move_notification);
}

TEST_F(SteeringTest, OptimizerLeavesHealthyTasksAlone) {
  SteeringOptions opts;
  auto& steering = make_steering(opts);
  // Schedule on site-b (free) by pre-loading site-a's queue.
  ASSERT_TRUE(exec_a_->submit(spec("blocker", 5000)).is_ok());
  estimate_db_->put("blocker", 5000);
  ASSERT_TRUE(scheduler_->submit(one_task_job("j1", spec("t1", 283))).is_ok());
  ASSERT_EQ(scheduler_->task_site("t1").value(), "site-b");
  sim_.run_until(from_seconds(300));
  EXPECT_EQ(steering.stats().auto_moves, 0u);
  EXPECT_EQ(exec_b_->query("t1").value().state, exec::TaskState::kCompleted);
}

TEST_F(SteeringTest, KeepOriginalMode) {
  SteeringOptions opts;
  opts.auto_steer = false;
  opts.keep_original_on_move = true;
  auto& steering = make_steering(opts);
  ASSERT_TRUE(scheduler_->submit(one_task_job("j1", spec("t1", 283))).is_ok());
  sim_.run_until(from_seconds(100));
  ASSERT_TRUE(steering.move("", "t1", "site-b").is_ok());
  sim_.run();

  // Both instances ran to completion; the steered one finished first.
  const auto original = exec_a_->query("t1").value();
  const auto steered = exec_b_->query("t1").value();
  EXPECT_EQ(original.state, exec::TaskState::kCompleted);
  EXPECT_EQ(steered.state, exec::TaskState::kCompleted);
  EXPECT_LT(steered.completion_time, original.completion_time);

  // Only one "completed" notification: the stale original is ignored.
  int completed_notifications = 0;
  for (const auto& n : steering.notification_log()) {
    if (n.kind == "completed") ++completed_notifications;
  }
  EXPECT_EQ(completed_notifications, 1);
}

TEST_F(SteeringTest, CompletionNotificationCarriesOutputs) {
  SteeringOptions opts;
  opts.auto_steer = false;
  auto& steering = make_steering(opts);
  auto task = spec("t1", 50);
  task.output_bytes = 1'000'000;
  // Pre-load site-a so the scheduler picks free site-b: avoids slow-site noise.
  ASSERT_TRUE(exec_a_->submit(spec("blocker", 5000)).is_ok());
  estimate_db_->put("blocker", 5000);
  ASSERT_TRUE(scheduler_->submit(one_task_job("j1", task)).is_ok());

  std::vector<Notification> seen;
  steering.subscribe([&](const Notification& n) { seen.push_back(n); });
  sim_.run_until(from_seconds(100));

  ASSERT_FALSE(seen.empty());
  const Notification& done = seen.back();
  EXPECT_EQ(done.kind, "completed");
  EXPECT_EQ(done.task_id, "t1");
  ASSERT_EQ(done.output_files.size(), 1u);
  EXPECT_EQ(done.output_files[0], "t1.out");
  EXPECT_EQ(steering.stats().completions, 1u);
}

TEST_F(SteeringTest, TaskFailureNotifiedWithPartialOutputs) {
  SteeringOptions opts;
  opts.auto_steer = false;
  auto& steering = make_steering(opts);
  auto task = spec("t1", 100);
  task.output_bytes = 1'000'000;
  ASSERT_TRUE(exec_a_->submit(spec("blocker", 5000)).is_ok());
  estimate_db_->put("blocker", 5000);
  ASSERT_TRUE(scheduler_->submit(one_task_job("j1", task)).is_ok());
  sim_.run_until(from_seconds(50));
  ASSERT_TRUE(exec_b_->inject_task_failure("t1", "segfault").is_ok());

  bool failure_with_files = false;
  for (const auto& n : steering.notification_log()) {
    if (n.kind == "failed" && !n.output_files.empty()) failure_with_files = true;
  }
  EXPECT_TRUE(failure_with_files);
  EXPECT_EQ(steering.stats().failures, 1u);
}

TEST_F(SteeringTest, BackupRecoveryResubmitsAfterServiceFailure) {
  SteeringOptions opts;
  opts.auto_steer = false;  // isolate the recovery path
  opts.recovery_interval_seconds = 30;
  auto& steering = make_steering(opts);
  // Run on free site-b.
  ASSERT_TRUE(exec_a_->submit(spec("blocker", 50000)).is_ok());
  estimate_db_->put("blocker", 50000);
  ASSERT_TRUE(scheduler_->submit(one_task_job("j1", spec("t1", 283))).is_ok());
  ASSERT_EQ(scheduler_->task_site("t1").value(), "site-b");

  sim_.schedule_at(from_seconds(100), [&] { exec_b_->fail_service("power cut"); });
  // Free up site-a so recovery has somewhere to go.
  sim_.schedule_at(from_seconds(101), [&] { exec_a_->kill("blocker", "make room"); });
  sim_.run_until(from_seconds(5000));

  EXPECT_EQ(steering.stats().recoveries, 1u);
  EXPECT_EQ(scheduler_->task_site("t1").value(), "site-a");
  EXPECT_EQ(exec_a_->query("t1").value().state, exec::TaskState::kCompleted);

  bool saw_service_failure = false, saw_recovered = false;
  for (const auto& n : steering.notification_log()) {
    if (n.kind == "service_failure") saw_service_failure = true;
    if (n.kind == "recovered" && n.task_id == "t1") saw_recovered = true;
  }
  EXPECT_TRUE(saw_service_failure);
  EXPECT_TRUE(saw_recovered);
}

TEST_F(SteeringTest, AutoMovesCappedPerTask) {
  // Both sites loaded: every site always looks slow. The cap must stop the
  // optimizer from ping-ponging forever.
  grid_.site("site-b");  // keep fixture layout; replace node load below
  SteeringOptions opts;
  opts.max_moves_per_task = 2;
  opts.min_benefit_seconds = 0;
  auto& steering = make_steering(opts);
  // Make site-b loaded too by occupying it with a competing long task? The
  // load profile is fixed at construction, so instead steer between loaded
  // site-a and site-b while site-b is saturated by another task.
  ASSERT_TRUE(scheduler_->submit(one_task_job("j1", spec("t1", 283))).is_ok());
  sim_.run_until(from_seconds(4000));
  EXPECT_LE(steering.stats().auto_moves, 2u);
}

TEST_F(SteeringTest, CheapModeUsesQuotaRates) {
  quota::QuotaAccountingService quota;
  quota.set_site_rate("site-a", 5.0);
  quota.set_site_rate("site-b", 1.0);
  SteeringOptions opts;
  opts.optimize_for = "cheap";
  opts.min_observation_seconds = 30;
  auto& steering = make_steering(opts, nullptr, &quota);
  ASSERT_TRUE(scheduler_->submit(one_task_job("j1", spec("t1", 283))).is_ok());
  ASSERT_EQ(scheduler_->task_site("t1").value(), "site-a");
  sim_.run();
  // The slow, expensive site is abandoned for the cheap one.
  EXPECT_EQ(scheduler_->task_site("t1").value(), "site-b");
  EXPECT_GE(steering.stats().auto_moves, 1u);
}

TEST_F(SteeringTest, AdviseRanksSitesForUser) {
  SteeringOptions opts;
  opts.auto_steer = false;
  auto& steering = make_steering(opts);
  ASSERT_TRUE(scheduler_->submit(one_task_job("j1", spec("t1", 283))).is_ok());
  sim_.run_until(from_seconds(10));

  auto advice = steering.advise("", "t1");
  ASSERT_TRUE(advice.is_ok()) << advice.status();
  ASSERT_EQ(advice.value().size(), 2u);
  // Best first; both sites carry the 283 s history estimate.
  EXPECT_LE(advice.value()[0].total_seconds, advice.value()[1].total_seconds);
  EXPECT_NEAR(advice.value()[0].est_runtime_seconds, 283.0, 1e-6);
  EXPECT_EQ(steering.advise("", "ghost").status().code(), StatusCode::kNotFound);
}

TEST_F(SteeringTest, RestartResubmitsFailedTask) {
  SteeringOptions opts;
  opts.auto_steer = false;
  opts.recovery_interval_seconds = 1e6;  // keep Backup & Recovery out of the way
  auto& steering = make_steering(opts);
  // Run on free site-b.
  ASSERT_TRUE(exec_a_->submit(spec("blocker", 50000)).is_ok());
  estimate_db_->put("blocker", 50000);
  ASSERT_TRUE(scheduler_->submit(one_task_job("j1", spec("t1", 283))).is_ok());
  ASSERT_EQ(scheduler_->task_site("t1").value(), "site-b");
  sim_.run_until(from_seconds(50));

  // Restarting an active task is refused.
  EXPECT_EQ(steering.restart("", "t1").status().code(), StatusCode::kFailedPrecondition);

  ASSERT_TRUE(exec_b_->inject_task_failure("t1", "segfault").is_ok());
  auto placement = steering.restart("", "t1");
  ASSERT_TRUE(placement.is_ok()) << placement.status();
  sim_.run_until(from_seconds(5000));
  EXPECT_EQ(jms_->status("t1").value(), "COMPLETED");

  bool saw_restart = false;
  for (const auto& n : steering.notification_log()) {
    if (n.kind == "restarted" && n.task_id == "t1") saw_restart = true;
  }
  EXPECT_TRUE(saw_restart);
}

TEST_F(SteeringTest, NotificationPagination) {
  SteeringOptions opts;
  opts.auto_steer = false;
  auto& steering = make_steering(opts);
  ASSERT_TRUE(scheduler_->submit(one_task_job("j1", spec("t1", 283))).is_ok());
  sim_.run_until(from_seconds(10));
  ASSERT_TRUE(steering.move("", "t1", "site-b").is_ok());
  sim_.run();

  const auto all = steering.notifications_since(0);
  ASSERT_GE(all.size(), 2u);  // moved + completed
  EXPECT_EQ(steering.notifications_since(all.size()).size(), 0u);
  EXPECT_EQ(steering.notifications_since(all.size() - 1).size(), 1u);
  EXPECT_EQ(steering.notifications_since(0, 1).size(), 1u);
  EXPECT_EQ(steering.notifications_since(0, 1)[0].kind, all[0].kind);
}

TEST_F(SteeringTest, RpcBindingExposesCommands) {
  ManualClock wall;
  clarens::HostOptions hopts;
  hopts.require_auth = false;
  clarens::ClarensHost host("steer-host", wall, hopts);
  SteeringOptions opts;
  opts.auto_steer = false;
  auto& steering = make_steering(opts);
  register_steering_methods(host, steering);

  ASSERT_TRUE(scheduler_->submit(one_task_job("j1", spec("t1", 283))).is_ok());
  sim_.run_until(from_seconds(10));

  auto info = host.call("steering.info", {rpc::Value("t1")});
  ASSERT_TRUE(info.is_ok()) << info.status();
  EXPECT_EQ(info.value().get_string("status", ""), "RUNNING");

  ASSERT_TRUE(host.call("steering.pause", {rpc::Value("t1")}).is_ok());
  ASSERT_TRUE(host.call("steering.resume", {rpc::Value("t1")}).is_ok());
  ASSERT_TRUE(host.call("steering.priority", {rpc::Value("t1"), rpc::Value(9)}).is_ok());

  auto moved = host.call("steering.move", {rpc::Value("t1"), rpc::Value("site-b")});
  ASSERT_TRUE(moved.is_ok()) << moved.status();
  EXPECT_EQ(moved.value().get_string("site", ""), "site-b");

  auto advice = host.call("steering.advise", {rpc::Value("t1")});
  ASSERT_TRUE(advice.is_ok()) << advice.status();
  EXPECT_EQ(advice.value().as_array().size(), 2u);

  ASSERT_TRUE(host.call("steering.kill", {rpc::Value("t1")}).is_ok());
  auto notes = host.call("steering.notifications", {});
  ASSERT_TRUE(notes.is_ok());
  EXPECT_FALSE(notes.value().as_array().empty());

  auto page = host.call("steering.notificationsSince", {rpc::Value(0), rpc::Value(1)});
  ASSERT_TRUE(page.is_ok()) << page.status();
  ASSERT_EQ(page.value().as_array().size(), 1u);
  EXPECT_EQ(page.value().as_array()[0].get_int("index", -1), 0);
  auto rest = host.call("steering.notificationsSince", {rpc::Value(1)});
  ASSERT_TRUE(rest.is_ok());
  EXPECT_EQ(rest.value().as_array().size(), notes.value().as_array().size() - 1);
  EXPECT_TRUE(host.registry().lookup("steering@steer-host").is_ok());
}

}  // namespace
}  // namespace gae::steering
