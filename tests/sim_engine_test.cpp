#include "sim/engine.h"

#include <gtest/gtest.h>

#include <vector>

namespace gae::sim {
namespace {

TEST(Simulation, FiresInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule_at(300, [&] { order.push_back(3); });
  sim.schedule_at(100, [&] { order.push_back(1); });
  sim.schedule_at(200, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 300);
}

TEST(Simulation, TiesBreakByScheduleOrder) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(50, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulation, ClockAdvancesOnlyToFiredEvents) {
  Simulation sim;
  sim.schedule_at(100, [] {});
  sim.schedule_at(500, [] {});
  sim.step();
  EXPECT_EQ(sim.now(), 100);
  sim.step();
  EXPECT_EQ(sim.now(), 500);
  EXPECT_FALSE(sim.step());
}

TEST(Simulation, ScheduleAfterRelative) {
  Simulation sim;
  SimTime fired_at = -1;
  sim.schedule_at(100, [&] {
    sim.schedule_after(50, [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(fired_at, 150);
}

TEST(Simulation, PastSchedulesClampToNow) {
  Simulation sim;
  SimTime fired_at = -1;
  sim.schedule_at(100, [&] {
    sim.schedule_at(10, [&] { fired_at = sim.now(); });  // in the past
  });
  sim.run();
  EXPECT_EQ(fired_at, 100);
}

TEST(Simulation, CancelPreventsFiring) {
  Simulation sim;
  bool fired = false;
  const EventId id = sim.schedule_at(100, [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));  // double cancel reports false
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulation, CancelInvalidIds) {
  Simulation sim;
  EXPECT_FALSE(sim.cancel(kInvalidEvent));
  EXPECT_FALSE(sim.cancel(9999));  // never existed
}

TEST(Simulation, CancelFromInsideEvent) {
  Simulation sim;
  bool fired = false;
  const EventId victim = sim.schedule_at(200, [&] { fired = true; });
  sim.schedule_at(100, [&] { sim.cancel(victim); });
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulation, RunUntilStopsAtBoundary) {
  Simulation sim;
  int count = 0;
  sim.schedule_at(100, [&] { ++count; });
  sim.schedule_at(200, [&] { ++count; });
  sim.schedule_at(300, [&] { ++count; });
  sim.run_until(200);
  EXPECT_EQ(count, 2);  // events at t <= 200 fired
  EXPECT_EQ(sim.now(), 200);
  sim.run();
  EXPECT_EQ(count, 3);
}

TEST(Simulation, RunUntilAdvancesClockWithoutEvents) {
  Simulation sim;
  sim.run_until(1000);
  EXPECT_EQ(sim.now(), 1000);
}

TEST(Simulation, EventsCanScheduleChains) {
  Simulation sim;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 100) sim.schedule_after(10, chain);
  };
  sim.schedule_at(0, chain);
  const auto fired = sim.run();
  EXPECT_EQ(fired, 100u);
  EXPECT_EQ(sim.now(), 990);
}

TEST(Simulation, MaxEventsGuardStopsRunaway) {
  Simulation sim;
  std::function<void()> forever = [&] { sim.schedule_after(1, forever); };
  sim.schedule_at(0, forever);
  const auto fired = sim.run(1000);
  EXPECT_EQ(fired, 1000u);
}

TEST(Simulation, DeterministicAcrossRuns) {
  auto run_once = [] {
    Simulation sim;
    std::vector<SimTime> log;
    for (int i = 0; i < 50; ++i) {
      sim.schedule_at((i * 37) % 100, [&log, &sim] { log.push_back(sim.now()); });
    }
    sim.run();
    return log;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Simulation, EmptyReflectsCancelledEvents) {
  Simulation sim;
  EXPECT_TRUE(sim.empty());
  const EventId id = sim.schedule_at(10, [] {});
  EXPECT_FALSE(sim.empty());
  sim.cancel(id);
  EXPECT_TRUE(sim.empty());
}

}  // namespace
}  // namespace gae::sim
