#include "quota/rpc_binding.h"

#include <gtest/gtest.h>

#include "common/clock.h"

namespace gae::quota {
namespace {

using rpc::Array;
using rpc::Value;

class QuotaRpcTest : public ::testing::Test {
 protected:
  QuotaRpcTest() : host_("host", clock_) {
    host_.auth().register_user("alice", "pw");
    host_.auth().register_user("admin", "pw");
    host_.acl().allow("*", "quota.");
    service_.set_site_rate("cern", 2.0);
    service_.set_site_rate("fnal", 1.0);
    service_.create_account("alice", 100.0);
    register_quota_methods(host_, service_);
    alice_ = host_.call("system.login", {Value("alice"), Value("pw")}).value().as_string();
    admin_ = host_.call("system.login", {Value("admin"), Value("pw")}).value().as_string();
  }

  ManualClock clock_;
  clarens::ClarensHost host_;
  QuotaAccountingService service_;
  std::string alice_, admin_;
};

TEST_F(QuotaRpcTest, BalanceOfCaller) {
  auto r = host_.call("quota.balance", {}, alice_);
  ASSERT_TRUE(r.is_ok()) << r.status();
  EXPECT_DOUBLE_EQ(r.value().as_double(), 100.0);
  // admin has no account.
  EXPECT_EQ(host_.call("quota.balance", {}, admin_).status().code(),
            StatusCode::kNotFound);
}

TEST_F(QuotaRpcTest, RateAndCheapestAndEstimate) {
  EXPECT_DOUBLE_EQ(host_.call("quota.rate", {Value("cern")}, alice_).value().as_double(),
                   2.0);
  auto cheapest = host_.call("quota.cheapest",
                             {Value(Array{Value("cern"), Value("fnal")})}, alice_);
  ASSERT_TRUE(cheapest.is_ok());
  EXPECT_EQ(cheapest.value().as_string(), "fnal");
  EXPECT_DOUBLE_EQ(
      host_.call("quota.estimate", {Value("cern"), Value(3.0)}, alice_).value().as_double(),
      6.0);
}

TEST_F(QuotaRpcTest, ChargeDebitsCaller) {
  auto r = host_.call("quota.charge", {Value("cern"), Value(10.0)}, alice_);
  ASSERT_TRUE(r.is_ok()) << r.status();
  EXPECT_DOUBLE_EQ(r.value().as_double(), 80.0);  // 100 - 10h * 2/h
  EXPECT_DOUBLE_EQ(service_.balance("alice").value(), 80.0);

  // Exceeding the balance fails atomically.
  auto broke = host_.call("quota.charge", {Value("cern"), Value(1000.0)}, alice_);
  EXPECT_EQ(broke.status().code(), StatusCode::kResourceExhausted);
  EXPECT_DOUBLE_EQ(service_.balance("alice").value(), 80.0);
}

TEST_F(QuotaRpcTest, AdminOnlyMethods) {
  EXPECT_EQ(host_.call("quota.grant", {Value("alice"), Value(1.0)}, alice_)
                .status()
                .code(),
            StatusCode::kPermissionDenied);
  EXPECT_EQ(host_.call("quota.setRate", {Value("cern"), Value(9.0)}, alice_)
                .status()
                .code(),
            StatusCode::kPermissionDenied);

  ASSERT_TRUE(host_.call("quota.grant", {Value("alice"), Value(50.0)}, admin_).is_ok());
  EXPECT_DOUBLE_EQ(service_.balance("alice").value(), 150.0);
  ASSERT_TRUE(host_.call("quota.setRate", {Value("cern"), Value(9.0)}, admin_).is_ok());
  EXPECT_DOUBLE_EQ(service_.site_rate("cern").value(), 9.0);
}

TEST_F(QuotaRpcTest, Validation) {
  EXPECT_EQ(host_.call("quota.rate", {}, alice_).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(host_.call("quota.cheapest", {Value("not-an-array")}, alice_).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(host_.call("quota.charge", {Value("cern")}, alice_).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(host_.registry().lookup("quota@host").is_ok());
}

}  // namespace
}  // namespace gae::quota
