#include "rpc/value.h"

#include <gtest/gtest.h>

namespace gae::rpc {
namespace {

TEST(Value, DefaultIsNil) {
  Value v;
  EXPECT_TRUE(v.is_nil());
  EXPECT_STREQ(v.type_name(), "nil");
}

TEST(Value, TypePredicates) {
  EXPECT_TRUE(Value(true).is_bool());
  EXPECT_TRUE(Value(42).is_int());
  EXPECT_TRUE(Value(std::int64_t{1} << 40).is_int());
  EXPECT_TRUE(Value(2.5).is_double());
  EXPECT_TRUE(Value("s").is_string());
  EXPECT_TRUE(Value(Array{}).is_array());
  EXPECT_TRUE(Value(Struct{}).is_struct());
  EXPECT_TRUE(Value(1).is_number());
  EXPECT_TRUE(Value(1.0).is_number());
  EXPECT_FALSE(Value("1").is_number());
}

TEST(Value, Accessors) {
  EXPECT_EQ(Value(true).as_bool(), true);
  EXPECT_EQ(Value(7).as_int(), 7);
  EXPECT_DOUBLE_EQ(Value(2.5).as_double(), 2.5);
  EXPECT_DOUBLE_EQ(Value(7).as_double(), 7.0);  // int widens to double
  EXPECT_EQ(Value("hi").as_string(), "hi");
}

TEST(Value, AccessorTypeMismatchThrows) {
  EXPECT_THROW(Value("x").as_int(), std::runtime_error);
  EXPECT_THROW(Value(1).as_string(), std::runtime_error);
  EXPECT_THROW(Value(1.5).as_int(), std::runtime_error);  // no silent narrowing
  EXPECT_THROW(Value().as_array(), std::runtime_error);
  EXPECT_THROW(Value(Array{}).as_struct(), std::runtime_error);
}

TEST(Value, StructHelpers) {
  Struct s;
  s["i"] = Value(5);
  s["d"] = Value(1.5);
  s["s"] = Value("txt");
  s["b"] = Value(true);
  Value v(std::move(s));

  EXPECT_TRUE(v.has("i"));
  EXPECT_FALSE(v.has("missing"));
  EXPECT_EQ(v.at("i").as_int(), 5);
  EXPECT_THROW(v.at("missing"), std::runtime_error);

  EXPECT_EQ(v.get_int("i", 0), 5);
  EXPECT_EQ(v.get_int("missing", -1), -1);
  EXPECT_DOUBLE_EQ(v.get_double("d", 0), 1.5);
  EXPECT_EQ(v.get_string("s", ""), "txt");
  EXPECT_TRUE(v.get_bool("b", false));
}

TEST(Value, DeepEquality) {
  Array inner{Value(1), Value("two")};
  Struct s1, s2;
  s1["a"] = Value(inner);
  s2["a"] = Value(inner);
  EXPECT_EQ(Value(s1), Value(s2));
  s2["a"].as_array().push_back(Value(3));
  EXPECT_NE(Value(s1), Value(s2));
}

TEST(Value, DebugString) {
  Struct s;
  s["n"] = Value();
  s["arr"] = Value(Array{Value(1), Value(true)});
  s["txt"] = Value("a\"b");
  const std::string d = Value(std::move(s)).debug_string();
  EXPECT_EQ(d, R"({"arr":[1,true],"n":null,"txt":"a\"b"})");
}

TEST(Value, NestedMutation) {
  Value v{Struct{}};
  v.as_struct()["list"] = Value(Array{});
  v.as_struct()["list"].as_array().push_back(Value(9));
  EXPECT_EQ(v.at("list").as_array().at(0).as_int(), 9);
}

}  // namespace
}  // namespace gae::rpc
