// Storage-fault resilience under chaos: seeded disk-fault injection
// (torn/short appends, fsync failures, ENOSPC, bit rot), background
// integrity scrubbing, degraded-mode gating, and self-healing repair from a
// hot standby. The headline invariants: the scrubber detects every injected
// corruption, a damaged store quarantines instead of serving poisoned
// reads, repair restores byte-equality with the standby, and no
// acknowledged write is ever lost.
#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "clarens/host.h"
#include "common/clock.h"
#include "common/rng.h"
#include "common/wal.h"
#include "estimators/estimate_db.h"
#include "ha/replication.h"
#include "ha/rpc_binding.h"
#include "jobmon/db_manager.h"
#include "rpc/client.h"
#include "steering/journal.h"
#include "storage/faulty_storage.h"
#include "storage/health.h"
#include "storage/repair.h"
#include "storage/scrubber.h"
#include "supervision/supervisor.h"
#include "telemetry/metrics.h"

namespace gae {
namespace {

using ha::LocalShipperTransport;
using ha::LogShipper;
using ha::ReplicatedWalStorage;
using ha::StandbyReplica;
using storage::FaultyWalStorage;
using storage::Scrubber;
using storage::ScrubVerdict;
using storage::StorageFaultKind;
using storage::StorageFaultPlan;
using storage::StorageFaultSpec;
using storage::StoreHealth;
using storage::StoreState;

exec::TaskInfo make_task(const std::string& id, double progress) {
  exec::TaskInfo info;
  info.spec.id = id;
  info.spec.owner = "alice";
  info.spec.work_seconds = 100.0;
  info.state = exec::TaskState::kRunning;
  info.progress = progress;
  info.cpu_seconds_used = progress * 100.0;
  return info;
}

StorageFaultSpec fault(StorageFaultKind kind) {
  StorageFaultSpec spec;
  spec.kind = kind;
  return spec;
}

// --- FaultyWalStorage ------------------------------------------------------

TEST(FaultyStorage, TornAppendLatchesAndLeavesTornTail) {
  MemoryWalStorage inner;
  StorageFaultPlan plan;
  plan.script = {fault(StorageFaultKind::kNone), fault(StorageFaultKind::kTornAppend)};
  FaultyWalStorage faulty(&inner, plan);
  Wal wal(&faulty);

  ASSERT_TRUE(wal.append("alpha").is_ok());
  const Status torn = wal.append("beta");
  EXPECT_EQ(torn.code(), StatusCode::kInternal);
  EXPECT_FALSE(faulty.writable());

  // Appends are refused while latched — blindly writing past a torn tail
  // would bury the damage mid-log.
  EXPECT_EQ(wal.append("gamma").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(wal.appends(), 1u);

  // The torn half-frame is visible to decode as the usual crash artifact.
  auto read = wal.read();
  ASSERT_TRUE(read.is_ok());
  EXPECT_TRUE(read.value().torn_tail);
  ASSERT_EQ(read.value().records.size(), 1u);
  EXPECT_EQ(read.value().records[0].payload, "alpha");

  // replace() rewrites the media wholesale and clears the latch.
  ASSERT_TRUE(wal.write_snapshot("state").is_ok());
  EXPECT_TRUE(faulty.writable());
  EXPECT_TRUE(wal.append("delta").is_ok());
}

TEST(FaultyStorage, EnospcSurfacesResourceExhausted) {
  MemoryWalStorage inner;
  StorageFaultPlan plan;
  plan.script = {fault(StorageFaultKind::kEnospc)};
  FaultyWalStorage faulty(&inner, plan);
  Wal wal(&faulty);

  EXPECT_EQ(wal.append("payload").code(), StatusCode::kResourceExhausted);
  EXPECT_FALSE(faulty.writable());
  EXPECT_EQ(faulty.fault_counts()["enospc"], 1u);
}

TEST(FaultyStorage, FsyncFailureLatchesEvenThoughBytesLanded) {
  MemoryWalStorage inner;
  StorageFaultPlan plan;
  plan.script = {fault(StorageFaultKind::kFsyncFail)};
  FaultyWalStorage faulty(&inner, plan);
  Wal wal(&faulty);

  // fsyncgate: the frame reached the page cache, but the flush that would
  // make it durable failed — the on-media tail is unknowable.
  EXPECT_EQ(wal.append("maybe-durable").code(), StatusCode::kInternal);
  EXPECT_FALSE(faulty.writable());
  EXPECT_EQ(wal.append("after").code(), StatusCode::kFailedPrecondition);
}

TEST(FaultyStorage, BitRotCorruptsReadsUntilReplace) {
  MemoryWalStorage inner;
  FaultyWalStorage faulty(&inner, {});
  Wal wal(&faulty);
  ASSERT_TRUE(wal.append("stable payload").is_ok());

  auto clean = wal.read();
  ASSERT_TRUE(clean.is_ok());
  EXPECT_FALSE(clean.value().corrupt);

  faulty.rot_byte(12);  // lands inside the frame
  auto rotten = wal.read();
  ASSERT_TRUE(rotten.is_ok());
  EXPECT_TRUE(rotten.value().corrupt || rotten.value().torn_tail);
  EXPECT_TRUE(rotten.value().records.empty());

  // The inner media is untouched — rot is applied at read time, as at-rest
  // damage would be.
  EXPECT_FALSE(Wal::decode(inner.bytes()).corrupt);

  ASSERT_TRUE(faulty.replace(inner.bytes()).is_ok());
  auto healed = wal.read();
  ASSERT_TRUE(healed.is_ok());
  EXPECT_FALSE(healed.value().corrupt);
  ASSERT_EQ(healed.value().records.size(), 1u);
}

TEST(FaultyStorage, SeededScheduleReplaysDeterministically) {
  // Trace every op's outcome (status code + observed log size), not just
  // aggregate fault counts — two seeds can collide on totals while the
  // schedules differ op by op.
  auto run = [](std::uint64_t seed) {
    MemoryWalStorage inner;
    StorageFaultPlan plan;
    plan.fault_rate = 0.3;
    plan.seed = seed;
    FaultyWalStorage faulty(&inner, plan);
    std::string trace;
    for (int i = 0; i < 50; ++i) {
      const Status s = faulty.append("frame-" + std::to_string(i));
      trace += std::to_string(static_cast<int>(s.code())) + ":";
      if (!faulty.writable()) (void)faulty.replace("");
      auto bytes = faulty.read_all();
      trace += bytes.is_ok() ? std::to_string(bytes.value().size()) : "err";
      trace += ";";
    }
    EXPECT_GT(faulty.faults_injected(), 0u);  // the schedule actually fired
    return trace;
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(1043));  // and depends on the seed
}

// --- FileWalStorage short-write handling -----------------------------------

TEST(FileWal, FullDeviceLatchesStorageReadOnly) {
  // /dev/full fails every flush with ENOSPC; skip where absent.
  std::FILE* probe = std::fopen("/dev/full", "ab");
  if (!probe) GTEST_SKIP() << "/dev/full not available";
  std::fclose(probe);

  FileWalStorage storage("/dev/full");
  EXPECT_TRUE(storage.writable());
  const Status s = storage.append(std::string(4096, 'x'));
  EXPECT_FALSE(s.is_ok());
  EXPECT_FALSE(storage.writable());
  EXPECT_EQ(storage.append("more").code(), StatusCode::kFailedPrecondition);
  storage.make_writable();  // out-of-band release for cleanliness
}

TEST(FileWal, ReplaceClearsLatchAfterShortWrite) {
  const std::string path = ::testing::TempDir() + "/gae_storage_chaos_wal.log";
  std::remove(path.c_str());
  FileWalStorage storage(path);
  Wal wal(&storage);
  ASSERT_TRUE(wal.append("one").is_ok());

  // Simulate a latched write path (the injectable twin of a short write).
  storage.make_writable();  // no-op, already writable
  FaultyWalStorage faulty(&storage, {});
  faulty.force_latch();
  EXPECT_FALSE(faulty.writable());

  Wal through(&faulty);
  ASSERT_TRUE(through.write_snapshot("compacted").is_ok());
  EXPECT_TRUE(faulty.writable());
  EXPECT_TRUE(storage.writable());
  std::remove(path.c_str());
}

// --- RecoverStats ----------------------------------------------------------

TEST(RecoverStats, TornTailIsCountedButNotQuarantined) {
  MemoryWalStorage store;
  Wal wal(&store);
  ASSERT_TRUE(wal.append("first").is_ok());
  ASSERT_TRUE(wal.append("second").is_ok());
  const std::size_t full = store.bytes().size();
  store.mutable_bytes().resize(full - 3);  // tear the final frame

  telemetry::MetricsRegistry metrics;
  StoreHealth health("jobmon", &metrics);
  RecoverStats stats;
  auto read = wal.recover(&stats);
  ASSERT_TRUE(read.is_ok());
  EXPECT_TRUE(stats.torn_tail);
  EXPECT_FALSE(stats.corrupt);
  EXPECT_EQ(stats.frames_kept, 1u);
  EXPECT_EQ(stats.corrupt_frames, 0u);
  EXPECT_GT(stats.bytes_truncated, 0u);

  health.note_recover(stats);
  EXPECT_EQ(health.state(), StoreState::kHealthy);  // normal crash artifact
  EXPECT_EQ(metrics.counter("wal.jobmon.recover.bytes_truncated").value(),
            stats.bytes_truncated);
}

TEST(RecoverStats, MidLogCorruptionQuarantinesThroughHealth) {
  MemoryWalStorage store;
  Wal wal(&store);
  ASSERT_TRUE(wal.append("first").is_ok());
  ASSERT_TRUE(wal.append("second").is_ok());
  store.mutable_bytes()[store.bytes().size() - 2] ^= 0x10;  // rot frame 2

  telemetry::MetricsRegistry metrics;
  StoreHealth health("jobmon", &metrics);
  RecoverStats stats;
  auto read = wal.recover(&stats);
  ASSERT_TRUE(read.is_ok());
  EXPECT_TRUE(stats.corrupt);
  EXPECT_EQ(stats.frames_kept, 1u);
  EXPECT_EQ(stats.corrupt_frames, 1u);
  EXPECT_FALSE(stats.clean());

  health.note_recover(stats);
  EXPECT_EQ(health.state(), StoreState::kQuarantined);
  EXPECT_EQ(metrics.counter("wal.jobmon.recover.corrupt_frames").value(), 1u);
}

// --- StoreHealth -----------------------------------------------------------

TEST(StoreHealth, QuarantineOutranksReadOnlyAndFiresCallback) {
  telemetry::MetricsRegistry metrics;
  StoreHealth health("est", &metrics);
  std::vector<StoreState> seen;
  health.set_on_change([&seen](StoreState s) { seen.push_back(s); });

  EXPECT_TRUE(health.writable());
  health.mark_read_only("fsync failed");
  EXPECT_FALSE(health.writable());
  EXPECT_TRUE(health.readable());

  health.quarantine("scrub found corruption");
  EXPECT_FALSE(health.readable());
  health.mark_read_only("late latch");  // lesser state must not demote
  EXPECT_EQ(health.state(), StoreState::kQuarantined);

  health.mark_healthy();
  EXPECT_TRUE(health.writable());
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], StoreState::kReadOnly);
  EXPECT_EQ(seen[1], StoreState::kQuarantined);
  EXPECT_EQ(seen[2], StoreState::kHealthy);
  EXPECT_EQ(health.quarantines(), 1u);
  EXPECT_EQ(metrics.gauge("storage.est.state").value(), 0);
}

// --- Scrubber --------------------------------------------------------------

TEST(Scrubber, DetectsRotQuarantinesAndRefusesPoisonedReads) {
  ManualClock clock;
  telemetry::MetricsRegistry metrics;
  MemoryWalStorage inner;
  FaultyWalStorage faulty(&inner, {});
  Wal wal(&faulty);
  StoreHealth health("jobmon", &metrics);
  jobmon::DBManager db(nullptr, &wal);
  db.attach_health(&health);

  for (int i = 0; i < 5; ++i) {
    const std::string id = "t" + std::to_string(i);
    db.update(id, make_task(id, 0.2 * i), "site-a", from_seconds(i));
  }
  ASSERT_TRUE(db.get("t3").is_ok());

  storage::ScrubberOptions options;
  options.metrics = &metrics;
  Scrubber scrubber(clock, options);
  scrubber.add_target({"jobmon", &faulty, &health});

  auto clean = scrubber.scrub("jobmon");
  ASSERT_TRUE(clean.is_ok());
  EXPECT_EQ(clean.value().verdict, ScrubVerdict::kClean);
  EXPECT_EQ(clean.value().frames, 5u);
  EXPECT_EQ(health.state(), StoreState::kHealthy);

  faulty.rot_byte(inner.bytes().size() / 2);
  auto rotten = scrubber.scrub("jobmon");
  ASSERT_TRUE(rotten.is_ok());
  EXPECT_NE(rotten.value().verdict, ScrubVerdict::kClean);
  EXPECT_EQ(health.state(), StoreState::kQuarantined);

  // A quarantined store refuses reads instead of serving a poisoned view.
  EXPECT_EQ(db.get("t3").status().code(), StatusCode::kUnavailable);
  // And drops mutations (nothing may fork memory from a rotten log).
  db.update("t9", make_task("t9", 0.9), "site-a", from_seconds(99));
  EXPECT_EQ(wal.appends(), 5u);

  EXPECT_GE(metrics.counter("wal.jobmon.scrub.corrupt").value(), 1u);
  EXPECT_GE(metrics.counter("wal.jobmon.scrub.frames").value(), 5u);
}

TEST(Scrubber, TickHonoursCadenceAndByteBudget) {
  ManualClock clock;
  MemoryWalStorage store_a, store_b;
  Wal wal_a(&store_a), wal_b(&store_b);
  ASSERT_TRUE(wal_a.append(std::string(600, 'a')).is_ok());
  ASSERT_TRUE(wal_b.append(std::string(600, 'b')).is_ok());

  storage::ScrubberOptions options;
  options.interval = from_seconds(5);
  options.max_bytes_per_tick = 256;  // one log exhausts the budget
  Scrubber scrubber(clock, options);
  scrubber.add_target({"a", &store_a, nullptr});
  scrubber.add_target({"b", &store_b, nullptr});

  EXPECT_EQ(scrubber.tick(), 1u);  // budget stops after the first
  EXPECT_EQ(scrubber.tick(), 1u);  // the other is still due
  EXPECT_EQ(scrubber.tick(), 0u);  // neither is due again yet
  clock.advance_by(from_seconds(6));
  EXPECT_EQ(scrubber.tick(), 1u);  // oldest-first rotation resumes
  EXPECT_EQ(scrubber.stats().scrubs, 3u);
  EXPECT_EQ(scrubber.stats().corruptions_found, 0u);
}

// --- Degraded-mode gating in the estimator stores --------------------------

TEST(EstimateDatabase, DegradedModeDropsWritesAndRefusesQuarantinedReads) {
  MemoryWalStorage store;
  Wal wal(&store);
  StoreHealth health("est");
  estimators::EstimateDatabase db(&wal);
  db.attach_health(&health);

  db.put("t1", 120.0);
  ASSERT_TRUE(db.get("t1").is_ok());

  health.mark_read_only("latched");
  db.put("t2", 60.0);                      // dropped
  db.erase("t1");                          // dropped
  EXPECT_TRUE(db.get("t1").is_ok());       // reads still fine
  EXPECT_FALSE(db.has("t2"));
  EXPECT_EQ(wal.appends(), 1u);

  health.quarantine("scrub");
  EXPECT_EQ(db.get("t1").status().code(), StatusCode::kUnavailable);

  health.mark_healthy();
  db.put("t2", 60.0);
  EXPECT_TRUE(db.get("t2").is_ok());
}

// --- Supervisor crash-loop quarantine --------------------------------------

TEST(Supervisor, CrashLoopQuarantinesUntilExplicitRelease) {
  ManualClock clock;
  telemetry::MetricsRegistry metrics;
  supervision::SupervisorOptions options;
  options.restart_backoff.initial_backoff_ms = 100;
  options.restart_backoff.backoff_multiplier = 1.0;
  options.crash_loop_restarts = 3;
  options.crash_loop_window = from_seconds(60);
  supervision::Supervisor supervisor(clock, options, nullptr, &metrics);

  int restarts = 0;
  supervisor.manage({"flappy", [&restarts]() {
                       ++restarts;
                       return Status::ok();
                     }});

  // Each restart "succeeds" but the service dies again: a crash loop.
  for (int i = 0; i < 3; ++i) {
    supervisor.on_service_dead("flappy");
    clock.advance_by(from_millis(200));
    EXPECT_EQ(supervisor.tick(), 1u);
  }
  EXPECT_EQ(restarts, 3);

  // The fourth death inside the window trips the breaker at tick time.
  supervisor.on_service_dead("flappy");
  clock.advance_by(from_millis(200));
  EXPECT_EQ(supervisor.tick(), 0u);
  EXPECT_TRUE(supervisor.quarantined("flappy"));
  EXPECT_EQ(restarts, 3);  // the parked recipe did not run
  EXPECT_EQ(supervisor.stats().quarantined, 1u);
  EXPECT_EQ(metrics.counter("supervision.flappy.quarantined").value(), 1u);

  // Death verdicts are ignored while parked.
  supervisor.on_service_dead("flappy");
  EXPECT_FALSE(supervisor.restart_pending("flappy"));

  // release() is the only way back.
  EXPECT_EQ(supervisor.release("missing").code(), StatusCode::kNotFound);
  ASSERT_TRUE(supervisor.release("flappy").is_ok());
  EXPECT_FALSE(supervisor.quarantined("flappy"));
  supervisor.on_service_dead("flappy");
  clock.advance_by(from_millis(200));
  EXPECT_EQ(supervisor.tick(), 1u);
  EXPECT_EQ(restarts, 4);
}

// --- Repair from standby ---------------------------------------------------

struct JobmonPair {
  ManualClock clock;
  telemetry::MetricsRegistry metrics;
  MemoryWalStorage primary_media;
  FaultyWalStorage faulty{&primary_media, {}};
  MemoryWalStorage standby_media;
  StandbyReplica replica{"jobmon", &standby_media};
  LocalShipperTransport transport{&replica};
  LogShipper shipper{"jobmon", {}};
  ReplicatedWalStorage replicated{&faulty, &shipper};
  Wal wal{&replicated};
  StoreHealth health{"jobmon", &metrics};
  jobmon::DBManager db{nullptr, &wal};

  JobmonPair() {
    shipper.add_standby(&transport);
    shipper.set_epoch(1);
    db.attach_health(&health);
  }

  void write(int count, int base = 0) {
    for (int i = 0; i < count; ++i) {
      const std::string id = "t" + std::to_string(base + i);
      db.update(id, make_task(id, 0.1 * (i % 10)), "site-a",
                from_seconds(base + i));
    }
  }
};

TEST(Repair, RestoresByteEqualityFromStandby) {
  JobmonPair rig;
  rig.write(10);
  ASSERT_EQ(rig.standby_media.bytes(), rig.primary_media.bytes());

  // Rot the primary's media and let the scrubber find it.
  storage::ScrubberOptions scrub_options;
  scrub_options.metrics = &rig.metrics;
  Scrubber scrubber(rig.clock, scrub_options);
  scrubber.add_target({"jobmon", &rig.faulty, &rig.health});
  rig.faulty.rot_byte(40, 0x20);
  ASSERT_NE(scrubber.scrub("jobmon").value().verdict, ScrubVerdict::kClean);
  ASSERT_EQ(rig.health.state(), StoreState::kQuarantined);

  storage::RepairOptions repair;
  repair.stream = "jobmon";
  repair.storage = &rig.faulty;
  repair.source = &rig.transport;
  repair.health = &rig.health;
  repair.scrubber = &scrubber;
  repair.replay = [&rig]() { return rig.db.recover(); };
  repair.metrics = &rig.metrics;
  repair.clock = &rig.clock;

  auto report = storage::repair_from_standby(repair);
  ASSERT_TRUE(report.is_ok()) << report.status();
  EXPECT_EQ(report.value().frames, 10u);
  EXPECT_EQ(rig.primary_media.bytes(), rig.standby_media.bytes());
  EXPECT_EQ(rig.health.state(), StoreState::kHealthy);
  EXPECT_TRUE(rig.faulty.writable());

  // The repaired store serves reads and accepts writes again.
  EXPECT_TRUE(rig.db.get("t3").is_ok());
  rig.write(1, 10);
  EXPECT_TRUE(rig.db.get("t10").is_ok());
  EXPECT_EQ(rig.metrics.counter("wal.jobmon.scrub.repaired").value(), 1u);
  EXPECT_EQ(rig.metrics.counter("storage.jobmon.repairs").value(), 1u);
}

TEST(Repair, RefusesDamagedDonorImage) {
  JobmonPair rig;
  rig.write(5);
  // Damage the *standby*: export verification must refuse to donate.
  rig.standby_media.mutable_bytes()[10] ^= 0x40;

  storage::RepairOptions repair;
  repair.stream = "jobmon";
  repair.storage = &rig.faulty;
  repair.source = &rig.transport;
  auto report = storage::repair_from_standby(repair);
  EXPECT_FALSE(report.is_ok());
  // The local log was not touched by the failed repair.
  EXPECT_EQ(Wal::decode(rig.primary_media.bytes()).records.size(), 5u);
}

// Flaky transport: fetch fails N times before delegating — repair must ride
// the supervisor's backoff until the standby is reachable.
class FlakyTransport final : public ha::ShipperTransport {
 public:
  FlakyTransport(ha::ShipperTransport* inner, int failures)
      : inner_(inner), failures_(failures) {}

  Result<ha::ReplicaAck> append(const ha::AppendBatch& b) override {
    return inner_->append(b);
  }
  Result<ha::ReplicaAck> snapshot(const ha::SnapshotInstall& s) override {
    return inner_->snapshot(s);
  }
  Result<ha::ReplicaAck> status(const std::string& s) override {
    return inner_->status(s);
  }
  Result<ha::SnapshotInstall> fetch(const std::string& stream) override {
    if (failures_ > 0) {
      --failures_;
      return unavailable_error("standby unreachable");
    }
    return inner_->fetch(stream);
  }

 private:
  ha::ShipperTransport* inner_;
  int failures_;
};

TEST(Repair, RecipeArmedOnQuarantineRetriesUntilStandbyReachable) {
  JobmonPair rig;
  rig.write(8);

  storage::ScrubberOptions scrub_options;
  Scrubber scrubber(rig.clock, scrub_options);
  scrubber.add_target({"jobmon", &rig.faulty, &rig.health});

  FlakyTransport flaky(&rig.transport, /*failures=*/2);
  storage::RepairOptions repair;
  repair.stream = "jobmon";
  repair.storage = &rig.faulty;
  repair.source = &flaky;
  repair.health = &rig.health;
  repair.scrubber = &scrubber;
  repair.replay = [&rig]() { return rig.db.recover(); };
  repair.clock = &rig.clock;

  supervision::SupervisorOptions sup_options;
  sup_options.restart_backoff.initial_backoff_ms = 500;
  sup_options.restart_backoff.backoff_multiplier = 2.0;
  supervision::Supervisor supervisor(rig.clock, sup_options);
  supervisor.manage(storage::make_repair_recipe("jobmon-repair", repair));
  storage::arm_repair_on_quarantine(rig.health, supervisor, "jobmon-repair");

  // Corruption found -> quarantine -> repair scheduled automatically.
  rig.faulty.rot_byte(25);
  ASSERT_NE(scrubber.scrub("jobmon").value().verdict, ScrubVerdict::kClean);
  EXPECT_TRUE(supervisor.restart_pending("jobmon-repair"));

  // Two attempts fail against the unreachable standby; the third lands.
  std::size_t repaired = 0;
  for (int i = 0; i < 12 && repaired == 0; ++i) {
    rig.clock.advance_by(from_millis(600));
    repaired = supervisor.tick();
  }
  EXPECT_EQ(repaired, 1u);
  EXPECT_EQ(rig.health.state(), StoreState::kHealthy);
  EXPECT_EQ(rig.primary_media.bytes(), rig.standby_media.bytes());
  EXPECT_GE(supervisor.stats().restarts_failed, 2u);
}

// --- Byte-flip property sweep ----------------------------------------------

// Every single-byte flip over a small WAL (snapshot + record frames) must be
// detected: decode never crashes, never yields a record that was not in the
// golden log, and the scrub verdict is never clean. Repair then restores
// byte-equality with the standby oracle.
TEST(ByteFlipProperty, EveryFlipDetectedRepairRestoresOracle) {
  // Golden log: 2 records, a snapshot, 2 more records — both frame types.
  MemoryWalStorage golden_store;
  Wal golden_wal(&golden_store);
  jobmon::DBManager golden_db(nullptr, &golden_wal);
  golden_db.update("t0", make_task("t0", 0.1), "site-a", from_seconds(0));
  golden_db.update("t1", make_task("t1", 0.2), "site-a", from_seconds(1));
  ASSERT_TRUE(golden_db.save_snapshot().is_ok());
  golden_db.update("t2", make_task("t2", 0.3), "site-b", from_seconds(2));
  golden_db.update("t3", make_task("t3", 0.4), "site-b", from_seconds(3));
  const std::string golden = golden_store.bytes();
  const WalReadResult golden_decoded = Wal::decode(golden);
  ASSERT_FALSE(golden_decoded.corrupt);
  ASSERT_EQ(golden_decoded.records.size(), 3u);  // snapshot + 2 records

  ManualClock clock;
  for (std::size_t pos = 0; pos < golden.size(); ++pos) {
    std::string flipped = golden;
    flipped[pos] ^= 0x01;

    // Decode never crashes and never fabricates a frame: every surviving
    // record is byte-identical to a golden record (CRC32 catches any
    // single-bit error inside a frame).
    const WalReadResult decoded = Wal::decode(flipped);
    EXPECT_TRUE(decoded.corrupt || decoded.torn_tail)
        << "flip at " << pos << " went undetected";
    ASSERT_LE(decoded.records.size(), golden_decoded.records.size());
    for (std::size_t i = 0; i < decoded.records.size(); ++i) {
      EXPECT_EQ(decoded.records[i].payload, golden_decoded.records[i].payload)
          << "poisoned payload surfaced for flip at " << pos;
    }

    // The scrubber sees the same damage and quarantines.
    MemoryWalStorage damaged;
    ASSERT_TRUE(damaged.replace(flipped).is_ok());
    StoreHealth health("flip");
    Scrubber scrubber(clock, {});
    scrubber.add_target({"flip", &damaged, &health});
    auto report = scrubber.scrub("flip");
    ASSERT_TRUE(report.is_ok());
    EXPECT_NE(report.value().verdict, ScrubVerdict::kClean);
    EXPECT_EQ(health.state(), StoreState::kQuarantined);

    // Repair from a standby holding the golden log restores byte-equality.
    StandbyReplica oracle("flip", &golden_store);
    LocalShipperTransport donor(&oracle);
    storage::RepairOptions repair;
    repair.stream = "flip";
    repair.storage = &damaged;
    repair.source = &donor;
    repair.health = &health;
    auto fixed = storage::repair_from_standby(repair);
    ASSERT_TRUE(fixed.is_ok()) << "flip at " << pos << ": " << fixed.status();
    EXPECT_EQ(damaged.bytes(), golden);
    EXPECT_EQ(health.state(), StoreState::kHealthy);
  }
}

// --- End-to-end seeded chaos -----------------------------------------------

// A live jobmon primary with one sync standby, under a seeded schedule of
// torn writes, fsync failures and bit rot. The scrubber detects every
// injected corruption, the store quarantines instead of serving poisoned
// reads, repair-from-standby (armed on quarantine, driven by the
// supervisor) restores byte-equal state, and no acknowledged write is lost.
TEST(StorageChaos, SeededFaultScheduleLosesNoAckedWrite) {
  const std::uint64_t kSeed = 20260808;
  JobmonPair rig;

  storage::ScrubberOptions scrub_options;
  scrub_options.interval = from_seconds(1);
  scrub_options.metrics = &rig.metrics;
  Scrubber scrubber(rig.clock, scrub_options);
  scrubber.add_target({"jobmon", &rig.faulty, &rig.health});

  storage::RepairOptions repair;
  repair.stream = "jobmon";
  repair.storage = &rig.faulty;
  repair.source = &rig.transport;
  repair.health = &rig.health;
  repair.scrubber = &scrubber;
  repair.replay = [&rig]() { return rig.db.recover(); };
  repair.metrics = &rig.metrics;
  repair.clock = &rig.clock;

  supervision::SupervisorOptions sup_options;
  sup_options.restart_backoff.initial_backoff_ms = 200;
  supervision::Supervisor supervisor(rig.clock, sup_options);
  supervisor.manage(storage::make_repair_recipe("jobmon-repair", repair));
  storage::arm_repair_on_quarantine(rig.health, supervisor, "jobmon-repair");

  // Oracle: the last acknowledged state per task. An update is acked iff
  // its WAL append succeeded (Wal::appends() advances only on success; in
  // sync replication success implies the standby holds the frame).
  std::map<std::string, jobmon::JobRecord> acked;
  Rng chaos(kSeed);
  std::uint64_t injected_rots = 0;

  for (int step = 0; step < 400; ++step) {
    // Scripted disk mischief, seeded: rot a byte at rest every so often,
    // latch the write path through an injected fault occasionally.
    if (chaos.bernoulli(0.04) && !rig.primary_media.bytes().empty()) {
      rig.faulty.rot_byte(static_cast<std::size_t>(chaos.uniform_int(
          0, static_cast<std::int64_t>(rig.primary_media.bytes().size()) - 1)));
      ++injected_rots;
    }
    if (chaos.bernoulli(0.03)) rig.faulty.force_latch();

    const std::string id = "t" + std::to_string(step % 25);
    const exec::TaskInfo info = make_task(id, 0.01 * (step % 100));
    const std::uint64_t before = rig.wal.appends();
    rig.db.update(id, info, "site-a", from_seconds(step));
    if (rig.wal.appends() > before) {
      jobmon::JobRecord rec;
      rec.info = info;
      rec.site = "site-a";
      rec.updated_at = from_seconds(step);
      acked[id] = rec;
    }

    // A latched-but-not-quarantined store still needs healing: surface the
    // latch through health so the repair recipe covers it too.
    if (!rig.faulty.writable() && rig.health.state() == StoreState::kHealthy) {
      rig.health.mark_read_only("storage latched");
      rig.health.quarantine("latched media needs standby resync");
    }

    // Control plane: scrub cadence + supervised repair, on virtual time.
    rig.clock.advance_by(from_millis(300));
    scrubber.tick();
    supervisor.tick();
  }

  // Drain: let any in-flight repair land.
  for (int i = 0; i < 20 && rig.health.state() != StoreState::kHealthy; ++i) {
    rig.clock.advance_by(from_millis(500));
    scrubber.tick();
    supervisor.tick();
  }
  ASSERT_EQ(rig.health.state(), StoreState::kHealthy);
  EXPECT_GT(injected_rots, 0u);
  EXPECT_GE(scrubber.stats().corruptions_found, 1u);
  EXPECT_GE(rig.metrics.counter("storage.jobmon.repairs").value(), 1u);

  // Byte-equality with the standby after the dust settles.
  EXPECT_EQ(rig.primary_media.bytes(), rig.standby_media.bytes());

  // Zero acked writes lost: replay the primary's log into a fresh store and
  // compare against the oracle. (The standby can hold a superset of acked
  // frames — an append that tore locally after shipping never acked — but
  // every *acked* update must be present with its exact final value.)
  Wal verify_wal(&rig.primary_media);
  jobmon::DBManager verify(nullptr, &verify_wal);
  ASSERT_TRUE(verify.recover().is_ok());
  for (const auto& [id, rec] : acked) {
    auto got = verify.get(id);
    ASSERT_TRUE(got.is_ok()) << "acked write lost for " << id;
    EXPECT_EQ(jobmon::encode_job_record(id, got.value()),
              jobmon::encode_job_record(id, rec))
        << "acked write diverged for " << id;
  }
}

// --- Live TCP repair over ha.fetch -----------------------------------------

TEST(StorageChaos, RepairPullsImageFromStandbyOverLiveTcp) {
  WallClock wall;

  // Standby host serves ha.* (including ha.fetch) over real TCP.
  MemoryWalStorage standby_media;
  StandbyReplica replica("jobmon", &standby_media);
  ha::StandbySet standbys;
  standbys.add(&replica);
  clarens::HostOptions host_options;
  host_options.require_auth = false;
  clarens::ClarensHost standby_host("standby", wall, host_options);
  ha::register_ha_methods(standby_host, standbys);
  auto port = standby_host.serve(0);
  ASSERT_TRUE(port.is_ok());

  rpc::RpcClient client("127.0.0.1", port.value());
  ha::RpcShipperTransport transport(&client, /*deadline_ms=*/5000);

  // Primary replicates over the wire, then its disk rots.
  MemoryWalStorage primary_media;
  FaultyWalStorage faulty(&primary_media, {});
  LogShipper shipper("jobmon", {});
  shipper.add_standby(&transport);
  shipper.set_epoch(1);
  ReplicatedWalStorage replicated(&faulty, &shipper);
  Wal wal(&replicated);
  jobmon::DBManager db(nullptr, &wal);
  StoreHealth health("jobmon");
  db.attach_health(&health);
  for (int i = 0; i < 12; ++i) {
    const std::string id = "t" + std::to_string(i);
    db.update(id, make_task(id, 0.05 * i), "site-a", from_seconds(i));
  }
  ASSERT_EQ(standby_media.bytes(), primary_media.bytes());

  faulty.rot_byte(primary_media.bytes().size() / 3, 0x08);
  ManualClock clock;
  Scrubber scrubber(clock, {});
  scrubber.add_target({"jobmon", &faulty, &health});
  ASSERT_NE(scrubber.scrub("jobmon").value().verdict, ScrubVerdict::kClean);
  ASSERT_EQ(health.state(), StoreState::kQuarantined);

  // Repair pulls the verified image back over ha.fetch (hex + CRC on the
  // wire) and swaps it in.
  storage::RepairOptions repair;
  repair.stream = "jobmon";
  repair.storage = &faulty;
  repair.source = &transport;
  repair.health = &health;
  repair.replay = [&db]() { return db.recover(); };
  auto report = storage::repair_from_standby(repair);
  ASSERT_TRUE(report.is_ok()) << report.status();
  EXPECT_EQ(report.value().frames, 12u);
  EXPECT_EQ(primary_media.bytes(), standby_media.bytes());
  EXPECT_EQ(health.state(), StoreState::kHealthy);
  EXPECT_TRUE(db.get("t7").is_ok());

  standby_host.stop();
}

// --- Steering journal over a Wal -------------------------------------------

TEST(WalJournalSink, RoundTripsLinesAndDropsTornTail) {
  MemoryWalStorage store;
  Wal wal(&store);
  steering::WalJournalSink sink(&wal);

  steering::JournalRecord watch;
  watch.kind = "watch";
  watch.fields["task"] = "t1";
  steering::JournalRecord place;
  place.kind = "place";
  place.fields["task"] = "t1";
  place.fields["site"] = "site-a";
  ASSERT_TRUE(sink.append(watch.to_line()).is_ok());
  ASSERT_TRUE(sink.append(place.to_line()).is_ok());

  auto lines = steering::journal_lines_from_wal(wal);
  ASSERT_TRUE(lines.is_ok());
  ASSERT_EQ(lines.value().size(), 2u);
  EXPECT_EQ(lines.value()[0], watch.to_line());
  auto parsed = steering::parse_journal(lines.value());
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(parsed.value()[1].field("site"), "site-a");

  // Snapshot compaction folds into the line stream transparently.
  ASSERT_TRUE(wal.write_snapshot(watch.to_line() + "\n" + place.to_line() + "\n")
                  .is_ok());
  steering::JournalRecord done;
  done.kind = "done";
  done.fields["task"] = "t1";
  ASSERT_TRUE(sink.append(done.to_line()).is_ok());
  auto folded = steering::journal_lines_from_wal(wal);
  ASSERT_TRUE(folded.is_ok());
  ASSERT_EQ(folded.value().size(), 3u);
  EXPECT_EQ(folded.value()[2], done.to_line());

  // A torn final frame (crash artifact) is dropped, CRC framing intact.
  store.mutable_bytes().resize(store.bytes().size() - 2);
  auto torn = steering::journal_lines_from_wal(wal);
  ASSERT_TRUE(torn.is_ok());
  EXPECT_EQ(torn.value().size(), 2u);
}

}  // namespace
}  // namespace gae
