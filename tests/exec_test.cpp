#include "exec/execution_service.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/load.h"

namespace gae::exec {
namespace {

TaskSpec make_spec(const std::string& id, double work, int priority = 0) {
  TaskSpec spec;
  spec.id = id;
  spec.job_id = "job-1";
  spec.owner = "alice";
  spec.executable = "primes";
  spec.work_seconds = work;
  spec.priority = priority;
  return spec;
}

class ExecTest : public ::testing::Test {
 protected:
  ExecTest() {
    grid_.add_site("site-a").add_node("a0", 1.0, nullptr);
    grid_.set_default_link({100e6, 0});
  }

  sim::Simulation sim_;
  sim::Grid grid_;
};

TEST_F(ExecTest, RunsToCompletionOnFreeNode) {
  ExecutionService exec(sim_, grid_, "site-a");
  ASSERT_TRUE(exec.submit(make_spec("t1", 100.0)).is_ok());
  sim_.run();
  auto info = exec.query("t1");
  ASSERT_TRUE(info.is_ok());
  EXPECT_EQ(info.value().state, TaskState::kCompleted);
  EXPECT_DOUBLE_EQ(info.value().progress, 1.0);
  EXPECT_DOUBLE_EQ(info.value().cpu_seconds_used, 100.0);
  // On a free speed-1 node, wall time == work.
  EXPECT_EQ(info.value().completion_time - info.value().start_time, from_seconds(100.0));
}

TEST_F(ExecTest, SubmitValidation) {
  ExecutionService exec(sim_, grid_, "site-a");
  EXPECT_EQ(exec.submit(make_spec("", 10)).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(exec.submit(make_spec("t", 0)).code(), StatusCode::kInvalidArgument);
  ASSERT_TRUE(exec.submit(make_spec("t", 10)).is_ok());
  EXPECT_EQ(exec.submit(make_spec("t", 10)).code(), StatusCode::kAlreadyExists);
}

TEST_F(ExecTest, ResubmitAfterTerminalAllowed) {
  ExecutionService exec(sim_, grid_, "site-a");
  ASSERT_TRUE(exec.submit(make_spec("t", 10)).is_ok());
  ASSERT_TRUE(exec.kill("t").is_ok());
  EXPECT_TRUE(exec.submit(make_spec("t", 10)).is_ok());
}

TEST_F(ExecTest, ConstantLoadSlowsProgress) {
  sim::Grid grid;
  grid.add_site("loaded").add_node("n0", 1.0, std::make_shared<sim::ConstantLoad>(0.5));
  ExecutionService exec(sim_, grid, "loaded");
  ASSERT_TRUE(exec.submit(make_spec("t1", 100.0)).is_ok());
  sim_.run();
  auto info = exec.query("t1").value();
  EXPECT_EQ(info.state, TaskState::kCompleted);
  // 100 CPU-seconds at 50% effective rate takes 200 wall seconds.
  EXPECT_EQ(info.completion_time - info.start_time, from_seconds(200.0));
}

TEST_F(ExecTest, StepLoadIntegratesExactly) {
  sim::Grid grid;
  auto profile = std::make_shared<sim::StepLoad>(
      0.0, std::vector<sim::StepLoad::Step>{{from_seconds(50), 0.5}});
  grid.add_site("s").add_node("n0", 1.0, profile);
  ExecutionService exec(sim_, grid, "s");
  ASSERT_TRUE(exec.submit(make_spec("t1", 100.0)).is_ok());
  sim_.run();
  // 50 s at rate 1.0 (50 done) + 50 remaining at rate 0.5 (100 s) = 150 s.
  auto info = exec.query("t1").value();
  EXPECT_EQ(info.completion_time, from_seconds(150.0));
}

TEST_F(ExecTest, MidRunQueryShowsPartialCpu) {
  ExecutionService exec(sim_, grid_, "site-a");
  ASSERT_TRUE(exec.submit(make_spec("t1", 100.0)).is_ok());
  sim_.run_until(from_seconds(40));
  auto info = exec.query("t1").value();
  EXPECT_EQ(info.state, TaskState::kRunning);
  EXPECT_NEAR(info.cpu_seconds_used, 40.0, 1e-6);
  EXPECT_NEAR(info.progress, 0.4, 1e-6);
}

TEST_F(ExecTest, QueueTimeExcludedFromCpuAccounting) {
  ExecutionService exec(sim_, grid_, "site-a");
  ASSERT_TRUE(exec.submit(make_spec("first", 100.0)).is_ok());
  ASSERT_TRUE(exec.submit(make_spec("second", 50.0)).is_ok());
  sim_.run_until(from_seconds(120));  // second has been running 20 s
  auto info = exec.query("second").value();
  EXPECT_EQ(info.state, TaskState::kRunning);
  // Condor-style wall-clock: 20 accrued, not 120.
  EXPECT_NEAR(info.cpu_seconds_used, 20.0, 1e-6);
  EXPECT_EQ(info.start_time, from_seconds(100));
  EXPECT_EQ(info.submit_time, 0);
}

TEST_F(ExecTest, PriorityOrdersQueue) {
  ExecutionService exec(sim_, grid_, "site-a");
  ASSERT_TRUE(exec.submit(make_spec("running", 100.0)).is_ok());
  ASSERT_TRUE(exec.submit(make_spec("low", 10.0, 0)).is_ok());
  ASSERT_TRUE(exec.submit(make_spec("high", 10.0, 5)).is_ok());
  auto queued = exec.queued_tasks();
  ASSERT_EQ(queued.size(), 2u);
  EXPECT_EQ(queued[0].spec.id, "high");
  EXPECT_EQ(queued[0].queue_position, 0);
  EXPECT_EQ(queued[1].spec.id, "low");

  sim_.run();
  // high must have started (and finished) before low.
  EXPECT_LT(exec.query("high").value().start_time, exec.query("low").value().start_time);
}

TEST_F(ExecTest, FifoWithinPriority) {
  ExecutionService exec(sim_, grid_, "site-a");
  ASSERT_TRUE(exec.submit(make_spec("running", 50.0)).is_ok());
  ASSERT_TRUE(exec.submit(make_spec("q1", 10.0, 1)).is_ok());
  ASSERT_TRUE(exec.submit(make_spec("q2", 10.0, 1)).is_ok());
  auto queued = exec.queued_tasks();
  ASSERT_EQ(queued.size(), 2u);
  EXPECT_EQ(queued[0].spec.id, "q1");
  EXPECT_EQ(queued[1].spec.id, "q2");
}

TEST_F(ExecTest, SetPriorityRequeues) {
  ExecutionService exec(sim_, grid_, "site-a");
  ASSERT_TRUE(exec.submit(make_spec("running", 50.0)).is_ok());
  ASSERT_TRUE(exec.submit(make_spec("a", 10.0, 1)).is_ok());
  ASSERT_TRUE(exec.submit(make_spec("b", 10.0, 1)).is_ok());
  ASSERT_TRUE(exec.set_priority("b", 9).is_ok());
  EXPECT_EQ(exec.queued_tasks()[0].spec.id, "b");
  EXPECT_EQ(exec.query("b").value().spec.priority, 9);
}

TEST_F(ExecTest, SuspendResumePreservesCpu) {
  ExecutionService exec(sim_, grid_, "site-a");
  ASSERT_TRUE(exec.submit(make_spec("t1", 100.0)).is_ok());
  sim_.run_until(from_seconds(30));
  ASSERT_TRUE(exec.suspend("t1").is_ok());
  auto info = exec.query("t1").value();
  EXPECT_EQ(info.state, TaskState::kSuspended);
  EXPECT_NEAR(info.cpu_seconds_used, 30.0, 1e-6);
  EXPECT_EQ(exec.free_nodes(), 1u);  // node released

  sim_.run_until(from_seconds(100));  // suspension accrues nothing
  EXPECT_NEAR(exec.query("t1").value().cpu_seconds_used, 30.0, 1e-6);

  ASSERT_TRUE(exec.resume("t1").is_ok());
  sim_.run();
  info = exec.query("t1").value();
  EXPECT_EQ(info.state, TaskState::kCompleted);
  // Resumed at t=100 with 70 s remaining -> completes at 170.
  EXPECT_EQ(info.completion_time, from_seconds(170.0));
}

TEST_F(ExecTest, SuspendQueuedTaskLeavesQueue) {
  ExecutionService exec(sim_, grid_, "site-a");
  ASSERT_TRUE(exec.submit(make_spec("running", 100.0)).is_ok());
  ASSERT_TRUE(exec.submit(make_spec("waiting", 10.0)).is_ok());
  ASSERT_TRUE(exec.suspend("waiting").is_ok());
  EXPECT_TRUE(exec.queued_tasks().empty());
  ASSERT_TRUE(exec.resume("waiting").is_ok());
  EXPECT_EQ(exec.queued_tasks().size(), 1u);
}

TEST_F(ExecTest, ResumeRequiresSuspended) {
  ExecutionService exec(sim_, grid_, "site-a");
  ASSERT_TRUE(exec.submit(make_spec("t1", 10.0)).is_ok());
  EXPECT_EQ(exec.resume("t1").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(exec.resume("nope").code(), StatusCode::kNotFound);
}

TEST_F(ExecTest, KillReleasesNodeAndIsTerminal) {
  ExecutionService exec(sim_, grid_, "site-a");
  ASSERT_TRUE(exec.submit(make_spec("t1", 100.0)).is_ok());
  ASSERT_TRUE(exec.submit(make_spec("t2", 10.0)).is_ok());
  sim_.run_until(from_seconds(10));
  ASSERT_TRUE(exec.kill("t1", "user said so").is_ok());
  auto info = exec.query("t1").value();
  EXPECT_EQ(info.state, TaskState::kKilled);
  EXPECT_EQ(info.detail, "user said so");
  EXPECT_EQ(exec.kill("t1").code(), StatusCode::kFailedPrecondition);

  sim_.run();
  // t2 started right after the kill: 10 + 10 = 20.
  EXPECT_EQ(exec.query("t2").value().completion_time, from_seconds(20.0));
}

TEST_F(ExecTest, CheckpointReflectsProgress) {
  auto spec = make_spec("t1", 100.0);
  spec.checkpointable = true;
  ExecutionService exec(sim_, grid_, "site-a");
  ASSERT_TRUE(exec.submit(spec).is_ok());
  sim_.run_until(from_seconds(25));
  auto cp = exec.checkpoint("t1");
  ASSERT_TRUE(cp.is_ok());
  EXPECT_NEAR(cp.value(), 25.0, 1e-6);
}

TEST_F(ExecTest, CheckpointRequiresCheckpointable) {
  ExecutionService exec(sim_, grid_, "site-a");
  ASSERT_TRUE(exec.submit(make_spec("t1", 100.0)).is_ok());
  EXPECT_EQ(exec.checkpoint("t1").status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(ExecTest, InitialCpuSecondsShortensRun) {
  ExecutionService exec(sim_, grid_, "site-a");
  ASSERT_TRUE(exec.submit(make_spec("t1", 100.0), /*initial=*/60.0).is_ok());
  sim_.run();
  EXPECT_EQ(exec.query("t1").value().completion_time, from_seconds(40.0));
}

TEST_F(ExecTest, StagingDelaysComputeAndCountsBytes) {
  grid_.add_site("remote").store_file("data.root", 500'000'000);  // 5 s at 100 MB/s
  auto spec = make_spec("t1", 100.0);
  spec.input_files = {"data.root"};
  ExecutionService exec(sim_, grid_, "site-a");
  ASSERT_TRUE(exec.submit(spec).is_ok());

  sim_.run_until(from_seconds(2));
  EXPECT_EQ(exec.query("t1").value().state, TaskState::kStaging);
  EXPECT_NEAR(exec.query("t1").value().cpu_seconds_used, 0.0, 1e-9);

  sim_.run();
  auto info = exec.query("t1").value();
  EXPECT_EQ(info.state, TaskState::kCompleted);
  EXPECT_EQ(info.completion_time, from_seconds(105.0));
  EXPECT_EQ(info.input_bytes_transferred, 500'000'000u);
}

TEST_F(ExecTest, LocalInputNeedsNoStaging) {
  grid_.site("site-a").store_file("data.root", 500'000'000);
  auto spec = make_spec("t1", 10.0);
  spec.input_files = {"data.root"};
  ExecutionService exec(sim_, grid_, "site-a");
  ASSERT_TRUE(exec.submit(spec).is_ok());
  sim_.run();
  auto info = exec.query("t1").value();
  EXPECT_EQ(info.completion_time, from_seconds(10.0));
  EXPECT_EQ(info.input_bytes_transferred, 0u);
}

TEST_F(ExecTest, MissingInputFailsTask) {
  auto spec = make_spec("t1", 10.0);
  spec.input_files = {"nowhere.root"};
  ExecutionService exec(sim_, grid_, "site-a");
  ASSERT_TRUE(exec.submit(spec).is_ok());
  sim_.run();
  auto info = exec.query("t1").value();
  EXPECT_EQ(info.state, TaskState::kFailed);
  EXPECT_NE(info.detail.find("missing input"), std::string::npos);
}

TEST_F(ExecTest, OutputRegisteredOnCompletion) {
  auto spec = make_spec("t1", 10.0);
  spec.output_bytes = 42'000'000;
  ExecutionService exec(sim_, grid_, "site-a");
  ASSERT_TRUE(exec.submit(spec).is_ok());
  sim_.run();
  EXPECT_EQ(exec.query("t1").value().output_bytes_written, 42'000'000u);
  EXPECT_TRUE(grid_.site("site-a").has_file("t1.out"));
  EXPECT_EQ(exec.local_output_files("t1"), std::vector<std::string>{"t1.out"});
}

TEST_F(ExecTest, PartialOutputOnFailure) {
  auto spec = make_spec("t1", 100.0);
  spec.output_bytes = 100'000;
  ExecutionService exec(sim_, grid_, "site-a");
  ASSERT_TRUE(exec.submit(spec).is_ok());
  sim_.run_until(from_seconds(50));
  ASSERT_TRUE(exec.inject_task_failure("t1", "disk error").is_ok());
  auto info = exec.query("t1").value();
  EXPECT_EQ(info.state, TaskState::kFailed);
  EXPECT_NEAR(static_cast<double>(info.output_bytes_written), 50'000.0, 1000.0);
  EXPECT_FALSE(exec.local_output_files("t1").empty());
}

TEST_F(ExecTest, ServiceFailureKillsEverythingAndBlocksQueries) {
  ExecutionService exec(sim_, grid_, "site-a");
  ASSERT_TRUE(exec.submit(make_spec("t1", 100.0)).is_ok());
  ASSERT_TRUE(exec.submit(make_spec("t2", 10.0)).is_ok());
  sim_.run_until(from_seconds(5));

  std::vector<std::string> failed;
  exec.subscribe([&](const TaskEvent& ev) {
    if (ev.new_state == TaskState::kFailed) failed.push_back(ev.task_id);
  });
  exec.fail_service("power cut");
  EXPECT_FALSE(exec.is_up());
  EXPECT_EQ(failed.size(), 2u);
  EXPECT_EQ(exec.query("t1").status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(exec.submit(make_spec("t3", 1)).code(), StatusCode::kUnavailable);
  EXPECT_EQ(exec.free_nodes(), 0u);

  exec.recover_service();
  EXPECT_TRUE(exec.is_up());
  EXPECT_EQ(exec.query("t1").value().state, TaskState::kFailed);
  EXPECT_TRUE(exec.submit(make_spec("t3", 1)).is_ok());
}

TEST_F(ExecTest, RandomFailuresEventuallyKill) {
  ExecOptions opts;
  opts.mean_time_between_failures = 50.0;
  opts.failure_seed = 3;
  ExecutionService exec(sim_, grid_, "site-a", opts);
  // A very long task will almost surely hit a failure with MTBF 50 s.
  ASSERT_TRUE(exec.submit(make_spec("t1", 1e6)).is_ok());
  sim_.run();
  auto info = exec.query("t1").value();
  EXPECT_EQ(info.state, TaskState::kFailed);
  EXPECT_EQ(info.detail, "node failure");
  EXPECT_GT(info.cpu_seconds_used, 0.0);
  EXPECT_LT(info.cpu_seconds_used, 1e6);
}

TEST_F(ExecTest, EventsEmittedInLifecycleOrder) {
  ExecutionService exec(sim_, grid_, "site-a");
  std::vector<TaskState> states;
  const int token = exec.subscribe([&](const TaskEvent& ev) {
    if (ev.task_id == "t1") states.push_back(ev.new_state);
  });
  ASSERT_TRUE(exec.submit(make_spec("t1", 10.0)).is_ok());
  sim_.run();
  ASSERT_EQ(states.size(), 4u);
  EXPECT_EQ(states[0], TaskState::kQueued);
  EXPECT_EQ(states[1], TaskState::kStaging);
  EXPECT_EQ(states[2], TaskState::kRunning);
  EXPECT_EQ(states[3], TaskState::kCompleted);

  exec.unsubscribe(token);
  states.clear();
  ASSERT_TRUE(exec.submit(make_spec("t2", 1.0)).is_ok());
  sim_.run();
  EXPECT_TRUE(states.empty());
}

TEST_F(ExecTest, FastestFreeNodePreferred) {
  sim::Grid grid;
  auto& site = grid.add_site("s");
  site.add_node("slow", 1.0, nullptr);
  site.add_node("fast", 2.0, nullptr);
  ExecutionService exec(sim_, grid, "s");
  ASSERT_TRUE(exec.submit(make_spec("t1", 100.0)).is_ok());
  sim_.run();
  auto info = exec.query("t1").value();
  EXPECT_EQ(info.node, "fast");
  EXPECT_EQ(info.completion_time, from_seconds(50.0));  // 2x speed
}

TEST_F(ExecTest, FlockingMovesQueuedTaskToFreePeer) {
  grid_.add_site("site-b").add_node("b0", 1.0, nullptr);
  ExecutionService exec_a(sim_, grid_, "site-a");
  ExecutionService exec_b(sim_, grid_, "site-b");
  exec_a.flock_with(&exec_b);

  ASSERT_TRUE(exec_a.submit(make_spec("busy", 100.0)).is_ok());
  ASSERT_TRUE(exec_a.submit(make_spec("flocker", 10.0)).is_ok());
  sim_.run();

  // flocker moved to site-b and completed there without waiting for busy.
  EXPECT_FALSE(exec_a.query("flocker").is_ok());
  auto info = exec_b.query("flocker");
  ASSERT_TRUE(info.is_ok());
  EXPECT_EQ(info.value().state, TaskState::kCompleted);
  EXPECT_EQ(info.value().completion_time, from_seconds(10.0));
}

TEST_F(ExecTest, FlockingCarriesCheckpointProgress) {
  grid_.add_site("site-b").add_node("b0", 1.0, nullptr);
  ExecutionService exec_a(sim_, grid_, "site-a");
  ExecutionService exec_b(sim_, grid_, "site-b");
  exec_a.flock_with(&exec_b);

  ASSERT_TRUE(exec_a.submit(make_spec("busy", 1000.0)).is_ok());
  auto spec = make_spec("ckpt", 100.0);
  spec.checkpointable = true;
  // Simulate prior progress carried into the submission.
  ASSERT_TRUE(exec_a.submit(spec, 40.0).is_ok());
  sim_.run_until(from_seconds(70));
  auto info = exec_b.query("ckpt");
  ASSERT_TRUE(info.is_ok());
  // 60 remaining when flocked at t=0 -> completed at 60.
  EXPECT_EQ(info.value().state, TaskState::kCompleted);
  EXPECT_EQ(info.value().completion_time, from_seconds(60.0));
}

TEST_F(ExecTest, NoFlockWhenPeerBusy) {
  grid_.add_site("site-b").add_node("b0", 1.0, nullptr);
  ExecutionService exec_a(sim_, grid_, "site-a");
  ExecutionService exec_b(sim_, grid_, "site-b");
  exec_a.flock_with(&exec_b);
  ASSERT_TRUE(exec_b.submit(make_spec("busy-b", 100.0)).is_ok());
  ASSERT_TRUE(exec_a.submit(make_spec("busy-a", 100.0)).is_ok());
  ASSERT_TRUE(exec_a.submit(make_spec("waiter", 10.0)).is_ok());
  sim_.run_until(from_seconds(1));
  // Peer busy: waiter stays queued at a.
  EXPECT_TRUE(exec_a.query("waiter").is_ok());
  EXPECT_EQ(exec_a.query("waiter").value().state, TaskState::kQueued);
}

TEST_F(ExecTest, ListTasksIncludesTerminal) {
  ExecutionService exec(sim_, grid_, "site-a");
  ASSERT_TRUE(exec.submit(make_spec("t1", 1.0)).is_ok());
  ASSERT_TRUE(exec.submit(make_spec("t2", 1.0)).is_ok());
  sim_.run();
  EXPECT_EQ(exec.list_tasks().size(), 2u);
}

}  // namespace
}  // namespace gae::exec
