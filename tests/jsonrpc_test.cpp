#include "rpc/jsonrpc.h"

#include <gtest/gtest.h>

namespace gae::rpc {
namespace {

TEST(Json, EncodePrimitives) {
  EXPECT_EQ(json::encode(Value()), "null");
  EXPECT_EQ(json::encode(Value(true)), "true");
  EXPECT_EQ(json::encode(Value(false)), "false");
  EXPECT_EQ(json::encode(Value(42)), "42");
  EXPECT_EQ(json::encode(Value(-1.5)), "-1.5");
  EXPECT_EQ(json::encode(Value("hi")), "\"hi\"");
}

TEST(Json, DoubleKeepsDoubleness) {
  // 2.0 must not come back as int 2 after a round trip.
  const std::string text = json::encode(Value(2.0));
  auto v = json::decode(text);
  ASSERT_TRUE(v.is_ok());
  EXPECT_TRUE(v.value().is_double());
}

TEST(Json, EncodeEscapes) {
  EXPECT_EQ(json::encode(Value("a\"b\\c\nd\te")), R"("a\"b\\c\nd\te")");
  EXPECT_EQ(json::encode(Value(std::string("\x01"))), "\"\\u0001\"");
}

TEST(Json, DecodePrimitives) {
  EXPECT_TRUE(json::decode("null").value().is_nil());
  EXPECT_EQ(json::decode("17").value().as_int(), 17);
  EXPECT_DOUBLE_EQ(json::decode("2.5e2").value().as_double(), 250.0);
  EXPECT_EQ(json::decode("\"x\"").value().as_string(), "x");
  EXPECT_TRUE(json::decode("true").value().as_bool());
}

TEST(Json, DecodeNested) {
  auto v = json::decode(R"({"a":[1,2,{"b":null}],"c":"d"})");
  ASSERT_TRUE(v.is_ok());
  EXPECT_EQ(v.value().at("a").as_array()[1].as_int(), 2);
  EXPECT_TRUE(v.value().at("a").as_array()[2].at("b").is_nil());
  EXPECT_EQ(v.value().get_string("c", ""), "d");
}

TEST(Json, DecodeUnicodeEscapes) {
  auto v = json::decode(R"("Aé")");
  ASSERT_TRUE(v.is_ok());
  EXPECT_EQ(v.value().as_string(), "A\xC3\xA9");  // 'A' + e-acute in UTF-8
  EXPECT_EQ(json::decode(R"("\u0041")").value().as_string(), "A");
  EXPECT_EQ(json::decode(R"("\u00e9")").value().as_string(), "\xC3\xA9");
  EXPECT_EQ(json::decode(R"("\u20AC")").value().as_string(), "\xE2\x82\xAC");  // €
}

TEST(Json, MalformedUnicodeEscapesRejected) {
  // Regression: the hex quad used to go through stoul, which accepts a
  // partial parse — "\u12g3" decoded as 0x12 and "\u 041" as whitespace-
  // prefixed garbage. Every escape must be exactly four hex digits.
  EXPECT_FALSE(json::decode(R"("\u12g3")").is_ok());
  EXPECT_FALSE(json::decode(R"("\uzzzz")").is_ok());
  EXPECT_FALSE(json::decode(R"("\u 041")").is_ok());
  EXPECT_FALSE(json::decode(R"("\u+041")").is_ok());
  EXPECT_FALSE(json::decode(R"("\u12")").is_ok());   // truncated quad
  EXPECT_FALSE(json::decode(R"("\u")").is_ok());     // nothing at all
  EXPECT_FALSE(json::decode("\"\\u00\"").is_ok());   // closing quote inside quad
}

TEST(Json, WhitespaceTolerated) {
  auto v = json::decode(" { \"a\" : [ 1 , 2 ] } ");
  ASSERT_TRUE(v.is_ok());
  EXPECT_EQ(v.value().at("a").as_array().size(), 2u);
}

TEST(Json, MalformedRejected) {
  EXPECT_FALSE(json::decode("").is_ok());
  EXPECT_FALSE(json::decode("{").is_ok());
  EXPECT_FALSE(json::decode("[1,]").is_ok());
  EXPECT_FALSE(json::decode("{\"a\":}").is_ok());
  EXPECT_FALSE(json::decode("\"unterminated").is_ok());
  EXPECT_FALSE(json::decode("tru").is_ok());
  EXPECT_FALSE(json::decode("1 2").is_ok());  // trailing garbage
  EXPECT_FALSE(json::decode("{'single':1}").is_ok());
}

TEST(Json, RoundTripDeep) {
  Struct s;
  s["list"] = Value(Array{Value(1), Value(2.5), Value("x"), Value(), Value(true)});
  s["nested"] = Value(Struct{{"inner", Value(Array{Value(Struct{})})}});
  const Value original{std::move(s)};
  auto back = json::decode(json::encode(original));
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back.value(), original);
}

TEST(JsonRpc, CallRoundTrip) {
  const std::string text = jsonrpc::encode_call("est.runtime", {Value("t1"), Value(4)}, 9);
  auto call = jsonrpc::decode_call(text);
  ASSERT_TRUE(call.is_ok());
  EXPECT_EQ(call.value().method, "est.runtime");
  EXPECT_EQ(call.value().id, 9);
  ASSERT_EQ(call.value().params.size(), 2u);
  EXPECT_EQ(call.value().params[0].as_string(), "t1");
}

TEST(JsonRpc, ResponseRoundTrip) {
  auto resp = jsonrpc::decode_response(jsonrpc::encode_response(Value(123), 5));
  ASSERT_TRUE(resp.is_ok());
  EXPECT_FALSE(resp.value().is_fault);
  EXPECT_EQ(resp.value().result.as_int(), 123);
  EXPECT_EQ(resp.value().id, 5);
}

TEST(JsonRpc, FaultRoundTrip) {
  auto resp = jsonrpc::decode_response(jsonrpc::encode_fault(104, "denied", 2));
  ASSERT_TRUE(resp.is_ok());
  EXPECT_TRUE(resp.value().is_fault);
  EXPECT_EQ(resp.value().fault_code, 104);
  EXPECT_EQ(resp.value().fault_string, "denied");
}

TEST(JsonRpc, CallValidation) {
  EXPECT_FALSE(jsonrpc::decode_call("[1,2]").is_ok());          // not an object
  EXPECT_FALSE(jsonrpc::decode_call("{\"id\":1}").is_ok());     // no method
  EXPECT_FALSE(jsonrpc::decode_call(
                   R"({"method":"m","params":{"a":1}})").is_ok());  // params not array
  EXPECT_TRUE(jsonrpc::decode_call(R"({"method":"m"})").is_ok());   // params optional
}

TEST(JsonRpc, TraceMemberRoundTrips) {
  // The reserved top-level "trace" member carries the trace triple for
  // peers that cannot set the x-gae-trace header.
  auto call = jsonrpc::decode_call(jsonrpc::encode_call("m", {}, 1, "00c0ffee;01;00"));
  ASSERT_TRUE(call.is_ok());
  EXPECT_EQ(call.value().trace, "00c0ffee;01;00");

  auto bare = jsonrpc::decode_call(jsonrpc::encode_call("m", {}, 1));
  ASSERT_TRUE(bare.is_ok());
  EXPECT_TRUE(bare.value().trace.empty());
}

TEST(JsonRpc, ResponseValidation) {
  EXPECT_FALSE(jsonrpc::decode_response("{}").is_ok());  // neither result nor error
  auto with_null_error =
      jsonrpc::decode_response(R"({"jsonrpc":"2.0","result":1,"error":null,"id":1})");
  ASSERT_TRUE(with_null_error.is_ok());
  EXPECT_FALSE(with_null_error.value().is_fault);
}

}  // namespace
}  // namespace gae::rpc
