#include "jobmon/service.h"

#include <gtest/gtest.h>

#include "clarens/host.h"
#include "common/clock.h"
#include "jobmon/read_cache.h"
#include "jobmon/rpc_binding.h"
#include "sim/load.h"

namespace gae::jobmon {
namespace {

exec::TaskSpec spec(const std::string& id, double work, int priority = 0) {
  exec::TaskSpec s;
  s.id = id;
  s.job_id = "job-1";
  s.owner = "alice";
  s.work_seconds = work;
  s.priority = priority;
  s.environment = {{"HOME", "/home/alice"}};
  return s;
}

class JobMonTest : public ::testing::Test {
 protected:
  JobMonTest() {
    grid_.add_site("site-a").add_node("a0", 1.0, nullptr);
    grid_.add_site("site-b").add_node("b0", 1.0, nullptr);
    exec_a_ = std::make_unique<exec::ExecutionService>(sim_, grid_, "site-a");
    exec_b_ = std::make_unique<exec::ExecutionService>(sim_, grid_, "site-b");
    estimates_ = std::make_shared<estimators::EstimateDatabase>();
    jms_ = std::make_unique<JobMonitoringService>(sim_.clock(), &monitoring_, estimates_);
    jms_->attach_site("site-a", exec_a_.get());
    jms_->attach_site("site-b", exec_b_.get());
  }

  sim::Simulation sim_;
  sim::Grid grid_;
  monalisa::Repository monitoring_;
  std::unique_ptr<exec::ExecutionService> exec_a_, exec_b_;
  std::shared_ptr<estimators::EstimateDatabase> estimates_;
  std::unique_ptr<JobMonitoringService> jms_;
};

TEST_F(JobMonTest, UnknownTaskIsNotFound) {
  EXPECT_EQ(jms_->info("ghost").status().code(), StatusCode::kNotFound);
}

TEST_F(JobMonTest, LiveInfoWhileRunning) {
  estimates_->put("t1", 120.0);
  ASSERT_TRUE(exec_a_->submit(spec("t1", 100)).is_ok());
  sim_.run_until(from_seconds(30));

  auto r = jms_->info("t1");
  ASSERT_TRUE(r.is_ok());
  EXPECT_FALSE(r.value().from_database);
  EXPECT_EQ(r.value().site, "site-a");
  EXPECT_EQ(r.value().info.state, exec::TaskState::kRunning);
  EXPECT_NEAR(r.value().info.cpu_seconds_used, 30.0, 1e-6);
  EXPECT_NEAR(r.value().elapsed_seconds, 30.0, 1e-6);
  EXPECT_DOUBLE_EQ(r.value().estimated_runtime_seconds, 120.0);
  // remaining = estimate - cpu = 90.
  EXPECT_NEAR(r.value().remaining_seconds, 90.0, 1e-6);
  EXPECT_EQ(r.value().info.spec.environment.at("HOME"), "/home/alice");
}

TEST_F(JobMonTest, ConvenienceAccessors) {
  estimates_->put("t1", 100.0);
  ASSERT_TRUE(exec_a_->submit(spec("t1", 100)).is_ok());
  ASSERT_TRUE(exec_a_->submit(spec("t2", 50, 0)).is_ok());
  sim_.run_until(from_seconds(10));

  EXPECT_EQ(jms_->status("t1").value(), "RUNNING");
  EXPECT_EQ(jms_->status("t2").value(), "QUEUED");
  EXPECT_EQ(jms_->queue_position("t2").value(), 0);
  EXPECT_NEAR(jms_->elapsed_time("t1").value(), 10.0, 1e-6);
  EXPECT_NEAR(jms_->remaining_time("t1").value(), 90.0, 1e-6);
  EXPECT_NEAR(jms_->progress("t1").value(), 0.1, 1e-6);
}

TEST_F(JobMonTest, TerminalTaskServedFromDatabase) {
  ASSERT_TRUE(exec_a_->submit(spec("t1", 10)).is_ok());
  sim_.run();
  auto r = jms_->info("t1");
  ASSERT_TRUE(r.is_ok());
  EXPECT_TRUE(r.value().from_database);
  EXPECT_EQ(r.value().info.state, exec::TaskState::kCompleted);
  EXPECT_DOUBLE_EQ(r.value().remaining_seconds, 0.0);
  EXPECT_NEAR(r.value().elapsed_seconds, 10.0, 1e-6);
}

TEST_F(JobMonTest, DbServesAfterServiceFailure) {
  ASSERT_TRUE(exec_a_->submit(spec("t1", 100)).is_ok());
  sim_.run_until(from_seconds(40));
  exec_a_->fail_service("disk died");

  // The collector cannot reach site-a anymore, but the DB saw the failure
  // transition and still answers.
  auto r = jms_->info("t1");
  ASSERT_TRUE(r.is_ok());
  EXPECT_TRUE(r.value().from_database);
  EXPECT_EQ(r.value().info.state, exec::TaskState::kFailed);
  EXPECT_NEAR(r.value().info.cpu_seconds_used, 40.0, 1e-6);
}

TEST_F(JobMonTest, StateChangesPublishedToMonALISA) {
  ASSERT_TRUE(exec_a_->submit(spec("t1", 10)).is_ok());
  sim_.run();
  const auto events = monitoring_.events_since(0);
  ASSERT_GE(events.size(), 4u);  // QUEUED, STAGING, RUNNING, COMPLETED
  EXPECT_EQ(events.front().kind, "job_state");
  EXPECT_EQ(events.front().payload, "t1:QUEUED");
  EXPECT_EQ(events.back().payload, "t1:COMPLETED");
  EXPECT_EQ(events.back().source, "site-a");
}

TEST_F(JobMonTest, ListAllSpansSitesAndArchive) {
  ASSERT_TRUE(exec_a_->submit(spec("t1", 5)).is_ok());
  ASSERT_TRUE(exec_b_->submit(spec("t2", 500)).is_ok());
  sim_.run_until(from_seconds(20));  // t1 done, t2 running
  const auto all = jms_->list_all();
  ASSERT_EQ(all.size(), 2u);
}

TEST_F(JobMonTest, CrossSiteLookup) {
  ASSERT_TRUE(exec_b_->submit(spec("b-task", 100)).is_ok());
  sim_.run_until(from_seconds(1));
  auto r = jms_->info("b-task");
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value().site, "site-b");
}

TEST_F(JobMonTest, JobSummaryAggregates) {
  auto s1 = spec("t1", 10);
  auto s2 = spec("t2", 1000);
  auto s3 = spec("t3", 1000);
  ASSERT_TRUE(exec_a_->submit(s1).is_ok());
  ASSERT_TRUE(exec_a_->submit(s2).is_ok());
  ASSERT_TRUE(exec_b_->submit(s3).is_ok());
  sim_.run_until(from_seconds(50));  // t1 done; t2 queued behind? t1 finished at 10 -> t2 running; t3 running

  auto summary = jms_->job_summary("job-1");
  ASSERT_TRUE(summary.is_ok()) << summary.status();
  EXPECT_EQ(summary.value().tasks_total, 3u);
  EXPECT_EQ(summary.value().completed, 1u);
  EXPECT_EQ(summary.value().running, 2u);
  EXPECT_GT(summary.value().total_cpu_seconds, 10.0);
  EXPECT_GT(summary.value().mean_progress, 0.0);
  EXPECT_EQ(jms_->job_summary("ghost-job").status().code(), StatusCode::kNotFound);
}

TEST_F(JobMonTest, ProgressSeriesPublishedToMonALISA) {
  ASSERT_TRUE(exec_a_->submit(spec("t1", 100)).is_ok());
  sim_.run_until(from_seconds(60));
  ASSERT_TRUE(exec_a_->suspend("t1").is_ok());  // forces an update at 60% progress
  auto latest = monitoring_.latest("t1", "progress");
  ASSERT_TRUE(latest.is_ok());
  EXPECT_NEAR(latest.value().value, 0.6, 1e-6);
  sim_.run();
}

TEST_F(JobMonTest, EventFeedTailsStateChanges) {
  ASSERT_TRUE(exec_a_->submit(spec("t1", 10)).is_ok());
  sim_.run();
  // QUEUED, STAGING, RUNNING, COMPLETED.
  auto events = jms_->events_since(0);
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].seq, 1u);
  EXPECT_EQ(events[0].state, exec::TaskState::kQueued);
  EXPECT_EQ(events[3].state, exec::TaskState::kCompleted);
  EXPECT_EQ(events[3].site, "site-a");
  EXPECT_EQ(jms_->last_event_seq(), 4u);

  // Tail from a midpoint; and max caps the batch.
  EXPECT_EQ(jms_->events_since(2).size(), 2u);
  EXPECT_EQ(jms_->events_since(0, 3).size(), 3u);
  EXPECT_TRUE(jms_->events_since(4).empty());
}

TEST_F(JobMonTest, RpcBindingRoundTrip) {
  ManualClock clock;
  clarens::HostOptions opts;
  opts.require_auth = false;
  clarens::ClarensHost host("jm-host", clock, opts);
  register_jobmon_methods(host, *jms_);

  estimates_->put("t1", 100.0);
  ASSERT_TRUE(exec_a_->submit(spec("t1", 100)).is_ok());
  sim_.run_until(from_seconds(25));

  auto info = host.call("jobmon.info", {rpc::Value("t1")});
  ASSERT_TRUE(info.is_ok()) << info.status();
  EXPECT_EQ(info.value().get_string("status", ""), "RUNNING");
  EXPECT_EQ(info.value().get_string("site", ""), "site-a");
  EXPECT_NEAR(info.value().get_double("cpu_seconds_used", 0), 25.0, 1e-6);
  EXPECT_NEAR(info.value().get_double("remaining_seconds", 0), 75.0, 1e-6);
  EXPECT_EQ(info.value().get_int("priority", -1), 0);
  EXPECT_EQ(info.value().at("environment").get_string("HOME", ""), "/home/alice");

  EXPECT_EQ(host.call("jobmon.status", {rpc::Value("t1")}).value().as_string(),
            "RUNNING");
  EXPECT_NEAR(host.call("jobmon.remainingTime", {rpc::Value("t1")}).value().as_double(),
              75.0, 1e-6);
  EXPECT_NEAR(host.call("jobmon.progress", {rpc::Value("t1")}).value().as_double(), 0.25,
              1e-6);
  EXPECT_EQ(host.call("jobmon.queuePosition", {rpc::Value("t1")}).value().as_int(), -1);

  auto list = host.call("jobmon.list", {});
  ASSERT_TRUE(list.is_ok());
  EXPECT_EQ(list.value().as_array().size(), 1u);

  auto summary = host.call("jobmon.jobSummary", {rpc::Value("job-1")});
  ASSERT_TRUE(summary.is_ok()) << summary.status();
  EXPECT_EQ(summary.value().get_int("tasks_total", 0), 1);
  EXPECT_EQ(summary.value().get_int("running", 0), 1);

  auto events = host.call("jobmon.eventsSince", {rpc::Value(0)});
  ASSERT_TRUE(events.is_ok()) << events.status();
  ASSERT_EQ(events.value().as_array().size(), 3u);  // QUEUED, STAGING, RUNNING
  EXPECT_EQ(events.value().as_array()[0].get_string("state", ""), "QUEUED");
  EXPECT_EQ(host.call("jobmon.eventsSince", {}).status().code(),
            StatusCode::kInvalidArgument);

  // Bad arguments become INVALID_ARGUMENT faults.
  EXPECT_EQ(host.call("jobmon.info", {}).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(host.call("jobmon.info", {rpc::Value(5)}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(host.call("jobmon.info", {rpc::Value("ghost")}).status().code(),
            StatusCode::kNotFound);

  // Service registered itself for discovery.
  EXPECT_TRUE(host.registry().lookup("jobmon@jm-host").is_ok());
}

TEST_F(JobMonTest, ReadCacheServesRepeatsAndInvalidatesOnTransitions) {
  ManualClock clock;
  clarens::HostOptions opts;
  opts.require_auth = false;
  clarens::ClarensHost host("jm-host", clock, opts);

  std::int64_t fake_now = 0;
  ReadCacheOptions cache_options;
  cache_options.ttl_ms = 1000;
  cache_options.now_us = [&fake_now] { return fake_now; };
  ReadCache cache(cache_options);
  register_jobmon_methods(host, *jms_, nullptr, nullptr, nullptr, 2000, &cache);

  estimates_->put("t1", 100.0);
  ASSERT_TRUE(exec_a_->submit(spec("t1", 100)).is_ok());
  sim_.run_until(from_seconds(25));
  // The QUEUED/STAGING/RUNNING transitions already invalidated (empty) keys.
  const auto baseline_invalidations = cache.stats().invalidations;

  // First read misses and populates; the repeat is served from the cache
  // and carries the stale marker.
  auto first = host.call("jobmon.info", {rpc::Value("t1")});
  ASSERT_TRUE(first.is_ok()) << first.status();
  EXPECT_FALSE(first.value().get_bool("stale", true));
  auto second = host.call("jobmon.info", {rpc::Value("t1")});
  ASSERT_TRUE(second.is_ok());
  EXPECT_TRUE(second.value().get_bool("stale", false));
  EXPECT_EQ(second.value().get_string("status", ""), "RUNNING");
  EXPECT_EQ(cache.stats().hits, 1u);

  // status and list ride the cache too.
  ASSERT_TRUE(host.call("jobmon.status", {rpc::Value("t1")}).is_ok());
  EXPECT_EQ(host.call("jobmon.status", {rpc::Value("t1")}).value().as_string(),
            "RUNNING");
  ASSERT_TRUE(host.call("jobmon.list", {}).is_ok());
  ASSERT_TRUE(host.call("jobmon.list", {}).is_ok());
  EXPECT_GE(cache.stats().hits, 3u);

  // The collector's completion transition invalidates, so the next read is
  // fresh — not a TTL-stale RUNNING snapshot.
  sim_.run_until(from_seconds(200));
  EXPECT_GT(cache.stats().invalidations, baseline_invalidations);
  auto after = host.call("jobmon.info", {rpc::Value("t1")});
  ASSERT_TRUE(after.is_ok()) << after.status();
  EXPECT_FALSE(after.value().get_bool("stale", true));
  EXPECT_EQ(after.value().get_string("status", ""), "COMPLETED");

  // And entries age out on their own: past the TTL the repeat re-misses.
  const auto misses_before = cache.stats().misses;
  fake_now += 2'000'000;
  ASSERT_TRUE(host.call("jobmon.info", {rpc::Value("t1")}).is_ok());
  EXPECT_GT(cache.stats().misses, misses_before);
}

}  // namespace
}  // namespace gae::jobmon
