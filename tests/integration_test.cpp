// Whole-ensemble integration tests: scheduler + execution + estimators +
// monitoring + steering cooperating inside one simulation, the way the GAE
// deployment composes them.
#include <gtest/gtest.h>

#include <memory>

#include "estimators/recorder.h"
#include "jobmon/service.h"
#include "monalisa/repository.h"
#include "sim/load.h"
#include "sphinx/scheduler.h"
#include "steering/service.h"
#include "workload/task_generator.h"

namespace gae {
namespace {

/// A three-site grid with one heavily loaded site, full service stack, and
/// per-site estimator history recorded live from completions.
struct GridStack {
  explicit GridStack(double loaded_site_load = 0.85, bool auto_steer = true) {
    grid.add_site("cern").add_node("cern-0", 1.0,
                                   std::make_shared<sim::ConstantLoad>(loaded_site_load));
    grid.site("cern").add_node("cern-1", 1.0,
                               std::make_shared<sim::ConstantLoad>(loaded_site_load));
    grid.add_site("caltech").add_node("ct-0", 1.0, nullptr);
    grid.add_site("nust").add_node("nu-0", 0.8, nullptr);
    grid.set_default_link({100e6, from_millis(30)});

    for (const auto& name : grid.site_names()) {
      execs[name] = std::make_unique<exec::ExecutionService>(sim, grid, name);
      estimators_[name] = std::make_shared<estimators::RuntimeEstimator>(
          std::make_shared<estimators::TaskHistoryStore>());
      recorders.push_back(std::make_unique<estimators::SiteRuntimeRecorder>(
          *execs[name], estimators_[name]));
    }

    estimate_db = std::make_shared<estimators::EstimateDatabase>();
    scheduler = std::make_unique<sphinx::SphinxScheduler>(sim, grid, &monitoring,
                                                          estimate_db);
    jms = std::make_unique<jobmon::JobMonitoringService>(sim.clock(), &monitoring,
                                                         estimate_db);
    for (const auto& name : grid.site_names()) {
      scheduler->add_site(name, {execs[name].get(), estimators_[name]});
      jms->attach_site(name, execs[name].get());
    }

    steering::SteeringService::Deps deps;
    deps.sim = &sim;
    deps.scheduler = scheduler.get();
    deps.jobmon = jms.get();
    for (const auto& name : grid.site_names()) deps.services[name] = execs[name].get();
    steering::SteeringOptions sopts;
    sopts.auto_steer = auto_steer;
    steering = std::make_unique<steering::SteeringService>(deps, sopts);
  }

  /// Seeds every site's history so the schedulers have estimates to work with.
  void seed_history(const std::map<std::string, std::string>& attrs, double runtime,
                    int n = 5) {
    for (auto& [name, est] : estimators_) {
      for (int i = 0; i < n; ++i) est->record(attrs, runtime, 0);
    }
  }

  sim::Simulation sim;
  sim::Grid grid;
  monalisa::Repository monitoring;
  std::map<std::string, std::unique_ptr<exec::ExecutionService>> execs;
  std::map<std::string, std::shared_ptr<estimators::RuntimeEstimator>> estimators_;
  std::vector<std::unique_ptr<estimators::SiteRuntimeRecorder>> recorders;
  std::shared_ptr<estimators::EstimateDatabase> estimate_db;
  std::unique_ptr<sphinx::SphinxScheduler> scheduler;
  std::unique_ptr<jobmon::JobMonitoringService> jms;
  std::unique_ptr<steering::SteeringService> steering;
};

exec::TaskSpec task(const std::string& id, double work) {
  exec::TaskSpec s;
  s.id = id;
  s.owner = "alice";
  s.work_seconds = work;
  s.attributes = {{"executable", "reco"}, {"login", "alice"}, {"queue", "q"},
                  {"nodes", "1"}};
  return s;
}

sphinx::JobDescription wrap(const std::string& job_id, std::vector<exec::TaskSpec> specs) {
  sphinx::JobDescription job;
  job.id = job_id;
  job.owner = "alice";
  for (auto& s : specs) job.tasks.push_back({std::move(s), {}});
  return job;
}

TEST(Integration, SteeringImprovesWorkloadCompletion) {
  auto run_workload = [](bool steer) {
    GridStack stack(0.9, steer);
    stack.seed_history(task("h", 1).attributes, 200.0);
    // Enough identical tasks to force some onto the loaded site.
    std::vector<exec::TaskSpec> specs;
    for (int i = 0; i < 6; ++i) specs.push_back(task("t" + std::to_string(i), 200));
    EXPECT_TRUE(stack.scheduler->submit(wrap("batch", std::move(specs))).is_ok());
    stack.sim.run();

    SimTime last_completion = 0;
    for (auto& [name, svc] : stack.execs) {
      for (const auto& info : svc->list_tasks()) {
        if (info.state == exec::TaskState::kCompleted) {
          last_completion = std::max(last_completion, info.completion_time);
        }
      }
    }
    return last_completion;
  };

  const SimTime unsteered = run_workload(false);
  const SimTime steered = run_workload(true);
  EXPECT_LT(steered, unsteered);
}

TEST(Integration, EstimatorsLearnFromLiveCompletions) {
  GridStack stack(0.0, /*auto_steer=*/false);
  // No seed: first placements run on fallback estimates, completions feed
  // the per-site histories via the recorders.
  std::vector<exec::TaskSpec> warmup;
  for (int i = 0; i < 9; ++i) warmup.push_back(task("w" + std::to_string(i), 150));
  ASSERT_TRUE(stack.scheduler->submit(wrap("warmup", std::move(warmup))).is_ok());
  stack.sim.run();

  // At least one site has recorded enough history to predict ~150 s.
  bool some_site_learned = false;
  for (auto& [name, est] : stack.estimators_) {
    auto r = est->estimate(task("x", 1).attributes);
    if (r.is_ok() && std::abs(r.value().seconds - 150.0) < 15.0) {
      some_site_learned = true;
    }
  }
  EXPECT_TRUE(some_site_learned);

  // And the scheduler's next plan uses a learned estimate, not the fallback.
  auto plan = stack.scheduler->make_plan(wrap("next", {task("n1", 150)}));
  ASSERT_TRUE(plan.is_ok());
  EXPECT_NEAR(plan.value().placements[0].score.est_runtime_seconds, 150.0, 20.0);
}

TEST(Integration, MonitoringSeesWholeLifecycleAcrossServices) {
  GridStack stack(0.5, false);
  stack.seed_history(task("h", 1).attributes, 100.0);
  ASSERT_TRUE(stack.scheduler->submit(wrap("j", {task("t1", 100)})).is_ok());
  const std::string site = stack.scheduler->task_site("t1").value();

  stack.sim.run_until(from_seconds(20));
  auto mid = stack.jms->info("t1");
  ASSERT_TRUE(mid.is_ok());
  EXPECT_EQ(mid.value().site, site);
  EXPECT_GT(mid.value().info.cpu_seconds_used, 0.0);

  stack.sim.run();
  auto done = stack.jms->info("t1");
  ASSERT_TRUE(done.is_ok());
  EXPECT_EQ(done.value().info.state, exec::TaskState::kCompleted);

  // MonALISA carries the full state history for the task.
  int completed_events = 0;
  for (const auto& ev : stack.monitoring.events_since(0)) {
    if (ev.payload == "t1:COMPLETED") ++completed_events;
  }
  EXPECT_EQ(completed_events, 1);
}

TEST(Integration, ServiceFailureRecoveryEndToEnd) {
  GridStack stack(0.0, false);
  stack.seed_history(task("h", 1).attributes, 300.0);
  ASSERT_TRUE(stack.scheduler->submit(wrap("j", {task("t1", 300)})).is_ok());
  const std::string first = stack.scheduler->task_site("t1").value();

  stack.sim.schedule_at(from_seconds(60), [&] {
    stack.execs[first]->fail_service("meltdown");
  });
  stack.sim.run_until(from_seconds(2000));

  const std::string second = stack.scheduler->task_site("t1").value();
  EXPECT_NE(second, first);
  EXPECT_EQ(stack.execs[second]->query("t1").value().state,
            exec::TaskState::kCompleted);
  EXPECT_EQ(stack.steering->stats().recoveries, 1u);
}

TEST(Integration, MixedWorkloadFromGeneratorCompletes) {
  GridStack stack(0.3, true);
  Rng rng(77);
  auto pop = workload::ApplicationPopulation::make(rng, {});
  workload::TaskGenOptions gopts;
  gopts.input_file_rate = 0.0;  // no dataset staging in this test
  auto specs = workload::make_tasks(pop, rng, gopts, "wl", 20);
  // Bound the work so the test stays fast in virtual time too.
  for (auto& s : specs) s.work_seconds = std::min(s.work_seconds, 400.0);
  stack.seed_history(specs[0].attributes, 200.0);
  ASSERT_TRUE(stack.scheduler->submit(wrap("wl", specs)).is_ok());
  stack.sim.run(2'000'000);

  auto status = stack.scheduler->job_status("wl");
  ASSERT_TRUE(status.is_ok());
  EXPECT_EQ(status.value().tasks_completed, 20u);
}

}  // namespace
}  // namespace gae
