// The Estimator Service facade + its estimator.* RPC binding.
#include <gtest/gtest.h>

#include "clarens/host.h"
#include "common/clock.h"
#include "estimators/rpc_binding.h"
#include "estimators/service.h"
#include "sim/load.h"

namespace gae::estimators {
namespace {

using rpc::Struct;
using rpc::Value;

class EstimatorServiceTest : public ::testing::Test {
 protected:
  EstimatorServiceTest() {
    grid_.add_site("site-a").add_node("a0", 1.0, nullptr);
    grid_.set_default_link({100e6, 0});
    grid_.add_site("site-b");
    exec_ = std::make_unique<exec::ExecutionService>(sim_, grid_, "site-a");
    db_ = std::make_shared<EstimateDatabase>();

    auto runtime = std::make_shared<RuntimeEstimator>(std::make_shared<TaskHistoryStore>());
    for (int i = 0; i < 4; ++i) runtime->record(attrs(), 120.0, 0);

    TransferEstimatorOptions topts;
    topts.probe_noise = 0.0;
    service_ = std::make_unique<EstimatorService>(
        db_, std::make_unique<FileTransferEstimator>(grid_, topts));
    service_->add_site("site-a", runtime, exec_.get());
  }

  static std::map<std::string, std::string> attrs() {
    return {{"executable", "reco"}, {"login", "alice"}, {"queue", "q"}, {"nodes", "1"}};
  }

  sim::Simulation sim_;
  sim::Grid grid_;
  std::unique_ptr<exec::ExecutionService> exec_;
  std::shared_ptr<EstimateDatabase> db_;
  std::unique_ptr<EstimatorService> service_;
};

TEST_F(EstimatorServiceTest, RuntimeFacade) {
  auto est = service_->runtime("site-a", attrs());
  ASSERT_TRUE(est.is_ok());
  EXPECT_NEAR(est.value().seconds, 120.0, 1e-9);
  EXPECT_EQ(service_->runtime("nowhere", attrs()).status().code(), StatusCode::kNotFound);
}

TEST_F(EstimatorServiceTest, QueueTimeFacade) {
  exec::TaskSpec running;
  running.id = "running";
  running.work_seconds = 100;
  db_->put("running", 100);
  ASSERT_TRUE(exec_->submit(running).is_ok());
  exec::TaskSpec waiting;
  waiting.id = "waiting";
  waiting.work_seconds = 10;
  ASSERT_TRUE(exec_->submit(waiting).is_ok());

  auto qt = service_->queue_time("site-a", "waiting");
  ASSERT_TRUE(qt.is_ok());
  EXPECT_NEAR(qt.value().seconds, 100.0, 1e-9);
  EXPECT_EQ(service_->queue_time("site-b", "waiting").status().code(),
            StatusCode::kNotFound);  // site-b was never added
}

TEST_F(EstimatorServiceTest, TransferFacade) {
  auto t = service_->transfer_time("site-a", "site-b", 100'000'000, 0);
  ASSERT_TRUE(t.is_ok());
  EXPECT_NEAR(t.value().seconds, 1.0, 1e-9);
}

TEST_F(EstimatorServiceTest, SitesList) {
  EXPECT_EQ(service_->sites(), std::vector<std::string>{"site-a"});
}

TEST_F(EstimatorServiceTest, RpcBinding) {
  ManualClock clock;
  clarens::HostOptions opts;
  opts.require_auth = false;
  clarens::ClarensHost host("est-host", clock, opts);
  register_estimator_methods(host, *service_);

  Struct wire_attrs;
  for (const auto& [k, v] : attrs()) wire_attrs[k] = Value(v);
  auto runtime = host.call("estimator.runtime", {Value("site-a"), Value(wire_attrs)});
  ASSERT_TRUE(runtime.is_ok()) << runtime.status();
  EXPECT_NEAR(runtime.value().get_double("seconds", 0), 120.0, 1e-9);
  EXPECT_EQ(runtime.value().get_int("samples", 0), 4);
  EXPECT_FALSE(runtime.value().get_string("template", "").empty());

  exec::TaskSpec running;
  running.id = "running";
  running.work_seconds = 100;
  db_->put("running", 100);
  ASSERT_TRUE(exec_->submit(running).is_ok());
  exec::TaskSpec waiting;
  waiting.id = "waiting";
  waiting.work_seconds = 10;
  ASSERT_TRUE(exec_->submit(waiting).is_ok());

  auto qt = host.call("estimator.queueTime", {Value("site-a"), Value("waiting")});
  ASSERT_TRUE(qt.is_ok()) << qt.status();
  EXPECT_NEAR(qt.value().get_double("seconds", 0), 100.0, 1e-9);
  EXPECT_EQ(qt.value().get_int("tasks_ahead", 0), 1);

  auto xfer = host.call("estimator.transferTime",
                        {Value("site-a"), Value("site-b"), Value(100'000'000)});
  ASSERT_TRUE(xfer.is_ok()) << xfer.status();
  EXPECT_NEAR(xfer.value().get_double("seconds", 0), 1.0, 1e-9);
  EXPECT_NEAR(xfer.value().get_double("bandwidth_bytes_per_sec", 0), 100e6, 1.0);

  auto sites = host.call("estimator.sites", {});
  ASSERT_TRUE(sites.is_ok());
  EXPECT_EQ(sites.value().as_array().size(), 1u);

  // Validation paths.
  EXPECT_EQ(host.call("estimator.runtime", {Value("site-a")}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(host.call("estimator.queueTime", {Value("site-a"), Value(3)}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(host.call("estimator.transferTime", {Value("a")}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(host.registry().lookup("estimator@est-host").is_ok());
}

}  // namespace
}  // namespace gae::estimators
