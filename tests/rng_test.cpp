#include "common/rng.h"

#include <gtest/gtest.h>

#include "common/stats.h"

namespace gae {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(0, 1), b.uniform(0, 1));
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform_int(0, 1'000'000) == b.uniform_int(0, 1'000'000)) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformIntBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-3, 5);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
  // Out-of-range p is clamped rather than UB.
  EXPECT_TRUE(rng.bernoulli(2.0));
  EXPECT_FALSE(rng.bernoulli(-1.0));
}

TEST(Rng, NormalMoments) {
  Rng rng(11);
  RunningStats s;
  for (int i = 0; i < 20000; ++i) s.add(rng.normal(5.0, 2.0));
  EXPECT_NEAR(s.mean(), 5.0, 0.1);
  EXPECT_NEAR(s.stddev(), 2.0, 0.1);
}

TEST(Rng, LognormalIsPositiveAndHeavyTailed) {
  Rng rng(13);
  RunningStats s;
  for (int i = 0; i < 20000; ++i) {
    const double x = rng.lognormal(1.0, 1.0);
    ASSERT_GT(x, 0.0);
    s.add(x);
  }
  // Mean of lognormal(1,1) = exp(1.5) ~ 4.48; median = e ~ 2.72. Mean above
  // median demonstrates the right-skew the runtime model depends on.
  EXPECT_NEAR(s.mean(), 4.48, 0.5);
}

TEST(Rng, ExponentialMean) {
  Rng rng(17);
  RunningStats s;
  for (int i = 0; i < 20000; ++i) s.add(rng.exponential(30.0));
  EXPECT_NEAR(s.mean(), 30.0, 1.0);
  EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
}

TEST(Rng, ParetoBounds) {
  Rng rng(19);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
  }
  EXPECT_THROW(rng.pareto(0, 1), std::invalid_argument);
  EXPECT_THROW(rng.pareto(1, 0), std::invalid_argument);
}

TEST(Rng, WeightedIndexDistribution) {
  Rng rng(23);
  std::vector<double> weights{1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 10000; ++i) ++counts[rng.weighted_index(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.3);
  EXPECT_THROW(rng.weighted_index({}), std::invalid_argument);
  EXPECT_THROW(rng.weighted_index({0.0, 0.0}), std::invalid_argument);
}

TEST(Rng, PickCoversAllElements) {
  Rng rng(29);
  std::vector<int> items{10, 20, 30};
  bool seen[3] = {false, false, false};
  for (int i = 0; i < 200; ++i) {
    const int v = rng.pick(items);
    seen[v / 10 - 1] = true;
  }
  EXPECT_TRUE(seen[0] && seen[1] && seen[2]);
}

TEST(Rng, ForkIsStableAndIndependent) {
  Rng a(42), b(42);
  Rng fa = a.fork("child");
  Rng fb = b.fork("child");
  // Same parent seed + same label => identical child stream.
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(fa.uniform(0, 1), fb.uniform(0, 1));
  }
  // Different labels diverge.
  Rng c(42);
  Rng other = c.fork("other");
  Rng fa2 = Rng(42).fork("child");
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (other.uniform_int(0, 1 << 30) == fa2.uniform_int(0, 1 << 30)) ++same;
  }
  EXPECT_LT(same, 2);
}

}  // namespace
}  // namespace gae
