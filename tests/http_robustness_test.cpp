// Raw-socket robustness: the RPC server must survive malformed and hostile
// inputs without hanging or crashing, and HTTP framing must round-trip.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "net/socket.h"
#include "rpc/client.h"
#include "rpc/http.h"
#include "rpc/server.h"

namespace gae::rpc {
namespace {

std::shared_ptr<Dispatcher> echo_dispatcher() {
  auto d = std::make_shared<Dispatcher>();
  d->register_method("echo", [](const Array& params, const CallContext&) -> Result<Value> {
    return params.empty() ? Value() : params.front();
  });
  return d;
}

class RawSocketTest : public ::testing::Test {
 protected:
  void SetUp() override {
    server_ = std::make_unique<RpcServer>(echo_dispatcher(), ServerOptions{0, 2});
    auto port = server_->start();
    ASSERT_TRUE(port.is_ok());
    port_ = port.value();
  }

  Result<net::TcpStream> connect() { return net::TcpStream::connect("127.0.0.1", port_); }

  /// Sends raw bytes and reads whatever comes back until EOF (with timeout).
  std::string send_raw(const std::string& bytes) {
    auto conn = connect();
    if (!conn.is_ok()) return "";
    conn.value().set_recv_timeout_ms(2000);
    conn.value().write_all(bytes);
    conn.value().shutdown_write();
    std::string response;
    char buf[4096];
    for (;;) {
      auto r = conn.value().read_some(buf, sizeof(buf));
      if (!r.is_ok() || r.value() == 0) break;
      response.append(buf, r.value());
    }
    return response;
  }

  std::unique_ptr<RpcServer> server_;
  std::uint16_t port_ = 0;
};

TEST_F(RawSocketTest, GarbageRequestLineClosesConnection) {
  const std::string resp = send_raw("NONSENSE\r\n\r\n");
  // Server drops the connection without crashing; it stays serviceable.
  RpcClient client("127.0.0.1", port_);
  EXPECT_TRUE(client.call("echo", {Value(1)}).is_ok());
  (void)resp;
}

TEST_F(RawSocketTest, ImmediateCloseHandled) {
  { auto conn = connect(); }  // connect and slam shut
  RpcClient client("127.0.0.1", port_);
  EXPECT_TRUE(client.call("echo", {Value(1)}).is_ok());
}

TEST_F(RawSocketTest, OversizedContentLengthRejected) {
  const std::string resp =
      send_raw("POST /rpc HTTP/1.1\r\ncontent-length: 999999999999\r\n\r\n");
  RpcClient client("127.0.0.1", port_);
  EXPECT_TRUE(client.call("echo", {Value(1)}).is_ok());
  (void)resp;
}

TEST_F(RawSocketTest, NonNumericContentLengthRejected) {
  send_raw("POST /rpc HTTP/1.1\r\ncontent-length: banana\r\n\r\n");
  RpcClient client("127.0.0.1", port_);
  EXPECT_TRUE(client.call("echo", {Value(1)}).is_ok());
}

TEST_F(RawSocketTest, TruncatedBodyHandled) {
  // Claims 100 bytes, sends 5, then closes.
  send_raw("POST /rpc HTTP/1.1\r\ncontent-length: 100\r\n\r\nhello");
  RpcClient client("127.0.0.1", port_);
  EXPECT_TRUE(client.call("echo", {Value(1)}).is_ok());
}

// Fuzz-style regression table: every malformed framing below must produce a
// 400 Bad Request or a clean close — never a crash, a hang, or a desynced
// parse that treats part of the garbage as a valid request. After each
// probe the server must still answer a well-formed call.
TEST_F(RawSocketTest, MalformedFramingTableNeverKillsTheServer) {
  const struct {
    const char* name;
    std::string bytes;
  } kCases[] = {
      {"empty request line", "\r\n\r\n"},
      {"request line without path", "POST\r\n\r\n"},
      {"header without colon", "POST /rpc HTTP/1.1\r\nno-colon-here\r\n\r\n"},
      {"partial-parse content-length", "POST /rpc HTTP/1.1\r\ncontent-length: 123abc\r\n\r\n"},
      {"signed content-length", "POST /rpc HTTP/1.1\r\ncontent-length: +5\r\n\r\nhello"},
      {"negative content-length", "POST /rpc HTTP/1.1\r\ncontent-length: -1\r\n\r\n"},
      {"hex content-length", "POST /rpc HTTP/1.1\r\ncontent-length: 0x10\r\n\r\n"},
      {"empty content-length", "POST /rpc HTTP/1.1\r\ncontent-length:\r\n\r\n"},
      {"overflowing content-length",
       "POST /rpc HTTP/1.1\r\ncontent-length: 99999999999999999999999999\r\n\r\n"},
      {"content-length with inner space", "POST /rpc HTTP/1.1\r\ncontent-length: 1 2\r\n\r\n"},
      {"bare lf framing garbage", "POST /rpc HTTP/1.1\ncontent-length nonsense\n\n"},
      {"binary garbage", std::string("\xff\xfe\x00\x01\x02garbage\x80\x81", 14)},
  };
  for (const auto& c : kCases) {
    SCOPED_TRACE(c.name);
    const std::string resp = send_raw(c.bytes);
    // Either the server said 400 or it closed without a byte; a 200 would
    // mean garbage framing was accepted as a request.
    if (!resp.empty()) {
      EXPECT_EQ(resp.rfind("HTTP/1.1 400", 0), 0u) << "got: " << resp.substr(0, 64);
    }
    RpcClient client("127.0.0.1", port_);
    auto r = client.call("echo", {Value(1)});
    ASSERT_TRUE(r.is_ok()) << "server unserviceable after '" << c.name
                           << "': " << r.status();
  }

  // Hostile-but-parseable inputs: these may legally frame as (bad) requests
  // and draw an RPC fault instead of a 400; the only requirement is that the
  // server neither crashes nor wedges.
  const std::string kLenient[] = {
      std::string("POST /rpc HTTP/1.1\r\nx\0y: 1\r\n\r\n", 30),  // NUL in header
      "POST /rpc HTTP/1.1\r\ncontent-length: 0\r\n\r\ntrailing-bytes",
      "POST /rpc HTTP/1.1\r\n: no-name\r\n\r\n",
  };
  for (const auto& bytes : kLenient) {
    (void)send_raw(bytes);
    RpcClient client("127.0.0.1", port_);
    ASSERT_TRUE(client.call("echo", {Value(1)}).is_ok());
  }
}

TEST_F(RawSocketTest, MalformedContentLengthGets400) {
  // Regression: content-length went through stoull, which accepts a partial
  // parse — "123abc" framed a 123-byte body out of garbage. Strict parsing
  // now answers 400 before closing, so well-behaved peers see the reason.
  const std::string resp =
      send_raw("POST /rpc HTTP/1.1\r\ncontent-length: 123abc\r\n\r\n");
  EXPECT_EQ(resp.rfind("HTTP/1.1 400", 0), 0u) << resp.substr(0, 64);
  EXPECT_NE(resp.find("content-length"), std::string::npos);
}

TEST_F(RawSocketTest, BadXmlBodyYieldsFaultResponse) {
  const std::string body = "this is not xml";
  const std::string req = "POST /rpc HTTP/1.1\r\ncontent-type: text/xml\r\ncontent-length: " +
                          std::to_string(body.size()) + "\r\nconnection: close\r\n\r\n" + body;
  const std::string resp = send_raw(req);
  EXPECT_NE(resp.find("200"), std::string::npos);  // HTTP-level success
  EXPECT_NE(resp.find("fault"), std::string::npos);  // XML-RPC fault payload
}

TEST_F(RawSocketTest, HeaderBlockSizeCapEnforced) {
  std::string huge = "POST /rpc HTTP/1.1\r\n";
  huge.append(2 << 20, 'x');  // 2 MB of header garbage, no terminator
  send_raw(huge);
  RpcClient client("127.0.0.1", port_);
  EXPECT_TRUE(client.call("echo", {Value(1)}).is_ok());
}

// ---------------------------------------------------------------------------
// Server hardening: silent peers and connection backpressure
// ---------------------------------------------------------------------------

TEST(ServerHardening, SilentClientCannotWedgeTheOnlyWorker) {
  ServerOptions options;
  options.port = 0;
  options.num_workers = 1;  // one wedged worker would wedge the server
  options.recv_timeout_ms = 300;
  RpcServer server(echo_dispatcher(), options);
  auto port = server.start();
  ASSERT_TRUE(port.is_ok());

  // A client that connects and never sends a byte (slowloris-style). Without
  // the receive timeout this parks the only worker forever.
  auto silent = net::TcpStream::connect("127.0.0.1", port.value());
  ASSERT_TRUE(silent.is_ok());

  // A real call queued behind the silent peer completes once the timeout
  // frees the worker.
  RpcClient client("127.0.0.1", port.value());
  auto r = client.call("echo", {Value(7)});
  ASSERT_TRUE(r.is_ok()) << r.status();
  EXPECT_EQ(r.value().as_int(), 7);
  EXPECT_GE(server.connections_timed_out(), 1u);
}

TEST(ServerHardening, ExcessConnectionsShedAtAccept) {
  ServerOptions options;
  options.port = 0;
  options.num_workers = 1;
  options.max_in_flight = 1;
  options.recv_timeout_ms = 10'000;  // the parked connection stays parked
  RpcServer server(echo_dispatcher(), options);
  auto port = server.start();
  ASSERT_TRUE(port.is_ok());

  // Fill the admission budget with one idle connection, then pile on more;
  // the server must shed them at accept instead of queueing unboundedly.
  std::vector<net::TcpStream> held;
  for (int i = 0; i < 5; ++i) {
    auto conn = net::TcpStream::connect("127.0.0.1", port.value());
    if (conn.is_ok()) held.push_back(std::move(conn).value());
  }
  // The acceptor drains the backlog asynchronously; wait on the observable
  // rejection counter rather than a guessed grace period.
  const auto give_up = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (server.connections_rejected() == 0 &&
         std::chrono::steady_clock::now() < give_up) {
    std::this_thread::yield();
  }
  EXPECT_GE(server.connections_rejected(), 1u);
}

TEST(ServerHardening, ConfiguredBodyCapRejectsOversizedRequests) {
  ServerOptions options;
  options.port = 0;
  options.num_workers = 2;
  options.max_body_bytes = 1024;
  RpcServer server(echo_dispatcher(), options);
  auto port = server.start();
  ASSERT_TRUE(port.is_ok());

  auto conn = net::TcpStream::connect("127.0.0.1", port.value());
  ASSERT_TRUE(conn.is_ok());
  conn.value().set_recv_timeout_ms(2000);
  const std::string body(2048, 'x');
  conn.value().write_all("POST /rpc HTTP/1.1\r\ncontent-length: " +
                         std::to_string(body.size()) + "\r\n\r\n" + body);
  // The oversized request is refused and the server stays serviceable.
  RpcClient client("127.0.0.1", port.value());
  EXPECT_TRUE(client.call("echo", {Value(1)}).is_ok());
}

TEST(HttpFraming, RequestRoundTripOverSocket) {
  auto listener = net::TcpListener::bind(0);
  ASSERT_TRUE(listener.is_ok());
  auto client = net::TcpStream::connect("127.0.0.1", listener.value().port());
  ASSERT_TRUE(client.is_ok());
  auto served = listener.value().accept();
  ASSERT_TRUE(served.is_ok());

  http::Request req;
  req.method = "POST";
  req.path = "/rpc";
  req.headers["x-clarens-session"] = "tok";
  req.body = "payload bytes";
  ASSERT_TRUE(http::write_request(client.value(), req).is_ok());

  auto got = http::read_request(served.value());
  ASSERT_TRUE(got.is_ok()) << got.status();
  EXPECT_EQ(got.value().method, "POST");
  EXPECT_EQ(got.value().path, "/rpc");
  EXPECT_EQ(got.value().header("x-clarens-session"), "tok");
  EXPECT_EQ(got.value().header("X-CLARENS-SESSION"), "tok");  // case-insensitive
  EXPECT_EQ(got.value().body, "payload bytes");
  EXPECT_TRUE(got.value().keep_alive());
}

TEST(HttpFraming, CallerSuppliedContentLengthIsOverwritten) {
  // Regression: write_request used to trust a caller-supplied content-length
  // even when it disagreed with the body, desyncing the persistent
  // connection's framing. The serializer must always emit the body's true
  // size.
  auto listener = net::TcpListener::bind(0);
  ASSERT_TRUE(listener.is_ok());
  auto client = net::TcpStream::connect("127.0.0.1", listener.value().port());
  ASSERT_TRUE(client.is_ok());
  auto served = listener.value().accept();
  ASSERT_TRUE(served.is_ok());

  http::Request req;
  req.method = "POST";
  req.path = "/rpc";
  req.headers["content-length"] = "9999";  // lies about the body size
  req.body = "short";
  ASSERT_TRUE(http::write_request(client.value(), req).is_ok());

  auto got = http::read_request(served.value());
  ASSERT_TRUE(got.is_ok()) << got.status();
  EXPECT_EQ(got.value().header("content-length"), "5");
  EXPECT_EQ(got.value().body, "short");

  // The connection stays framed: a second request on the same stream still
  // parses cleanly.
  http::Request req2;
  req2.method = "POST";
  req2.path = "/rpc";
  req2.headers["content-length"] = "1";
  req2.body = "second payload";
  ASSERT_TRUE(http::write_request(client.value(), req2).is_ok());
  auto got2 = http::read_request(served.value());
  ASSERT_TRUE(got2.is_ok()) << got2.status();
  EXPECT_EQ(got2.value().body, "second payload");
}

TEST(HttpFraming, ResponseRoundTripOverSocket) {
  auto listener = net::TcpListener::bind(0);
  ASSERT_TRUE(listener.is_ok());
  auto client = net::TcpStream::connect("127.0.0.1", listener.value().port());
  ASSERT_TRUE(client.is_ok());
  auto served = listener.value().accept();
  ASSERT_TRUE(served.is_ok());

  http::Response resp;
  resp.status_code = 404;
  resp.reason = "Not Found";
  resp.body = "nope";
  ASSERT_TRUE(http::write_response(served.value(), resp, /*keep_alive=*/false).is_ok());

  auto got = http::read_response(client.value());
  ASSERT_TRUE(got.is_ok()) << got.status();
  EXPECT_EQ(got.value().status_code, 404);
  EXPECT_EQ(got.value().reason, "Not Found");
  EXPECT_EQ(got.value().body, "nope");
  EXPECT_EQ(got.value().header("content-length"), "4");
}

TEST(HttpFraming, EmptyBodyRequest) {
  auto listener = net::TcpListener::bind(0);
  ASSERT_TRUE(listener.is_ok());
  auto client = net::TcpStream::connect("127.0.0.1", listener.value().port());
  ASSERT_TRUE(client.is_ok());
  auto served = listener.value().accept();
  ASSERT_TRUE(served.is_ok());

  http::Request req;
  req.method = "GET";
  req.path = "/status";
  ASSERT_TRUE(http::write_request(client.value(), req).is_ok());
  auto got = http::read_request(served.value());
  ASSERT_TRUE(got.is_ok());
  EXPECT_TRUE(got.value().body.empty());
}

TEST(HttpFraming, ConnectionCloseHeaderRespected) {
  auto listener = net::TcpListener::bind(0);
  ASSERT_TRUE(listener.is_ok());
  auto client = net::TcpStream::connect("127.0.0.1", listener.value().port());
  ASSERT_TRUE(client.is_ok());
  auto served = listener.value().accept();
  ASSERT_TRUE(served.is_ok());

  http::Request req;
  req.headers["connection"] = "close";
  ASSERT_TRUE(http::write_request(client.value(), req).is_ok());
  auto got = http::read_request(served.value());
  ASSERT_TRUE(got.is_ok());
  EXPECT_FALSE(got.value().keep_alive());
}

}  // namespace
}  // namespace gae::rpc
