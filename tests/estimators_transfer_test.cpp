#include "estimators/transfer_estimator.h"

#include <gtest/gtest.h>

namespace gae::estimators {
namespace {

class TransferTest : public ::testing::Test {
 protected:
  TransferTest() {
    grid_.add_site("a");
    grid_.add_site("b");
    grid_.set_default_link({100e6, from_millis(20)});  // 100 MB/s, 20 ms
  }
  sim::Grid grid_;
};

TEST_F(TransferTest, PerfectProbeMatchesLink) {
  TransferEstimatorOptions opts;
  opts.probe_noise = 0.0;
  FileTransferEstimator est(grid_, opts);
  auto r = est.estimate("a", "b", 200'000'000, 0);
  ASSERT_TRUE(r.is_ok());
  // 2 s transfer + 20 ms latency.
  EXPECT_NEAR(r.value().seconds, 2.02, 1e-9);
  EXPECT_DOUBLE_EQ(r.value().bandwidth_bytes_per_sec, 100e6);
}

TEST_F(TransferTest, SameSiteIsFree) {
  FileTransferEstimator est(grid_);
  auto r = est.estimate("a", "a", 1'000'000'000, 0);
  ASSERT_TRUE(r.is_ok());
  EXPECT_DOUBLE_EQ(r.value().seconds, 0.0);
}

TEST_F(TransferTest, UnknownSitesRejected) {
  FileTransferEstimator est(grid_);
  EXPECT_EQ(est.estimate("a", "zz", 1, 0).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(est.estimate("zz", "a", 1, 0).status().code(), StatusCode::kNotFound);
}

TEST_F(TransferTest, NoisyProbeStaysCloseToTruth) {
  TransferEstimatorOptions opts;
  opts.probe_noise = 0.05;
  opts.probe_ttl_seconds = 0.0;  // re-probe every call
  FileTransferEstimator est(grid_, opts);
  double sum = 0;
  const int n = 200;
  for (int i = 0; i < n; ++i) {
    auto r = est.estimate("a", "b", 100'000'000, from_seconds(i + 1));
    ASSERT_TRUE(r.is_ok());
    sum += r.value().bandwidth_bytes_per_sec;
  }
  EXPECT_NEAR(sum / n, 100e6, 5e6);  // unbiased around the true bandwidth
}

TEST_F(TransferTest, ProbeCachedWithinTtl) {
  TransferEstimatorOptions opts;
  opts.probe_noise = 0.2;
  opts.probe_ttl_seconds = 300.0;
  FileTransferEstimator est(grid_, opts);

  auto first = est.estimate("a", "b", 1'000'000, 0);
  ASSERT_TRUE(first.is_ok());
  auto again = est.estimate("a", "b", 1'000'000, from_seconds(100));
  ASSERT_TRUE(again.is_ok());
  EXPECT_DOUBLE_EQ(first.value().bandwidth_bytes_per_sec,
                   again.value().bandwidth_bytes_per_sec);  // cached

  auto cached = est.cached_bandwidth("a", "b");
  ASSERT_TRUE(cached.is_ok());
  EXPECT_DOUBLE_EQ(cached.value(), first.value().bandwidth_bytes_per_sec);
  EXPECT_FALSE(est.cached_bandwidth("b", "a").is_ok());
}

TEST_F(TransferTest, ProbeRefreshedAfterTtl) {
  TransferEstimatorOptions opts;
  opts.probe_noise = 0.2;
  opts.probe_ttl_seconds = 60.0;
  FileTransferEstimator est(grid_, opts);
  auto first = est.estimate("a", "b", 1, 0);
  auto later = est.estimate("a", "b", 1, from_seconds(120));
  ASSERT_TRUE(first.is_ok());
  ASSERT_TRUE(later.is_ok());
  EXPECT_NE(first.value().bandwidth_bytes_per_sec, later.value().bandwidth_bytes_per_sec);
}

TEST_F(TransferTest, EstimateScalesLinearlyWithSize) {
  TransferEstimatorOptions opts;
  opts.probe_noise = 0.0;
  FileTransferEstimator est(grid_, opts);
  const double t1 = est.estimate("a", "b", 100'000'000, 0).value().seconds;
  const double t2 = est.estimate("a", "b", 200'000'000, 0).value().seconds;
  // Latency aside, doubling the size doubles the transfer portion.
  EXPECT_NEAR(t2 - t1, 1.0, 1e-9);
}

TEST(LoopbackBandwidth, MeasuresSomethingPlausible) {
  auto bw = measure_loopback_bandwidth(8'000'000);  // 8 MB through loopback
  ASSERT_TRUE(bw.is_ok()) << bw.status();
  // Loopback should beat 10 MB/s on any machine this runs on.
  EXPECT_GT(bw.value(), 10e6);
}

}  // namespace
}  // namespace gae::estimators
