#include "clarens/session_store.h"

#include <gtest/gtest.h>

#include "clarens/host.h"
#include "common/clock.h"

namespace gae::clarens {
namespace {

using rpc::Struct;
using rpc::Value;

class SessionStoreTest : public ::testing::Test {
 protected:
  SessionStoreTest() : store_(clock_) {}
  ManualClock clock_;
  SessionStateStore store_;
};

TEST_F(SessionStoreTest, PutGetRoundTrip) {
  Struct doc;
  doc["dataset"] = Value("run2026");
  doc["cuts"] = Value(rpc::Array{Value("pt>20"), Value("eta<2.4")});
  ASSERT_TRUE(store_.put("alice", "analysis-1", Value(doc)).is_ok());

  auto loaded = store_.get("alice", "analysis-1");
  ASSERT_TRUE(loaded.is_ok());
  EXPECT_EQ(loaded.value().content.get_string("dataset", ""), "run2026");
  EXPECT_EQ(loaded.value().version, 1);
}

TEST_F(SessionStoreTest, VersionsBumpOnOverwrite) {
  store_.put("alice", "k", Value(1));
  store_.put("alice", "k", Value(2));
  auto doc = store_.get("alice", "k");
  ASSERT_TRUE(doc.is_ok());
  EXPECT_EQ(doc.value().version, 2);
  EXPECT_EQ(doc.value().content.as_int(), 2);
}

TEST_F(SessionStoreTest, OptimisticConcurrency) {
  store_.put("alice", "k", Value(1));
  // Correct expected version succeeds.
  EXPECT_TRUE(store_.put("alice", "k", Value(2), 1).is_ok());
  // Stale expected version fails.
  EXPECT_EQ(store_.put("alice", "k", Value(3), 1).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(store_.get("alice", "k").value().content.as_int(), 2);
}

TEST_F(SessionStoreTest, UsersIsolated) {
  store_.put("alice", "k", Value("alice-data"));
  store_.put("bob", "k", Value("bob-data"));
  EXPECT_EQ(store_.get("alice", "k").value().content.as_string(), "alice-data");
  EXPECT_EQ(store_.get("bob", "k").value().content.as_string(), "bob-data");
  EXPECT_FALSE(store_.get("eve", "k").is_ok());
  EXPECT_EQ(store_.total_documents(), 2u);
}

TEST_F(SessionStoreTest, ListAndRemove) {
  store_.put("alice", "b", Value(1));
  store_.put("alice", "a", Value(2));
  EXPECT_EQ(store_.list("alice"), (std::vector<std::string>{"a", "b"}));
  ASSERT_TRUE(store_.remove("alice", "a").is_ok());
  EXPECT_EQ(store_.remove("alice", "a").code(), StatusCode::kNotFound);
  EXPECT_EQ(store_.list("alice"), std::vector<std::string>{"b"});
  EXPECT_TRUE(store_.list("nobody").empty());
}

TEST_F(SessionStoreTest, Validation) {
  EXPECT_EQ(store_.put("", "k", Value(1)).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(store_.put("alice", "", Value(1)).code(), StatusCode::kInvalidArgument);
}

TEST_F(SessionStoreTest, UpdatedAtTracksClock) {
  clock_.advance_to(from_seconds(42));
  store_.put("alice", "k", Value(1));
  EXPECT_EQ(store_.get("alice", "k").value().updated_at, from_seconds(42));
}

class SessionRpcTest : public ::testing::Test {
 protected:
  SessionRpcTest() : host_("host", clock_), store_(clock_) {
    host_.auth().register_user("alice", "pw");
    host_.auth().register_user("bob", "pw");
    host_.acl().allow("*", "session.");
    register_session_methods(host_, store_);
    alice_ = host_.call("system.login", {Value("alice"), Value("pw")}).value().as_string();
    bob_ = host_.call("system.login", {Value("bob"), Value("pw")}).value().as_string();
  }

  ManualClock clock_;
  ClarensHost host_;
  SessionStateStore store_;
  std::string alice_, bob_;
};

TEST_F(SessionRpcTest, SaveLoadViaRpc) {
  Struct doc;
  doc["plot"] = Value("mass-histogram");
  auto saved = host_.call("session.save", {Value("s1"), Value(doc)}, alice_);
  ASSERT_TRUE(saved.is_ok()) << saved.status();
  EXPECT_EQ(saved.value().get_int("version", 0), 1);

  auto loaded = host_.call("session.load", {Value("s1")}, alice_);
  ASSERT_TRUE(loaded.is_ok());
  EXPECT_EQ(loaded.value().at("content").get_string("plot", ""), "mass-histogram");
}

TEST_F(SessionRpcTest, DocumentsNamespacedByCaller) {
  host_.call("session.save", {Value("s1"), Value("alice-doc")}, alice_);
  // bob cannot see alice's document.
  EXPECT_EQ(host_.call("session.load", {Value("s1")}, bob_).status().code(),
            StatusCode::kNotFound);
  auto bob_list = host_.call("session.list", {}, bob_);
  ASSERT_TRUE(bob_list.is_ok());
  EXPECT_TRUE(bob_list.value().as_array().empty());
}

TEST_F(SessionRpcTest, DeleteViaRpc) {
  host_.call("session.save", {Value("s1"), Value(1)}, alice_);
  ASSERT_TRUE(host_.call("session.delete", {Value("s1")}, alice_).is_ok());
  EXPECT_EQ(host_.call("session.load", {Value("s1")}, alice_).status().code(),
            StatusCode::kNotFound);
}

TEST_F(SessionRpcTest, RequiresAuthentication) {
  EXPECT_EQ(host_.call("session.list", {}).status().code(),
            StatusCode::kUnauthenticated);
}

TEST_F(SessionRpcTest, ConflictSurfacesOverRpc) {
  host_.call("session.save", {Value("s1"), Value(1)}, alice_);
  auto conflict =
      host_.call("session.save", {Value("s1"), Value(2), Value(0)}, alice_);
  ASSERT_FALSE(conflict.is_ok());
  EXPECT_EQ(conflict.status().code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace gae::clarens
