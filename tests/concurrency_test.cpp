// Thread pool, channel, clock and id-generation behaviour under concurrency.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "common/channel.h"
#include "common/clock.h"
#include "common/id.h"
#include "common/thread_pool.h"

namespace gae {
namespace {

TEST(ThreadPool, ExecutesAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(pool.submit([&count] { count.fetch_add(1); }));
  }
  pool.shutdown(true);
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, RejectsAfterShutdown) {
  ThreadPool pool(2);
  pool.shutdown(true);
  EXPECT_FALSE(pool.submit([] {}));
}

TEST(ThreadPool, AtLeastOneWorkerEvenIfZeroRequested) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  std::atomic<bool> ran{false};
  pool.submit([&ran] { ran.store(true); });
  pool.shutdown(true);
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPool, DrainFalseDropsQueuedWork) {
  ThreadPool pool(1);
  std::atomic<int> done{0};
  std::atomic<bool> started{false};
  std::atomic<bool> release{false};
  pool.submit([&] {
    started.store(true);
    while (!release.load()) std::this_thread::yield();
    done.fetch_add(1);
  });
  while (!started.load()) std::this_thread::yield();  // worker holds task 1
  for (int i = 0; i < 50; ++i) {
    pool.submit([&done] { done.fetch_add(1); });
  }
  // Begin a non-draining shutdown while the worker is still pinned on the
  // first task: the queue is cleared before the worker can reach it.
  std::thread stopper([&pool] { pool.shutdown(false); });
  while (pool.queued() > 0) std::this_thread::yield();
  release.store(true);
  stopper.join();
  EXPECT_EQ(done.load(), 1);  // only the in-flight task ran
}

TEST(ThreadPool, ConcurrentShutdownCallsAreSafe) {
  // Regression: two threads calling shutdown() concurrently used to race
  // into joining the same std::thread (UB). The join phase is now
  // serialised, so any mix of drain modes from any number of callers is
  // safe and every submitted-before-shutdown task either runs or is
  // dropped — never crashes.
  for (int round = 0; round < 50; ++round) {
    ThreadPool pool(4);
    std::atomic<int> done{0};
    for (int i = 0; i < 32; ++i) {
      pool.submit([&done] { done.fetch_add(1); });
    }
    std::vector<std::thread> stoppers;
    for (int i = 0; i < 4; ++i) {
      stoppers.emplace_back([&pool, i] { pool.shutdown(/*drain=*/i % 2 == 0); });
    }
    for (auto& t : stoppers) t.join();
    EXPECT_FALSE(pool.submit([] {}));
    EXPECT_LE(done.load(), 32);
  }
}

TEST(ThreadPool, ParallelSubmitters) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::vector<std::thread> submitters;
  for (int t = 0; t < 8; ++t) {
    submitters.emplace_back([&pool, &count] {
      for (int i = 0; i < 250; ++i) pool.submit([&count] { count.fetch_add(1); });
    });
  }
  for (auto& t : submitters) t.join();
  pool.shutdown(true);
  EXPECT_EQ(count.load(), 2000);
}

TEST(Channel, SendReceiveOrder) {
  Channel<int> ch;
  ch.send(1);
  ch.send(2);
  ch.send(3);
  EXPECT_EQ(ch.receive().value(), 1);
  EXPECT_EQ(ch.receive().value(), 2);
  EXPECT_EQ(ch.receive().value(), 3);
}

TEST(Channel, TryReceiveEmpty) {
  Channel<int> ch;
  EXPECT_FALSE(ch.try_receive().has_value());
}

TEST(Channel, BoundedTrySendFull) {
  Channel<int> ch(2);
  EXPECT_TRUE(ch.try_send(1));
  EXPECT_TRUE(ch.try_send(2));
  EXPECT_FALSE(ch.try_send(3));
  ch.receive();
  EXPECT_TRUE(ch.try_send(3));
}

TEST(Channel, CloseDrainsResidueThenNullopt) {
  Channel<int> ch;
  ch.send(7);
  ch.close();
  EXPECT_FALSE(ch.send(8));
  EXPECT_EQ(ch.receive().value(), 7);
  EXPECT_FALSE(ch.receive().has_value());
}

TEST(Channel, CloseUnblocksReceiver) {
  Channel<int> ch;
  std::atomic<bool> entered{false};
  std::thread receiver([&] {
    entered.store(true);
    EXPECT_FALSE(ch.receive().has_value());
  });
  // Close may land before or after receive() blocks; both orders must yield
  // the nullopt wakeup. Waiting for the thread to reach receive() exercises
  // the blocked path without betting on a timer.
  while (!entered.load()) std::this_thread::yield();
  ch.close();
  receiver.join();
}

TEST(Channel, ManyProducersOneConsumer) {
  Channel<int> ch(64);
  std::atomic<int> produced{0};
  std::vector<std::thread> producers;
  for (int t = 0; t < 4; ++t) {
    producers.emplace_back([&] {
      for (int i = 0; i < 500; ++i) {
        if (ch.send(i)) produced.fetch_add(1);
      }
    });
  }
  int consumed = 0;
  std::thread consumer([&] {
    while (consumed < 2000) {
      if (ch.receive().has_value()) ++consumed;
    }
  });
  for (auto& t : producers) t.join();
  consumer.join();
  EXPECT_EQ(produced.load(), 2000);
  EXPECT_EQ(consumed, 2000);
}

TEST(ManualClock, AdvancesMonotonically) {
  ManualClock clock(100);
  EXPECT_EQ(clock.now(), 100);
  clock.advance_to(200);
  EXPECT_EQ(clock.now(), 200);
  clock.advance_to(150);  // going backwards is ignored
  EXPECT_EQ(clock.now(), 200);
  clock.advance_by(50);
  EXPECT_EQ(clock.now(), 250);
}

TEST(WallClock, MovesForward) {
  WallClock clock;
  const SimTime a = clock.now();
  // Spin until the clock ticks over instead of sleeping a guessed interval:
  // microsecond resolution makes this a handful of iterations.
  SimTime b = a;
  while (b <= a) {
    std::this_thread::yield();
    b = clock.now();
  }
  EXPECT_GT(b, a);
}

TEST(Ids, UniqueAcrossThreads) {
  std::vector<std::thread> threads;
  std::mutex mu;
  std::set<std::string> ids;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 500; ++i) {
        const std::string id = make_id("task");
        std::lock_guard<std::mutex> lock(mu);
        ids.insert(id);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ids.size(), 2000u);
}

TEST(Ids, TokensLookRandom) {
  const std::string a = make_token();
  const std::string b = make_token();
  EXPECT_EQ(a.size(), 32u);
  EXPECT_NE(a, b);
}

TEST(TimeTypes, Conversions) {
  EXPECT_EQ(from_seconds(1.5), 1'500'000);
  EXPECT_DOUBLE_EQ(to_seconds(2'000'000), 2.0);
  EXPECT_EQ(from_millis(1.0), 1000);
  EXPECT_DOUBLE_EQ(to_millis(1500), 1.5);
  EXPECT_EQ(from_seconds(-0.5), -500'000);
}

}  // namespace
}  // namespace gae
