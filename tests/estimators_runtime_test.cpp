#include "estimators/runtime_estimator.h"

#include <gtest/gtest.h>

#include "estimators/estimate_db.h"
#include "estimators/recorder.h"
#include "exec/execution_service.h"
#include "workload/paragon_trace.h"
#include "workload/task_generator.h"

namespace gae::estimators {
namespace {

std::map<std::string, std::string> attrs(const std::string& exe, const std::string& login,
                                         const std::string& queue, int nodes) {
  return {{"executable", exe},
          {"login", login},
          {"queue", queue},
          {"nodes", std::to_string(nodes)}};
}

TEST(TaskHistoryStore, AddAndCap) {
  TaskHistoryStore store(3);
  for (int i = 0; i < 5; ++i) {
    store.add({{}, static_cast<double>(i), 0, true});
  }
  ASSERT_EQ(store.size(), 3u);
  EXPECT_DOUBLE_EQ(store.entries().front().runtime_seconds, 2.0);  // oldest dropped
  store.clear();
  EXPECT_TRUE(store.empty());
}

TEST(SimilarityTemplate, MatchesOnNamedKeys) {
  SimilarityTemplate tmpl{{"executable", "login"}};
  EXPECT_TRUE(tmpl.matches(attrs("a", "u", "q1", 4), attrs("a", "u", "q2", 8)));
  EXPECT_FALSE(tmpl.matches(attrs("a", "u", "q", 4), attrs("a", "v", "q", 4)));
  EXPECT_EQ(tmpl.name(), "executable+login");
  EXPECT_EQ(SimilarityTemplate{}.name(), "(any)");
}

TEST(SimilarityTemplate, MissingAttributeNeverMatches) {
  SimilarityTemplate tmpl{{"executable"}};
  std::map<std::string, std::string> empty;
  EXPECT_FALSE(tmpl.matches(empty, attrs("a", "u", "q", 1)));
}

TEST(SimilarityMatcher, PrefersMostSpecificTemplate) {
  TaskHistoryStore store;
  // 3 entries matching exe+login, plus noise from other users.
  for (int i = 0; i < 3; ++i) store.add({attrs("a", "u", "q", 4), 100, 0, true});
  for (int i = 0; i < 10; ++i) store.add({attrs("a", "other", "q", 4), 500, 0, true});

  SimilarityMatcher matcher;
  auto match = matcher.find_similar(store, attrs("a", "u", "q", 4), 3);
  EXPECT_EQ(match.entries.size(), 3u);
  EXPECT_EQ(match.template_name, "executable+login+queue+nodes");
}

TEST(SimilarityMatcher, FallsBackWhenTooFewMatches) {
  TaskHistoryStore store;
  store.add({attrs("a", "u", "q", 4), 100, 0, true});  // only one exact match
  for (int i = 0; i < 5; ++i) store.add({attrs("a", "v", "q", 8), 200, 0, true});

  SimilarityMatcher matcher;
  auto match = matcher.find_similar(store, attrs("a", "u", "q", 4), 3);
  // Fell through to the "executable" template: all 6 entries share it.
  EXPECT_EQ(match.template_name, "executable");
  EXPECT_EQ(match.entries.size(), 6u);
}

TEST(SimilarityMatcher, UnsuccessfulEntriesExcluded) {
  TaskHistoryStore store;
  store.add({attrs("a", "u", "q", 4), 100, 0, true});
  store.add({attrs("a", "u", "q", 4), 5, 0, false});  // crashed run
  SimilarityMatcher matcher;
  auto match = matcher.find_similar(store, attrs("a", "u", "q", 4), 1);
  EXPECT_EQ(match.entries.size(), 1u);
  EXPECT_DOUBLE_EQ(match.entries[0]->runtime_seconds, 100.0);
}

TEST(SimilarityMatcher, EmptyHistoryYieldsEmptyMatch) {
  TaskHistoryStore store;
  SimilarityMatcher matcher;
  EXPECT_TRUE(matcher.find_similar(store, attrs("a", "u", "q", 1), 1).entries.empty());
}

TEST(RuntimeEstimator, EmptyHistoryIsError) {
  RuntimeEstimator est(std::make_shared<TaskHistoryStore>());
  auto r = est.estimate(attrs("a", "u", "q", 1));
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

TEST(RuntimeEstimator, MeanEstimate) {
  auto store = std::make_shared<TaskHistoryStore>();
  RuntimeEstimatorOptions opts;
  opts.kind = EstimatorKind::kMean;
  RuntimeEstimator est(store, SimilarityMatcher(), opts);
  est.record(attrs("a", "u", "q", 4), 90, 0);
  est.record(attrs("a", "u", "q", 4), 110, 0);
  est.record(attrs("a", "u", "q", 4), 100, 0);

  auto r = est.estimate(attrs("a", "u", "q", 4));
  ASSERT_TRUE(r.is_ok());
  EXPECT_DOUBLE_EQ(r.value().seconds, 100.0);
  EXPECT_EQ(r.value().samples, 3u);
  EXPECT_EQ(r.value().used, EstimatorKind::kMean);
  EXPECT_GT(r.value().stddev, 0.0);
}

TEST(RuntimeEstimator, LinearRegressionOnNodes) {
  auto store = std::make_shared<TaskHistoryStore>();
  RuntimeEstimatorOptions opts;
  opts.kind = EstimatorKind::kLinearRegression;
  RuntimeEstimator est(store, SimilarityMatcher(), opts);
  // Perfectly linear: runtime = 1000 - 50 * nodes.
  for (int nodes : {2, 4, 8, 16}) {
    est.record(attrs("a", "u", "q", nodes), 1000.0 - 50.0 * nodes, 0);
  }
  auto r = est.estimate(attrs("a", "u", "q", 12));
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value().used, EstimatorKind::kLinearRegression);
  EXPECT_NEAR(r.value().seconds, 400.0, 1e-6);
}

TEST(RuntimeEstimator, RegressionRejectsNonPositivePrediction) {
  auto store = std::make_shared<TaskHistoryStore>();
  RuntimeEstimatorOptions opts;
  opts.kind = EstimatorKind::kLinearRegression;
  RuntimeEstimator est(store, SimilarityMatcher(), opts);
  for (int nodes : {2, 4, 8}) {
    est.record(attrs("a", "u", "q", nodes), 100.0 - 12.0 * nodes, 0);
  }
  // Extrapolating to 16 nodes would be negative: falls back to the mean.
  auto r = est.estimate(attrs("a", "u", "q", 16));
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value().used, EstimatorKind::kMean);
  EXPECT_GT(r.value().seconds, 0.0);
}

TEST(RuntimeEstimator, HybridUsesRegressionOnlyWithGoodFit) {
  RuntimeEstimatorOptions opts;
  opts.kind = EstimatorKind::kHybrid;
  opts.min_r_squared = 0.5;

  {
    // Clean linear trend: hybrid takes the regression.
    RuntimeEstimator est(std::make_shared<TaskHistoryStore>(), SimilarityMatcher(), opts);
    for (int nodes : {1, 2, 3, 4, 5}) {
      est.record(attrs("a", "u", "q", nodes), 100.0 * nodes, 0);
    }
    auto r = est.estimate(attrs("a", "u", "q", 6));
    ASSERT_TRUE(r.is_ok());
    EXPECT_EQ(r.value().used, EstimatorKind::kLinearRegression);
    EXPECT_NEAR(r.value().seconds, 600.0, 1e-6);
  }
  {
    // No relation between nodes and runtime: hybrid stays with the mean.
    RuntimeEstimator est(std::make_shared<TaskHistoryStore>(), SimilarityMatcher(), opts);
    est.record(attrs("a", "u", "q", 1), 500, 0);
    est.record(attrs("a", "u", "q", 8), 480, 0);
    est.record(attrs("a", "u", "q", 2), 520, 0);
    est.record(attrs("a", "u", "q", 6), 510, 0);
    est.record(attrs("a", "u", "q", 3), 490, 0);
    auto r = est.estimate(attrs("a", "u", "q", 4));
    ASSERT_TRUE(r.is_ok());
    EXPECT_EQ(r.value().used, EstimatorKind::kMean);
    EXPECT_NEAR(r.value().seconds, 500.0, 1.0);
  }
}

TEST(RuntimeEstimator, NonNumericRegressionAttributeFallsBack) {
  RuntimeEstimatorOptions opts;
  opts.kind = EstimatorKind::kLinearRegression;
  RuntimeEstimator est(std::make_shared<TaskHistoryStore>(), SimilarityMatcher(), opts);
  std::map<std::string, std::string> a = {{"executable", "x"}, {"nodes", "many"}};
  est.record(a, 10, 0);
  est.record(a, 20, 0);
  est.record(a, 30, 0);
  auto r = est.estimate(a);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value().used, EstimatorKind::kMean);
  EXPECT_DOUBLE_EQ(r.value().seconds, 20.0);
}

// End-to-end accuracy on a synthetic Paragon trace: the fig. 5 regime.
TEST(RuntimeEstimator, TraceAccuracyInPaperRegime) {
  Rng rng(2005);
  workload::PopulationOptions popts;
  popts.num_applications = 12;
  popts.sigma_within = 0.16;
  auto pop = workload::ApplicationPopulation::make(rng, popts);
  workload::TraceOptions topts;
  topts.num_records = 120;
  topts.failure_rate = 0.0;
  const auto trace = workload::generate_trace(pop, rng, topts);

  auto store = std::make_shared<TaskHistoryStore>();
  RuntimeEstimatorOptions eopts;
  eopts.min_matches = 2;
  RuntimeEstimator est(store, SimilarityMatcher(), eopts);
  for (std::size_t i = 0; i < 100; ++i) {
    est.record(workload::record_attributes(trace[i]), trace[i].runtime_seconds(),
               trace[i].complete_time);
  }

  double total_abs_pct_error = 0;
  for (std::size_t i = 100; i < 120; ++i) {
    auto r = est.estimate(workload::record_attributes(trace[i]));
    ASSERT_TRUE(r.is_ok());
    const double actual = trace[i].runtime_seconds();
    total_abs_pct_error += std::abs(actual - r.value().seconds) / actual * 100.0;
  }
  const double mean_error = total_abs_pct_error / 20.0;
  // Paper reports 13.53%; accept the same order of magnitude.
  EXPECT_LT(mean_error, 40.0);
}

TEST(SiteRuntimeRecorder, RecordsCompletionsIntoHistory) {
  sim::Simulation sim;
  sim::Grid grid;
  grid.add_site("s").add_node("n0", 1.0, nullptr);
  exec::ExecutionService service(sim, grid, "s");

  auto store = std::make_shared<TaskHistoryStore>();
  auto estimator = std::make_shared<RuntimeEstimator>(store);
  SiteRuntimeRecorder recorder(service, estimator);

  exec::TaskSpec spec;
  spec.id = "t1";
  spec.work_seconds = 42.0;
  spec.attributes = attrs("a", "u", "q", 1);
  ASSERT_TRUE(service.submit(spec).is_ok());
  sim.run();

  EXPECT_EQ(recorder.recorded(), 1u);
  ASSERT_EQ(store->size(), 1u);
  EXPECT_NEAR(store->entries()[0].runtime_seconds, 42.0, 1e-6);
  EXPECT_TRUE(store->entries()[0].successful);

  // A subsequent estimate for the same attributes hits this history.
  auto r = estimator->estimate(attrs("a", "u", "q", 1));
  ASSERT_TRUE(r.is_ok());
  EXPECT_NEAR(r.value().seconds, 42.0, 1e-6);
}

TEST(SiteRuntimeRecorder, FailedTasksRecordedUnsuccessful) {
  sim::Simulation sim;
  sim::Grid grid;
  grid.add_site("s").add_node("n0", 1.0, nullptr);
  exec::ExecutionService service(sim, grid, "s");
  auto store = std::make_shared<TaskHistoryStore>();
  SiteRuntimeRecorder recorder(service, std::make_shared<RuntimeEstimator>(store));

  exec::TaskSpec spec;
  spec.id = "t1";
  spec.work_seconds = 100.0;
  ASSERT_TRUE(service.submit(spec).is_ok());
  sim.run_until(from_seconds(10));
  service.inject_task_failure("t1", "oops");
  ASSERT_EQ(store->size(), 1u);
  EXPECT_FALSE(store->entries()[0].successful);
}

TEST(EstimateDatabase, PutGetErase) {
  EstimateDatabase db;
  EXPECT_FALSE(db.get("t1").is_ok());
  db.put("t1", 120.0);
  EXPECT_TRUE(db.has("t1"));
  EXPECT_DOUBLE_EQ(db.get("t1").value(), 120.0);
  db.put("t1", 150.0);  // overwrite
  EXPECT_DOUBLE_EQ(db.get("t1").value(), 150.0);
  db.erase("t1");
  EXPECT_FALSE(db.has("t1"));
  EXPECT_EQ(db.size(), 0u);
}

}  // namespace
}  // namespace gae::estimators
