// Overload resilience, end to end: the adaptive admission controller in
// isolation (virtual time, exact), deadline propagation across the wire,
// well-formed 503 sheds, retry-budget storm suppression, the brownout
// degraded modes of the estimator and jobmon bindings, and a live-TCP storm
// proving shed order follows criticality.
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "clarens/host.h"
#include "common/admission.h"
#include "common/clock.h"
#include "common/retry.h"
#include "estimators/rpc_binding.h"
#include "estimators/service.h"
#include "jobmon/rpc_binding.h"
#include "jobmon/service.h"
#include "net/socket.h"
#include "rpc/client.h"
#include "rpc/deadline.h"
#include "rpc/server.h"
#include "rpc/xmlrpc.h"
#include "sim/load.h"
#include "telemetry/metrics.h"

namespace gae {
namespace {

using rpc::Array;
using rpc::CallContext;
using rpc::Struct;
using rpc::Value;

// ---------------------------------------------------------------------------
// AdmissionController in isolation (ManualClock: every assertion is exact)
// ---------------------------------------------------------------------------

TEST(AdmissionAimd, RaisesWhenFastClampsWhenSlow) {
  ManualClock clock;
  AdmissionOptions o;
  o.min_limit = 2;
  o.initial_limit = 10;
  o.max_limit = 64;
  o.samples_per_update = 4;
  o.ewma_alpha = 1.0;  // track the last sample exactly
  o.latency_tolerance = 2.0;
  o.decrease_factor = 0.8;
  o.brownout_hold_ms = 1000;
  AdmissionController c(clock, o);
  ASSERT_EQ(c.limit(), 10u);

  // Four fast samples anchor the floor at 1ms and earn an additive raise.
  for (int i = 0; i < 4; ++i) c.on_sample(1000, false);
  EXPECT_EQ(c.limit(), 11u);
  EXPECT_EQ(c.snapshot().raises, 1u);

  // Latency drifts to 5x the floor: multiplicative clamp (11 * 0.8 -> 8)
  // and the brownout hold engages.
  for (int i = 0; i < 4; ++i) c.on_sample(5000, false);
  EXPECT_EQ(c.limit(), 8u);
  EXPECT_EQ(c.snapshot().clamps, 1u);
  EXPECT_TRUE(c.browned_out());

  // Brownout expires brownout_hold_ms after the clamp (load is zero).
  clock.advance_by(2'000'000);
  EXPECT_FALSE(c.browned_out());

  // Sustained congestion clamps again and again but never below min_limit.
  for (int round = 0; round < 8; ++round) {
    for (int i = 0; i < 4; ++i) c.on_sample(5000, false);
  }
  EXPECT_EQ(c.limit(), o.min_limit);
}

TEST(AdmissionTiers, ShedOrderFollowsCriticality) {
  ManualClock clock;
  AdmissionOptions o;
  o.min_limit = o.initial_limit = o.max_limit = 10;
  o.tier_fraction = {1.0, 0.9, 0.75};
  AdmissionController c(clock, o);

  // Bulk may only occupy 75% of the limit (ceiling 7.5 -> 7 slots).
  int bulk = 0;
  while (c.try_admit(Criticality::kBulk)) ++bulk;
  EXPECT_EQ(bulk, 7);
  // Status fills to 90% (two more), control to the full limit (one more).
  int status = 0;
  while (c.try_admit(Criticality::kStatus)) ++status;
  EXPECT_EQ(status, 2);
  int control = 0;
  while (c.try_admit(Criticality::kControl)) ++control;
  EXPECT_EQ(control, 1);
  EXPECT_EQ(c.in_flight(), 10u);

  // Each fill loop ended with exactly one refusal, counted per tier.
  const auto snap = c.snapshot();
  EXPECT_EQ(snap.shed[static_cast<int>(Criticality::kBulk)], 1u);
  EXPECT_EQ(snap.shed[static_cast<int>(Criticality::kStatus)], 1u);
  EXPECT_EQ(snap.shed[static_cast<int>(Criticality::kControl)], 1u);
  for (int i = 0; i < 10; ++i) c.release();
  EXPECT_EQ(c.in_flight(), 0u);
}

TEST(AdmissionCoDel, QueueBoundArmsShedsAndResets) {
  ManualClock clock;
  AdmissionOptions o;  // defaults: target 5ms, interval 100ms
  AdmissionController c(clock, o);
  clock.advance_to(1'000'000);

  // First observation above target arms the interval but admits.
  EXPECT_FALSE(c.queue_overloaded(10'000));
  clock.advance_by(50'000);
  EXPECT_FALSE(c.queue_overloaded(10'000));  // interval not yet elapsed
  clock.advance_by(60'000);                  // 110ms above target: shed
  EXPECT_TRUE(c.queue_overloaded(10'000));
  EXPECT_EQ(c.snapshot().queue_shed, 1u);

  // One observation back below target resets the bound.
  EXPECT_FALSE(c.queue_overloaded(1'000));
  EXPECT_FALSE(c.queue_overloaded(10'000));  // re-arming, not shedding
  EXPECT_EQ(c.snapshot().queue_shed, 1u);
}

TEST(RetryBudgetTest, TokenBucketCapsRetriesAtRatioOfFreshTraffic) {
  RetryBudget b(RetryBudgetOptions{0.5, 2.0});
  // Bucket starts full: two retries pass, the third is refused.
  EXPECT_TRUE(b.try_retry());
  EXPECT_TRUE(b.try_retry());
  EXPECT_FALSE(b.try_retry());
  EXPECT_EQ(b.exhausted(), 1u);
  // Two fresh requests deposit ratio each: one whole retry token.
  b.on_request();
  b.on_request();
  EXPECT_TRUE(b.try_retry());
  EXPECT_FALSE(b.try_retry());
}

// ---------------------------------------------------------------------------
// Deadline plane
// ---------------------------------------------------------------------------

TEST(DeadlineDispatch, ExpiredWorkRejectedBeforeHandlerRuns) {
  auto dispatcher = std::make_shared<rpc::Dispatcher>();
  telemetry::MetricsRegistry metrics;
  std::atomic<int> handler_calls{0};
  dispatcher->register_method("slow.op",
                              [&handler_calls](const Array&, const CallContext&) -> Result<Value> {
                                ++handler_calls;
                                return Value(static_cast<std::int64_t>(1));
                              });
  dispatcher->set_telemetry(&metrics, nullptr, "rpc");

  CallContext ctx;
  ctx.deadline_us = rpc::steady_now_us() - 1000;  // already expired
  const auto r = dispatcher->dispatch("slow.op", {}, ctx);
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(handler_calls.load(), 0);
  EXPECT_EQ(metrics.counter("rpc.server.slow.op.deadline_expired").value(), 1u);

  // A live deadline dispatches normally.
  ctx.deadline_us = rpc::steady_now_us() + 5'000'000;
  EXPECT_TRUE(dispatcher->dispatch("slow.op", {}, ctx).is_ok());
  EXPECT_EQ(handler_calls.load(), 1);
}

TEST(DeadlineWire, ZeroBudgetHeaderRejectedBeforeDispatch) {
  auto dispatcher = std::make_shared<rpc::Dispatcher>();
  std::atomic<int> handler_calls{0};
  dispatcher->register_method("echo.op",
                              [&handler_calls](const Array&, const CallContext&) -> Result<Value> {
                                ++handler_calls;
                                return Value(static_cast<std::int64_t>(1));
                              });
  rpc::RpcServer server(dispatcher, rpc::ServerOptions{0, 2});
  auto port = server.start();
  ASSERT_TRUE(port.is_ok());

  // A request that arrives with its whole budget already spent: the server
  // must answer DEADLINE_EXCEEDED without ever invoking the handler.
  const std::string body = rpc::xmlrpc::encode_call("echo.op", {Value(static_cast<std::int64_t>(1))});
  const std::string req = "POST /rpc HTTP/1.1\r\ncontent-type: text/xml\r\n"
                          "x-gae-deadline: 0\r\nconnection: close\r\ncontent-length: " +
                          std::to_string(body.size()) + "\r\n\r\n" + body;
  auto conn = net::TcpStream::connect("127.0.0.1", port.value());
  ASSERT_TRUE(conn.is_ok());
  conn.value().set_recv_timeout_ms(2000);
  conn.value().write_all(req);
  std::string resp;
  char buf[4096];
  for (;;) {
    auto r = conn.value().read_some(buf, sizeof(buf));
    if (!r.is_ok() || r.value() == 0) break;
    resp.append(buf, r.value());
  }
  server.stop();

  EXPECT_EQ(handler_calls.load(), 0);
  EXPECT_NE(resp.find("fault"), std::string::npos);
  // Fault code 100 + kDeadlineExceeded.
  EXPECT_NE(resp.find(std::to_string(rpc::status_to_fault_code(StatusCode::kDeadlineExceeded))),
            std::string::npos);
}

TEST(DeadlineWire, RemainingBudgetForwardedToDownstreamHop) {
  // Every deadline computation reads the overridden steady clock, so the
  // frontend can burn its 30ms virtually and the surviving budget is exact.
  ManualClock steady(1'000'000);
  rpc::set_steady_clock_override(&steady);
  struct Restore {
    ~Restore() { rpc::set_steady_clock_override(nullptr); }
  } restore;

  // Backend reports how much budget (ms) arrived with the request.
  auto backend_dispatcher = std::make_shared<rpc::Dispatcher>();
  backend_dispatcher->register_method(
      "backend.remaining", [](const Array&, const CallContext& ctx) -> Result<Value> {
        if (ctx.deadline_us == 0) return Value(static_cast<std::int64_t>(-1));
        return Value((ctx.deadline_us - rpc::steady_now_us()) / 1000);
      });
  rpc::RpcServer backend(backend_dispatcher, rpc::ServerOptions{0, 2});
  auto backend_port = backend.start();
  ASSERT_TRUE(backend_port.is_ok());

  // Frontend burns ~30ms of the budget, then calls the backend with NO
  // explicit deadline: the ambient deadline installed by its own dispatch
  // must ride the downstream x-gae-deadline header.
  auto frontend_dispatcher = std::make_shared<rpc::Dispatcher>();
  frontend_dispatcher->register_method(
      "frontend.op",
      [port = backend_port.value(), &steady](const Array&, const CallContext&) -> Result<Value> {
        steady.advance_by(from_millis(30));
        rpc::ClientOptions copts;
        copts.clock = &steady;
        rpc::RpcClient downstream({{"127.0.0.1", port}}, rpc::Protocol::kXmlRpc, copts);
        return downstream.call("backend.remaining", {});
      });
  rpc::RpcServer frontend(frontend_dispatcher, rpc::ServerOptions{0, 2});
  auto frontend_port = frontend.start();
  ASSERT_TRUE(frontend_port.is_ok());

  rpc::ClientOptions copts;
  copts.clock = &steady;
  rpc::RpcClient client({{"127.0.0.1", frontend_port.value()}}, rpc::Protocol::kXmlRpc, copts);
  rpc::CallOptions opts;
  opts.deadline_ms = 500;
  const auto r = client.call("frontend.op", {}, opts);
  frontend.stop();
  backend.stop();

  ASSERT_TRUE(r.is_ok()) << r.status().message();
  const std::int64_t remaining = r.value().as_int();
  // Virtual time makes the arithmetic exact: 500ms stamped by the client,
  // 30ms burned by the frontend, 470ms forwarded on the downstream header.
  EXPECT_EQ(remaining, 470);
}

TEST(DeadlineClient, ExpiredAmbientDeadlineFailsWithoutAnAttempt) {
  rpc::RpcClient client("127.0.0.1", 1);  // never contacted
  rpc::DeadlineScope expired(rpc::steady_now_us() - 1000);
  const auto r = client.call("any.op", {});
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(client.stats().attempts, 0u);
  EXPECT_EQ(client.stats().deadline_exceeded, 1u);
}

TEST(RetryBudgetClient, BudgetExhaustionStopsRetryStorm) {
  // A port with nothing listening: every attempt fails UNAVAILABLE
  // (retryable). The shared budget allows exactly one retry.
  std::uint16_t closed_port;
  {
    rpc::RpcServer server(std::make_shared<rpc::Dispatcher>(), rpc::ServerOptions{0, 1});
    auto port = server.start();
    ASSERT_TRUE(port.is_ok());
    closed_port = port.value();
    server.stop();
  }
  RetryBudget budget(RetryBudgetOptions{0.0, 1.0});
  rpc::ClientOptions copts;
  copts.sleep_ms = [](int) {};  // no real backoff sleeps
  rpc::RpcClient client({{"127.0.0.1", closed_port}}, rpc::Protocol::kXmlRpc, copts);
  rpc::CallOptions opts;
  opts.retry.max_attempts = 5;
  opts.retry.budget = &budget;
  const auto r = client.call("any.op", {}, opts);
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(client.stats().attempts, 2u);  // 1 fresh + 1 budgeted retry
  EXPECT_EQ(client.stats().retries, 1u);
  EXPECT_EQ(client.stats().retry_budget_exhausted, 1u);
  EXPECT_EQ(budget.exhausted(), 1u);
}

// ---------------------------------------------------------------------------
// 503 sheds on the wire
// ---------------------------------------------------------------------------

/// A server with a single admission slot plus a handler that parks inside it,
/// so every further request is deterministically shed.
class ShedTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dispatcher = std::make_shared<rpc::Dispatcher>();
    dispatcher->register_method("block.op",
                                [this](const Array&, const CallContext&) -> Result<Value> {
                                  std::unique_lock<std::mutex> lock(mutex_);
                                  entered_ = true;
                                  cv_.notify_all();
                                  cv_.wait(lock, [this] { return release_; });
                                  return Value(static_cast<std::int64_t>(1));
                                });
    dispatcher->register_method("echo.op", [](const Array&, const CallContext&) -> Result<Value> {
      return Value(static_cast<std::int64_t>(1));
    });
    AdmissionOptions aopts;
    aopts.min_limit = aopts.initial_limit = aopts.max_limit = 1;
    aopts.tier_fraction = {1.0, 1.0, 1.0};
    admission_ = std::make_unique<AdmissionController>(wall_, aopts);
    rpc::ServerOptions sopts;
    sopts.port = 0;
    sopts.num_workers = 3;
    sopts.admission = admission_.get();
    server_ = std::make_unique<rpc::RpcServer>(dispatcher, sopts);
    auto port = server_->start();
    ASSERT_TRUE(port.is_ok());
    port_ = port.value();

    // Occupy the only slot and wait until the handler holds its ticket.
    blocker_ = std::thread([this] {
      rpc::RpcClient c("127.0.0.1", port_);
      rpc::CallOptions opts;
      opts.retry = RetryPolicy::none();
      (void)c.call("block.op", {}, opts);
    });
    std::unique_lock<std::mutex> lock(mutex_);
    ASSERT_TRUE(cv_.wait_for(lock, std::chrono::seconds(5), [this] { return entered_; }));
  }

  void TearDown() override {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      release_ = true;
    }
    cv_.notify_all();
    if (blocker_.joinable()) blocker_.join();
    server_->stop();
  }

  /// Reads exactly one HTTP response (headers + content-length body).
  static std::string read_response(net::TcpStream& conn) {
    std::string data;
    char buf[4096];
    std::size_t header_end = std::string::npos;
    while ((header_end = data.find("\r\n\r\n")) == std::string::npos) {
      auto r = conn.read_some(buf, sizeof(buf));
      if (!r.is_ok() || r.value() == 0) return data;
      data.append(buf, r.value());
    }
    const std::size_t body_len = content_length(data);
    while (data.size() < header_end + 4 + body_len) {
      auto r = conn.read_some(buf, sizeof(buf));
      if (!r.is_ok() || r.value() == 0) break;
      data.append(buf, r.value());
    }
    return data;
  }

  static std::size_t content_length(const std::string& resp) {
    // Case-insensitive-enough header scan ("content-length" vs "Content-Length").
    std::size_t pos = resp.find("ontent-length:");
    if (pos == std::string::npos) return 0;
    pos = resp.find(':', pos) + 1;
    return static_cast<std::size_t>(std::strtoul(resp.c_str() + pos, nullptr, 10));
  }

  std::string shed_request(const std::string& extra_headers = "") const {
    const std::string body = rpc::xmlrpc::encode_call("echo.op", {Value(static_cast<std::int64_t>(1))});
    return "POST /rpc HTTP/1.1\r\ncontent-type: text/xml\r\n" + extra_headers +
           "content-length: " + std::to_string(body.size()) + "\r\n\r\n" + body;
  }

  WallClock wall_;
  std::unique_ptr<AdmissionController> admission_;
  std::unique_ptr<rpc::RpcServer> server_;
  std::uint16_t port_ = 0;
  std::thread blocker_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool entered_ = false;
  bool release_ = false;
};

TEST_F(ShedTest, ShedResponseIsWellFormed503AndKeepsTheConnection) {
  auto conn = net::TcpStream::connect("127.0.0.1", port_);
  ASSERT_TRUE(conn.is_ok());
  conn.value().set_recv_timeout_ms(2000);

  // First request on a keep-alive connection: shed, but the connection and
  // the framing both survive.
  conn.value().write_all(shed_request());
  const std::string first = read_response(conn.value());
  ASSERT_NE(first.find("HTTP/1.1 503"), std::string::npos) << first;
  const std::size_t header_end = first.find("\r\n\r\n");
  ASSERT_NE(header_end, std::string::npos);
  const std::string body = first.substr(header_end + 4);
  EXPECT_EQ(body.size(), content_length(first));
  EXPECT_NE(body.find("fault"), std::string::npos);
  // Fault code 100 + kResourceExhausted: clients map it back to the code.
  EXPECT_NE(body.find(std::to_string(rpc::status_to_fault_code(StatusCode::kResourceExhausted))),
            std::string::npos);

  // The same connection accepts a second request (keep-alive preserved).
  conn.value().write_all(shed_request("connection: close\r\n"));
  const std::string second = read_response(conn.value());
  EXPECT_NE(second.find("HTTP/1.1 503"), std::string::npos);
  EXPECT_EQ(server_->requests_shed(), 2u);
}

TEST_F(ShedTest, ClientClassifiesShedAsRetryableResourceExhausted) {
  rpc::RpcClient client("127.0.0.1", port_);
  rpc::CallOptions opts;
  opts.retry = RetryPolicy::none();
  const auto r = client.call("echo.op", {Value(static_cast<std::int64_t>(1))}, opts);
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(RetryPolicy::is_retryable(r.status().code()));
  EXPECT_EQ(client.stats().shed_rejections, 1u);
  // The breaker must not count a shed as endpoint failure (the server is
  // healthy, just full): the endpoint stays closed/usable.
  EXPECT_EQ(client.breaker_state(0), CircuitBreaker::State::kClosed);
}

// ---------------------------------------------------------------------------
// Live storm: shed order under real concurrency
// ---------------------------------------------------------------------------

TEST(OverloadStorm, CriticalTierOutlivesBulkUnderStorm) {
  auto dispatcher = std::make_shared<rpc::Dispatcher>();
  dispatcher->register_method("work.op", [](const Array&, const CallContext&) -> Result<Value> {
    return Value(static_cast<std::int64_t>(1));
  });
  WallClock wall;
  AdmissionOptions aopts;
  aopts.min_limit = aopts.initial_limit = aopts.max_limit = 2;  // fixed limit
  aopts.tier_fraction = {1.0, 0.75, 0.5};  // ceilings 2 / 1.5 / 1
  AdmissionController admission(wall, aopts);
  rpc::ServerOptions sopts;
  sopts.port = 0;
  sopts.num_workers = 4;
  sopts.admission = &admission;
  rpc::RpcServer server(dispatcher, sopts);
  auto port = server.start();
  ASSERT_TRUE(port.is_ok());

  // Pin one admitted ticket for the whole storm: bulk's ceiling (1) is then
  // permanently saturated while control's ceiling (2) still has a free slot.
  // This replaces handler sleep-induced contention, whose shed pattern
  // depended on scheduler timing, with a deterministic occupancy.
  ASSERT_TRUE(admission.try_admit(Criticality::kControl));

  constexpr int kThreadsPerTier = 4;
  constexpr int kCallsPerThread = 20;
  std::atomic<int> successes[kCriticalityTiers] = {};
  std::vector<std::thread> threads;
  for (int tier = 0; tier < kCriticalityTiers; ++tier) {
    for (int t = 0; t < kThreadsPerTier; ++t) {
      threads.emplace_back([&, tier] {
        for (int i = 0; i < kCallsPerThread; ++i) {
          // Connect-per-call: keep-alive would pin a worker per client and
          // turn this into a connection test rather than an admission test.
          rpc::RpcClient client("127.0.0.1", port.value());
          rpc::CallOptions opts;
          opts.retry = RetryPolicy::none();
          opts.tier = static_cast<Criticality>(tier);
          if (client.call("work.op", {}, opts).is_ok()) ++successes[tier];
        }
      });
    }
  }
  for (auto& t : threads) t.join();
  admission.release();
  server.stop();

  const int control = successes[static_cast<int>(Criticality::kControl)].load();
  const int bulk = successes[static_cast<int>(Criticality::kBulk)].load();
  // Every bulk request that reached the server was shed at its saturated
  // ceiling; control still got through on the remaining slot.
  EXPECT_GT(server.requests_shed(), 0u);
  EXPECT_GT(control, 0);
  EXPECT_EQ(bulk, 0);
}

// ---------------------------------------------------------------------------
// Brownout degraded modes of the service bindings
// ---------------------------------------------------------------------------

/// Forces brownout by parking one admitted ticket in a single-slot
/// controller (load 1.0 >= brownout_load).
struct ForcedBrownout {
  explicit ForcedBrownout(AdmissionController& c) : controller(c) {
    held = controller.try_admit(Criticality::kControl);
  }
  ~ForcedBrownout() {
    if (held) controller.release();
  }
  AdmissionController& controller;
  bool held = false;
};

AdmissionOptions single_slot_options() {
  AdmissionOptions o;
  o.min_limit = o.initial_limit = o.max_limit = 1;
  o.tier_fraction = {1.0, 1.0, 1.0};
  return o;
}

TEST(BrownoutBinding, EstimatorFallsBackToCheapMeanEstimate) {
  sim::Simulation sim;
  sim::Grid grid;
  grid.add_site("site-a").add_node("a0", 1.0, nullptr);
  exec::ExecutionService exec(sim, grid, "site-a");
  const std::map<std::string, std::string> attrs = {
      {"executable", "reco"}, {"login", "alice"}, {"queue", "q"}, {"nodes", "1"}};
  auto runtime = std::make_shared<estimators::RuntimeEstimator>(
      std::make_shared<estimators::TaskHistoryStore>());
  for (int i = 0; i < 4; ++i) runtime->record(attrs, 120.0, 0);
  estimators::TransferEstimatorOptions topts;
  topts.probe_noise = 0.0;
  estimators::EstimatorService service(
      std::make_shared<estimators::EstimateDatabase>(),
      std::make_unique<estimators::FileTransferEstimator>(grid, topts));
  service.add_site("site-a", runtime, &exec);

  ManualClock host_clock;
  clarens::HostOptions hopts;
  hopts.require_auth = false;
  clarens::ClarensHost host("est-host", host_clock, hopts);
  WallClock wall;
  AdmissionController admission(wall, single_slot_options());
  telemetry::MetricsRegistry metrics;
  estimators::register_estimator_methods(host, service, nullptr, &metrics, &admission);

  Struct attrs_value;
  for (const auto& [k, v] : attrs) attrs_value[k] = Value(v);
  const Array params = {Value(std::string("site-a")), Value(attrs_value)};

  // Healthy: full similarity-matched estimate, marked degraded=false.
  auto healthy = host.call("estimator.runtime", params);
  ASSERT_TRUE(healthy.is_ok()) << healthy.status().message();
  EXPECT_FALSE(healthy.value().get_bool("degraded", true));

  // Browned out: the cheap history-mean estimate, explicitly marked.
  ForcedBrownout brownout(admission);
  ASSERT_TRUE(brownout.held);
  auto degraded = host.call("estimator.runtime", params);
  ASSERT_TRUE(degraded.is_ok()) << degraded.status().message();
  EXPECT_TRUE(degraded.value().get_bool("degraded", false));
  EXPECT_EQ(degraded.value().get_string("template", ""), "*");
  EXPECT_NEAR(degraded.value().get_double("seconds", 0.0), 120.0, 1e-9);
  EXPECT_EQ(metrics.counter("estimator.brownout_fallbacks").value(), 1u);
}

TEST(BrownoutBinding, JobMonServesBoundedStalenessSnapshot) {
  sim::Simulation sim;
  sim::Grid grid;
  grid.add_site("site-a").add_node("a0", 1.0, nullptr);
  exec::ExecutionService exec(sim, grid, "site-a");
  monalisa::Repository monitoring;
  auto estimates = std::make_shared<estimators::EstimateDatabase>();
  jobmon::JobMonitoringService jms(sim.clock(), &monitoring, estimates);
  jms.attach_site("site-a", &exec);
  estimates->put("t1", 120.0);
  exec::TaskSpec spec;
  spec.id = "t1";
  spec.job_id = "job-1";
  spec.owner = "alice";
  spec.work_seconds = 100;
  ASSERT_TRUE(exec.submit(spec).is_ok());
  sim.run_until(from_seconds(30));  // t1 is RUNNING

  ManualClock host_clock;
  clarens::HostOptions hopts;
  hopts.require_auth = false;
  clarens::ClarensHost host("jm-host", host_clock, hopts);
  WallClock wall;
  AdmissionController admission(wall, single_slot_options());
  telemetry::MetricsRegistry metrics;
  // Staleness window far beyond the test duration: the snapshot taken under
  // brownout must keep serving even as the live world moves on.
  jobmon::register_jobmon_methods(host, jms, nullptr, &metrics, &admission, 60'000);

  // Healthy reads are live and say so.
  auto live = host.call("jobmon.info", {Value(std::string("t1"))});
  ASSERT_TRUE(live.is_ok());
  EXPECT_FALSE(live.value().get_bool("stale", true));
  EXPECT_EQ(live.value().get_string("status", ""), "RUNNING");

  ForcedBrownout brownout(admission);
  ASSERT_TRUE(brownout.held);
  auto cached = host.call("jobmon.info", {Value(std::string("t1"))});
  ASSERT_TRUE(cached.is_ok());
  EXPECT_TRUE(cached.value().get_bool("stale", false));
  EXPECT_EQ(cached.value().get_string("status", ""), "RUNNING");
  EXPECT_GE(metrics.counter("jobmon.brownout_cached").value(), 1u);

  // Unknown ids miss the snapshot with a distinguishable NOT_FOUND.
  auto miss = host.call("jobmon.info", {Value(std::string("ghost"))});
  EXPECT_EQ(miss.status().code(), StatusCode::kNotFound);

  // The live world moves on (t1 finishes) but the snapshot, still within its
  // staleness window, keeps answering with the state it captured.
  sim.run_until(from_seconds(500));
  const std::string live_state = jms.status("t1").value();
  EXPECT_NE(live_state, "RUNNING");
  auto stale_status = host.call("jobmon.status", {Value(std::string("t1"))});
  ASSERT_TRUE(stale_status.is_ok());
  EXPECT_EQ(stale_status.value().as_string(), "RUNNING");
}

}  // namespace
}  // namespace gae
