// RetryPolicy backoff schedule, RpcClient deadline budgets, and the
// CircuitBreaker state machine — all under a virtual clock, so every
// assertion is exact and repeatable.
#include <gtest/gtest.h>

#include <vector>

#include "common/clock.h"
#include "common/retry.h"
#include "rpc/client.h"
#include "rpc/server.h"

namespace gae {
namespace {

// ---------------------------------------------------------------------------
// RetryPolicy
// ---------------------------------------------------------------------------

TEST(RetryPolicyTest, ExactExponentialWithoutJitter) {
  RetryPolicy p;
  p.initial_backoff_ms = 100;
  p.backoff_multiplier = 2.0;
  p.max_backoff_ms = 10'000;
  p.jitter_fraction = 0.0;
  EXPECT_EQ(p.backoff_ms(1), 100);
  EXPECT_EQ(p.backoff_ms(2), 200);
  EXPECT_EQ(p.backoff_ms(3), 400);
  EXPECT_EQ(p.backoff_ms(4), 800);
  EXPECT_EQ(p.backoff_ms(5), 1600);
}

TEST(RetryPolicyTest, BackoffCappedAtMax) {
  RetryPolicy p;
  p.initial_backoff_ms = 100;
  p.backoff_multiplier = 10.0;
  p.max_backoff_ms = 700;
  p.jitter_fraction = 0.0;
  EXPECT_EQ(p.backoff_ms(1), 100);
  EXPECT_EQ(p.backoff_ms(2), 700);
  EXPECT_EQ(p.backoff_ms(3), 700);
  EXPECT_EQ(p.backoff_ms(9), 700);
}

TEST(RetryPolicyTest, JitterStaysInBoundsAndIsDeterministic) {
  RetryPolicy p;
  p.initial_backoff_ms = 100;
  p.backoff_multiplier = 2.0;
  p.max_backoff_ms = 10'000;
  p.jitter_fraction = 0.25;
  p.jitter_seed = 42;

  RetryPolicy same = p;
  int nominal = 100;
  for (int attempt = 1; attempt <= 7; ++attempt) {
    const int b = p.backoff_ms(attempt);
    // The drawn offset is in [-0.25, +0.25] * nominal (integer truncation
    // gets one millisecond of slack).
    EXPECT_GE(b, nominal * 3 / 4 - 1) << "attempt " << attempt;
    EXPECT_LE(b, nominal * 5 / 4 + 1) << "attempt " << attempt;
    // Pure function of (policy, attempt): replaying gives the same schedule.
    EXPECT_EQ(b, same.backoff_ms(attempt));
    nominal = std::min(nominal * 2, p.max_backoff_ms);
  }
}

TEST(RetryPolicyTest, DifferentSeedsGiveDifferentSchedules) {
  RetryPolicy a;
  a.jitter_fraction = 0.5;
  a.jitter_seed = 1;
  RetryPolicy b = a;
  b.jitter_seed = 2;
  bool differs = false;
  for (int attempt = 1; attempt <= 8 && !differs; ++attempt) {
    differs = a.backoff_ms(attempt) != b.backoff_ms(attempt);
  }
  EXPECT_TRUE(differs);
}

TEST(RetryPolicyTest, NonePolicyNeverRetries) {
  const RetryPolicy p = RetryPolicy::none();
  EXPECT_EQ(p.max_attempts, 1);
  EXPECT_EQ(p.backoff_ms(1), 0);
}

TEST(RetryPolicyTest, RetryableClassification) {
  EXPECT_TRUE(RetryPolicy::is_retryable(StatusCode::kUnavailable));
  EXPECT_TRUE(RetryPolicy::is_retryable(StatusCode::kDeadlineExceeded));
  EXPECT_TRUE(RetryPolicy::is_retryable(StatusCode::kResourceExhausted));

  EXPECT_FALSE(RetryPolicy::is_retryable(StatusCode::kOk));
  EXPECT_FALSE(RetryPolicy::is_retryable(StatusCode::kNotFound));
  EXPECT_FALSE(RetryPolicy::is_retryable(StatusCode::kInvalidArgument));
  EXPECT_FALSE(RetryPolicy::is_retryable(StatusCode::kPermissionDenied));
  EXPECT_FALSE(RetryPolicy::is_retryable(StatusCode::kFailedPrecondition));
  EXPECT_FALSE(RetryPolicy::is_retryable(StatusCode::kInternal));
}

// ---------------------------------------------------------------------------
// CircuitBreaker state machine (virtual time)
// ---------------------------------------------------------------------------

CircuitBreakerOptions small_breaker() {
  CircuitBreakerOptions o;
  o.window_size = 8;
  o.window_ms = 60'000;
  o.failure_rate_threshold = 0.5;
  o.min_samples = 5;
  o.open_cooldown_ms = 5'000;
  o.half_open_probes = 1;
  return o;
}

TEST(CircuitBreakerTest, StaysClosedBelowMinSamples) {
  ManualClock clock;
  CircuitBreaker breaker(clock, small_breaker());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(breaker.allow());
    breaker.record_failure();
  }
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ(breaker.opens(), 0u);
  EXPECT_DOUBLE_EQ(breaker.failure_rate(), 1.0);
}

TEST(CircuitBreakerTest, TripsAtFailureRateThreshold) {
  ManualClock clock;
  CircuitBreaker breaker(clock, small_breaker());
  // 2 successes + 3 failures = 5 samples at 60% failure: trips.
  breaker.record_success();
  breaker.record_success();
  breaker.record_failure();
  breaker.record_failure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  breaker.record_failure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.opens(), 1u);

  EXPECT_FALSE(breaker.allow());
  EXPECT_FALSE(breaker.allow());
  EXPECT_EQ(breaker.rejections(), 2u);
}

TEST(CircuitBreakerTest, CooldownLeadsToHalfOpenAndSuccessCloses) {
  ManualClock clock;
  CircuitBreaker breaker(clock, small_breaker());
  for (int i = 0; i < 5; ++i) breaker.record_failure();
  ASSERT_EQ(breaker.state(), CircuitBreaker::State::kOpen);

  clock.advance_by(4'999 * 1000);
  EXPECT_FALSE(breaker.allow());  // still cooling down

  clock.advance_by(2 * 1000);
  EXPECT_TRUE(breaker.allow());  // the probe
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  EXPECT_FALSE(breaker.allow());  // only one probe admitted

  breaker.record_success();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.allow());
  EXPECT_DOUBLE_EQ(breaker.failure_rate(), 0.0);  // history cleared on close
}

TEST(CircuitBreakerTest, HalfOpenProbeFailureReopens) {
  ManualClock clock;
  CircuitBreaker breaker(clock, small_breaker());
  for (int i = 0; i < 5; ++i) breaker.record_failure();
  clock.advance_by(5'001 * 1000);
  ASSERT_TRUE(breaker.allow());
  ASSERT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);

  breaker.record_failure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.opens(), 2u);
  EXPECT_FALSE(breaker.allow());  // cooldown restarted

  clock.advance_by(5'001 * 1000);
  EXPECT_TRUE(breaker.allow());  // probes again after the new cooldown
}

TEST(CircuitBreakerTest, AllProbesMustSucceedToClose) {
  ManualClock clock;
  CircuitBreakerOptions o = small_breaker();
  o.half_open_probes = 2;
  CircuitBreaker breaker(clock, o);
  for (int i = 0; i < 5; ++i) breaker.record_failure();
  clock.advance_by(5'001 * 1000);

  ASSERT_TRUE(breaker.allow());
  ASSERT_TRUE(breaker.allow());
  EXPECT_FALSE(breaker.allow());  // probe budget spent
  breaker.record_success();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);  // one more to go
  breaker.record_success();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
}

TEST(CircuitBreakerTest, StaleOutcomesFallOutOfTheWindow) {
  ManualClock clock;
  CircuitBreakerOptions o = small_breaker();
  o.window_ms = 1'000;
  CircuitBreaker breaker(clock, o);

  for (int i = 0; i < 4; ++i) breaker.record_failure();
  ASSERT_EQ(breaker.state(), CircuitBreaker::State::kClosed);

  // The old failures age out; fresh ones start a new count.
  clock.advance_by(2'000 * 1000);
  breaker.record_failure();
  breaker.record_failure();
  breaker.record_failure();
  breaker.record_failure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed) << "stale outcomes counted";
  breaker.record_failure();  // fifth fresh sample: now it trips
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
}

// ---------------------------------------------------------------------------
// RpcClient deadline budget + breaker integration (no server listening)
// ---------------------------------------------------------------------------

/// A loopback port with nothing behind it: start a server to reserve a port,
/// then stop it so connects are refused.
std::uint16_t closed_port() {
  auto dispatcher = std::make_shared<rpc::Dispatcher>();
  rpc::RpcServer server(dispatcher, rpc::ServerOptions{0, 1});
  auto port = server.start();
  EXPECT_TRUE(port.is_ok());
  server.stop();
  return port.value_or(1);
}

TEST(RpcClientRetryTest, DeadlineBudgetExhaustedUnderVirtualClock) {
  ManualClock clock;
  rpc::ClientOptions options;
  options.clock = &clock;
  options.sleep_ms = [&clock](int ms) { clock.advance_by(SimTime{ms} * 1000); };
  options.breaker.min_samples = 100;  // keep the breaker out of this test

  rpc::RpcClient client({{"127.0.0.1", closed_port()}}, rpc::Protocol::kXmlRpc, options);

  rpc::CallOptions call;
  call.deadline_ms = 100;
  call.retry.max_attempts = 10;
  call.retry.initial_backoff_ms = 60;
  call.retry.backoff_multiplier = 2.0;
  call.retry.jitter_fraction = 0.0;

  auto r = client.call("any.method", {}, call);
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);

  // Attempt 1 fails (connect refused) at t=0, backoff 60ms fits the 100ms
  // budget; attempt 2 fails at t=60 and the next backoff (120ms) overshoots
  // the ~40ms left, so it is clamped to 39ms — leaving 1ms for attempt 3 at
  // t=99, after which no further attempt fits. (The clamp means a backoff
  // larger than the remaining budget shortens the sleep instead of
  // abandoning budget the call could still use.)
  EXPECT_EQ(client.stats().attempts, 3u);
  EXPECT_EQ(client.stats().retries, 2u);
  EXPECT_GE(client.stats().deadline_exceeded, 1u);
  EXPECT_EQ(client.stats().failed_calls, 1u);
}

TEST(RpcClientRetryTest, BreakerOpensAfterRepeatedConnectFailuresThenProbes) {
  ManualClock clock;
  rpc::ClientOptions options;
  options.clock = &clock;
  options.sleep_ms = [&clock](int ms) { clock.advance_by(SimTime{ms} * 1000); };
  options.breaker.min_samples = 2;
  options.breaker.window_size = 8;
  options.breaker.failure_rate_threshold = 0.5;
  options.breaker.open_cooldown_ms = 1'000;
  options.default_call.retry = RetryPolicy::none();

  rpc::RpcClient client({{"127.0.0.1", closed_port()}}, rpc::Protocol::kXmlRpc, options);

  // Two refused connects trip the breaker.
  EXPECT_FALSE(client.call("m", {}).is_ok());
  EXPECT_FALSE(client.call("m", {}).is_ok());
  EXPECT_EQ(client.breaker_state(0), CircuitBreaker::State::kOpen);

  // While open, calls are rejected locally without touching the network.
  auto rejected = client.call("m", {});
  ASSERT_FALSE(rejected.is_ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(rejected.status().message().find("circuit open"), std::string::npos);
  EXPECT_GE(client.stats().breaker_rejections, 1u);

  // After the cooldown a probe is admitted; it fails, so the breaker reopens.
  clock.advance_by(1'001 * 1000);
  EXPECT_FALSE(client.call("m", {}).is_ok());
  EXPECT_EQ(client.breaker_state(0), CircuitBreaker::State::kOpen);
}

}  // namespace
}  // namespace gae
