#include <gtest/gtest.h>

#include "clarens/host.h"
#include "common/clock.h"
#include "rpc/client.h"

namespace gae::clarens {
namespace {

using rpc::Array;
using rpc::Value;

TEST(AuthService, RegisterLoginAuthenticate) {
  ManualClock clock;
  AuthService auth(clock);
  ASSERT_TRUE(auth.register_user("alice", "s3cret").is_ok());
  EXPECT_EQ(auth.register_user("alice", "x").code(), StatusCode::kAlreadyExists);

  auto token = auth.login("alice", "s3cret");
  ASSERT_TRUE(token.is_ok());
  auto user = auth.authenticate(token.value());
  ASSERT_TRUE(user.is_ok());
  EXPECT_EQ(user.value(), "alice");
}

TEST(AuthService, BadCredentialsRejected) {
  ManualClock clock;
  AuthService auth(clock);
  auth.register_user("alice", "pw");
  EXPECT_EQ(auth.login("alice", "wrong").status().code(), StatusCode::kUnauthenticated);
  EXPECT_EQ(auth.login("bob", "pw").status().code(), StatusCode::kUnauthenticated);
  EXPECT_EQ(auth.authenticate("bogus-token").status().code(),
            StatusCode::kUnauthenticated);
}

TEST(AuthService, SessionExpiry) {
  ManualClock clock;
  AuthOptions opts;
  opts.session_ttl_seconds = 100;
  AuthService auth(clock, opts);
  auth.register_user("alice", "pw");
  const std::string token = auth.login("alice", "pw").value();

  clock.advance_by(from_seconds(99));
  EXPECT_TRUE(auth.authenticate(token).is_ok());  // also slides expiry
  clock.advance_by(from_seconds(99));
  EXPECT_TRUE(auth.authenticate(token).is_ok());
  clock.advance_by(from_seconds(101));
  EXPECT_EQ(auth.authenticate(token).status().code(), StatusCode::kUnauthenticated);
}

TEST(AuthService, LogoutInvalidates) {
  ManualClock clock;
  AuthService auth(clock);
  auth.register_user("alice", "pw");
  const std::string token = auth.login("alice", "pw").value();
  EXPECT_EQ(auth.active_sessions(), 1u);
  ASSERT_TRUE(auth.logout(token).is_ok());
  EXPECT_FALSE(auth.authenticate(token).is_ok());
  EXPECT_EQ(auth.logout(token).code(), StatusCode::kNotFound);
  EXPECT_EQ(auth.active_sessions(), 0u);
}

TEST(AccessControl, DefaultDenyExceptSystem) {
  AccessControl acl;
  EXPECT_FALSE(acl.check("alice", "jobmon.info"));
  EXPECT_TRUE(acl.check("alice", "system.listMethods"));
}

TEST(AccessControl, WildcardAndSpecificRules) {
  AccessControl acl;
  acl.allow("*", "jobmon.");
  acl.allow("alice", "steering.");
  EXPECT_TRUE(acl.check("bob", "jobmon.info"));
  EXPECT_FALSE(acl.check("bob", "steering.kill"));
  EXPECT_TRUE(acl.check("alice", "steering.kill"));
}

TEST(AccessControl, LongestPrefixWins) {
  AccessControl acl;
  acl.allow("*", "steering.");
  acl.deny("*", "steering.kill");
  EXPECT_TRUE(acl.check("bob", "steering.info"));
  EXPECT_FALSE(acl.check("bob", "steering.kill"));
}

TEST(AccessControl, UserSpecificBeatsWildcardAtSameLength) {
  AccessControl acl;
  acl.deny("*", "steering.");
  acl.allow("admin", "steering.");
  EXPECT_FALSE(acl.check("bob", "steering.kill"));
  EXPECT_TRUE(acl.check("admin", "steering.kill"));
}

TEST(AccessControl, DenyBeatsAllowOnFullTie) {
  AccessControl acl;
  acl.allow("*", "x.");
  acl.deny("*", "x.");
  EXPECT_FALSE(acl.check("anyone", "x.y"));
}

TEST(ServiceRegistry, LocalRegisterLookup) {
  ServiceRegistry reg("host-a");
  reg.register_service({"jobmon@a", "host-a", 8080, "xmlrpc", {}, 0});
  auto info = reg.lookup("jobmon@a");
  ASSERT_TRUE(info.is_ok());
  EXPECT_EQ(info.value().port, 8080);
  EXPECT_FALSE(reg.lookup("missing").is_ok());
  ASSERT_TRUE(reg.deregister_service("jobmon@a").is_ok());
  EXPECT_FALSE(reg.lookup("jobmon@a").is_ok());
}

TEST(ServiceRegistry, PeerToPeerLookup) {
  ServiceRegistry a("a"), b("b"), c("c");
  a.add_peer(&b);
  b.add_peer(&c);
  c.register_service({"steering@c", "c", 9000, "xmlrpc", {}, 0});
  // Two-hop lookup through the peer chain.
  auto info = a.lookup("steering@c");
  ASSERT_TRUE(info.is_ok());
  EXPECT_EQ(info.value().host, "c");
}

TEST(ServiceRegistry, PeerCycleTerminates) {
  ServiceRegistry a("a"), b("b");
  a.add_peer(&b);
  b.add_peer(&a);
  EXPECT_FALSE(a.lookup("nowhere").is_ok());  // must not loop forever
  b.register_service({"svc", "b", 1, "xmlrpc", {}, 0});
  EXPECT_TRUE(a.lookup("svc").is_ok());
}

TEST(ServiceRegistry, DiscoverAcrossPeers) {
  ServiceRegistry a("a"), b("b");
  a.add_peer(&b);
  a.register_service({"jobmon@a", "a", 1, "xmlrpc", {}, 0});
  b.register_service({"jobmon@b", "b", 2, "xmlrpc", {}, 0});
  b.register_service({"steering@b", "b", 3, "xmlrpc", {}, 0});
  const auto found = a.discover("jobmon");
  EXPECT_EQ(found.size(), 2u);
  EXPECT_EQ(a.discover("").size(), 3u);
}

class ClarensHostTest : public ::testing::Test {
 protected:
  ClarensHostTest() : host_("test-host", clock_) {
    host_.auth().register_user("alice", "pw");
    host_.acl().allow("alice", "app.");
    host_.dispatcher().register_method(
        "app.whoami",
        [this](const rpc::Array&, const rpc::CallContext& ctx) -> Result<Value> {
          auto user = host_.user_of(ctx);
          if (!user.is_ok()) return user.status();
          return Value(user.value());
        });
  }

  ManualClock clock_;
  ClarensHost host_;
};

TEST_F(ClarensHostTest, LoginThenCallProtectedMethod) {
  auto token = host_.call("system.login", {Value("alice"), Value("pw")});
  ASSERT_TRUE(token.is_ok()) << token.status();
  auto who = host_.call("app.whoami", {}, token.value().as_string());
  ASSERT_TRUE(who.is_ok()) << who.status();
  EXPECT_EQ(who.value().as_string(), "alice");
}

TEST_F(ClarensHostTest, UnauthenticatedCallRejected) {
  auto r = host_.call("app.whoami", {});
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnauthenticated);
}

TEST_F(ClarensHostTest, AclDeniesOtherUsers) {
  host_.auth().register_user("bob", "pw");
  const std::string token =
      host_.call("system.login", {Value("bob"), Value("pw")}).value().as_string();
  auto r = host_.call("app.whoami", {}, token);
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kPermissionDenied);
}

TEST_F(ClarensHostTest, SystemMethodsOpenWithoutSession) {
  EXPECT_TRUE(host_.call("system.echo", {Value(5)}).is_ok());
  EXPECT_TRUE(host_.call("system.listMethods", {}).is_ok());
}

TEST_F(ClarensHostTest, ListMethodsIncludesRegistered) {
  auto r = host_.call("system.listMethods", {});
  ASSERT_TRUE(r.is_ok());
  bool found = false;
  for (const auto& name : r.value().as_array()) {
    if (name.as_string() == "app.whoami") found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(ClarensHostTest, RegisterAndLookupViaRpc) {
  const std::string token =
      host_.call("system.login", {Value("alice"), Value("pw")}).value().as_string();
  ASSERT_TRUE(host_.call("system.register",
                         {Value("est@here"), Value("127.0.0.1"), Value(4242)}, token)
                  .is_ok());
  auto info = host_.call("system.lookup", {Value("est@here")}, token);
  ASSERT_TRUE(info.is_ok()) << info.status();
  EXPECT_EQ(info.value().get_int("port", 0), 4242);
  auto missing = host_.call("system.lookup", {Value("nope")}, token);
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

TEST_F(ClarensHostTest, LogoutEndsSession) {
  const std::string token =
      host_.call("system.login", {Value("alice"), Value("pw")}).value().as_string();
  ASSERT_TRUE(host_.call("system.logout", {}, token).is_ok());
  EXPECT_EQ(host_.call("app.whoami", {}, token).status().code(),
            StatusCode::kUnauthenticated);
}

TEST_F(ClarensHostTest, MulticallBatchesAndIsolatesFaults) {
  const std::string token =
      host_.call("system.login", {Value("alice"), Value("pw")}).value().as_string();
  rpc::Struct ok_call;
  ok_call["methodName"] = Value("system.echo");
  ok_call["params"] = Value(rpc::Array{Value(41)});
  rpc::Struct bad_call;
  bad_call["methodName"] = Value("no.such.method");
  rpc::Struct authed_call;
  authed_call["methodName"] = Value("app.whoami");

  auto r = host_.call("system.multicall",
                      {Value(rpc::Array{Value(ok_call), Value(bad_call),
                                        Value(authed_call)})},
                      token);
  ASSERT_TRUE(r.is_ok()) << r.status();
  const auto& results = r.value().as_array();
  ASSERT_EQ(results.size(), 3u);
  // Success: 1-element array wrapping the value.
  ASSERT_TRUE(results[0].is_array());
  EXPECT_EQ(results[0].as_array()[0].as_int(), 41);
  // Failure: a fault struct, without killing the batch.
  ASSERT_TRUE(results[1].is_struct());
  EXPECT_GT(results[1].get_int("faultCode", 0), 0);
  // Sub-calls run under the caller's session.
  ASSERT_TRUE(results[2].is_array());
  EXPECT_EQ(results[2].as_array()[0].as_string(), "alice");
}

TEST_F(ClarensHostTest, MulticallValidation) {
  const std::string token =
      host_.call("system.login", {Value("alice"), Value("pw")}).value().as_string();
  EXPECT_EQ(host_.call("system.multicall", {Value(1)}, token).status().code(),
            StatusCode::kInvalidArgument);
  rpc::Struct recursive;
  recursive["methodName"] = Value("system.multicall");
  EXPECT_EQ(host_.call("system.multicall", {Value(rpc::Array{Value(recursive)})}, token)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ClarensHostTest, MethodStatsCountCalls) {
  host_.call("system.echo", {Value(1)});
  host_.call("system.echo", {Value(2)});
  host_.call("app.whoami", {});  // rejected (unauthenticated) but still counted
  const auto stats = host_.method_stats();
  EXPECT_EQ(stats.at("system.echo"), 2u);
  EXPECT_EQ(stats.at("app.whoami"), 1u);

  const std::string token =
      host_.call("system.login", {Value("alice"), Value("pw")}).value().as_string();
  auto over_rpc = host_.call("system.stats", {}, token);
  ASSERT_TRUE(over_rpc.is_ok()) << over_rpc.status();
  EXPECT_EQ(over_rpc.value().get_int("system.echo", 0), 2);
}

TEST_F(ClarensHostTest, ServeOverTcp) {
  auto port = host_.serve(0);
  ASSERT_TRUE(port.is_ok()) << port.status();
  rpc::RpcClient client("127.0.0.1", port.value());
  auto token = client.call("system.login", {Value("alice"), Value("pw")});
  ASSERT_TRUE(token.is_ok()) << token.status();
  client.set_session_token(token.value().as_string());
  auto who = client.call("app.whoami");
  ASSERT_TRUE(who.is_ok()) << who.status();
  EXPECT_EQ(who.value().as_string(), "alice");
  host_.stop();
}

TEST(ClarensHostNoAuth, AnonymousAllowed) {
  ManualClock clock;
  HostOptions opts;
  opts.require_auth = false;
  ClarensHost host("open-host", clock, opts);
  host.dispatcher().register_method(
      "free.ping", [](const rpc::Array&, const rpc::CallContext&) -> Result<Value> {
        return Value("pong");
      });
  auto r = host.call("free.ping", {});
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value().as_string(), "pong");
}

}  // namespace
}  // namespace gae::clarens
