// Hot-standby failover under chaos: a primary ships its WAL to a standby
// (in-process and over live TCP), the primary is killed mid-workload, the
// failure detector + supervisor promote the standby through the registry's
// primary lease, and the recovered state is byte-equal to an oracle that
// mirrored every acknowledged write. The revived old primary is fenced:
// its stale epoch is rejected and its lease renewal fails.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "clarens/host.h"
#include "clarens/registry.h"
#include "common/clock.h"
#include "common/wal.h"
#include "estimators/estimate_db.h"
#include "ha/failover.h"
#include "ha/replication.h"
#include "ha/rpc_binding.h"
#include "jobmon/db_manager.h"
#include "rpc/client.h"
#include "steering/journal.h"
#include "supervision/failure_detector.h"
#include "supervision/supervisor.h"
#include "telemetry/metrics.h"

namespace gae {
namespace {

using ha::AppendBatch;
using ha::LocalShipperTransport;
using ha::LogShipper;
using ha::ReplicatedWalStorage;
using ha::ReplicationMode;
using ha::ShipperOptions;
using ha::StandbyReplica;

exec::TaskInfo make_task(const std::string& id, double progress) {
  exec::TaskInfo info;
  info.spec.id = id;
  info.spec.owner = "alice";
  info.spec.work_seconds = 100.0;
  info.state = exec::TaskState::kRunning;
  info.progress = progress;
  info.cpu_seconds_used = progress * 100.0;
  return info;
}

TEST(HexCodec, RoundTripsArbitraryBytes) {
  std::string bytes;
  for (int i = 0; i < 256; ++i) bytes.push_back(static_cast<char>(i));
  auto decoded = ha::hex_decode(ha::hex_encode(bytes));
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value(), bytes);
  EXPECT_FALSE(ha::hex_decode("abc").is_ok());   // odd length
  EXPECT_FALSE(ha::hex_decode("zz").is_ok());    // non-hex
}

TEST(Replication, SyncShippingKeepsStandbyByteEqual) {
  MemoryWalStorage primary_store, standby_store;
  StandbyReplica replica("jobmon", &standby_store);
  LocalShipperTransport transport(&replica);
  LogShipper shipper("jobmon", {});
  shipper.add_standby(&transport);
  shipper.set_epoch(1);
  ReplicatedWalStorage replicated(&primary_store, &shipper);
  Wal wal(&replicated);
  jobmon::DBManager primary(nullptr, &wal);

  for (int i = 0; i < 20; ++i) {
    const std::string id = "t" + std::to_string(i);
    primary.update(id, make_task(id, 0.1 * (i % 10)), "site-a", from_seconds(i));
  }
  // Sync mode: every acknowledged append is already on the standby.
  EXPECT_EQ(shipper.acked_seq(), shipper.next_seq());
  EXPECT_EQ(standby_store.bytes(), primary_store.bytes());

  // Promote: replay the standby log into a fresh DBManager.
  Wal standby_wal(&standby_store);
  jobmon::DBManager promoted(nullptr, &standby_wal);
  ASSERT_TRUE(promoted.recover().is_ok());
  EXPECT_EQ(promoted.export_state(), primary.export_state());
}

TEST(Replication, SnapshotCompactionShipsToStandby) {
  MemoryWalStorage primary_store, standby_store;
  StandbyReplica replica("jobmon", &standby_store);
  LocalShipperTransport transport(&replica);
  LogShipper shipper("jobmon", {});
  shipper.add_standby(&transport);
  shipper.set_epoch(1);
  ReplicatedWalStorage replicated(&primary_store, &shipper);
  Wal wal(&replicated);
  jobmon::DBManager primary(nullptr, &wal);

  for (int i = 0; i < 10; ++i) {
    const std::string id = "t" + std::to_string(i);
    primary.update(id, make_task(id, 0.5), "site-a", from_seconds(i));
  }
  ASSERT_TRUE(primary.save_snapshot().is_ok());
  // Post-snapshot writes ride the normal append path again.
  primary.update("t10", make_task("t10", 0.9), "site-a", from_seconds(11));

  EXPECT_EQ(standby_store.bytes(), primary_store.bytes());
  Wal standby_wal(&standby_store);
  jobmon::DBManager promoted(nullptr, &standby_wal);
  ASSERT_TRUE(promoted.recover().is_ok());
  EXPECT_EQ(promoted.export_state(), primary.export_state());
  EXPECT_GE(shipper.stats().snapshots_shipped, 1u);
}

TEST(Replication, AsyncModeBuffersUntilFlush) {
  MemoryWalStorage primary_store, standby_store;
  StandbyReplica replica("est", &standby_store);
  LocalShipperTransport transport(&replica);
  ShipperOptions options;
  options.mode = ReplicationMode::kAsync;
  options.batch_max_records = 100;  // far above what the test writes
  LogShipper shipper("est", options);
  shipper.add_standby(&transport);
  shipper.set_epoch(1);
  ReplicatedWalStorage replicated(&primary_store, &shipper);
  Wal wal(&replicated);
  estimators::EstimateDatabase primary(&wal);

  for (int i = 0; i < 5; ++i) primary.put("t" + std::to_string(i), 10.0 * i);
  // Nothing shipped yet: the tail is the async loss window.
  EXPECT_EQ(replica.next_seq(), 0u);
  EXPECT_EQ(shipper.acked_seq(), 0u);

  ASSERT_TRUE(shipper.flush().is_ok());
  EXPECT_EQ(replica.next_seq(), 5u);
  EXPECT_EQ(standby_store.bytes(), primary_store.bytes());
  EXPECT_EQ(shipper.stats().batches_shipped, 1u);  // one batch, five records
  EXPECT_EQ(shipper.stats().records_shipped, 5u);
}

TEST(Replication, AsyncBatchThresholdTriggersShipment) {
  MemoryWalStorage primary_store, standby_store;
  StandbyReplica replica("est", &standby_store);
  LocalShipperTransport transport(&replica);
  ShipperOptions options;
  options.mode = ReplicationMode::kAsync;
  options.batch_max_records = 3;
  LogShipper shipper("est", options);
  shipper.add_standby(&transport);
  shipper.set_epoch(1);

  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(shipper.ship_append(Wal::encode_frame(WalRecord::Type::kRecord,
                                                      "r" + std::to_string(i)))
                    .is_ok());
  }
  EXPECT_EQ(replica.next_seq(), 0u);  // below threshold: still buffered
  ASSERT_TRUE(
      shipper.ship_append(Wal::encode_frame(WalRecord::Type::kRecord, "r2")).is_ok());
  EXPECT_EQ(replica.next_seq(), 3u);  // threshold reached: batch shipped
}

TEST(Replication, LateJoiningStandbyHealsViaSnapshotResync) {
  MemoryWalStorage primary_store, standby_store;
  LogShipper shipper("jobmon", {});
  shipper.set_epoch(1);
  ReplicatedWalStorage replicated(&primary_store, &shipper);
  Wal wal(&replicated);
  // Writes with no standby attached: frames are trimmed as soon as acked
  // (vacuously, by nobody), so a later joiner cannot be served from the
  // frame window and must be healed with a full-log install.
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(wal.append("early-" + std::to_string(i)).is_ok());
  }

  StandbyReplica replica("jobmon", &standby_store);
  LocalShipperTransport transport(&replica);
  shipper.add_standby(&transport);
  ASSERT_TRUE(wal.append("late").is_ok());

  EXPECT_EQ(standby_store.bytes(), primary_store.bytes());
  EXPECT_EQ(replica.next_seq(), 5u);
  EXPECT_GE(shipper.stats().resyncs, 1u);
}

TEST(Replication, DuplicateAndOverlappingBatchesAreIdempotent) {
  MemoryWalStorage standby_store;
  StandbyReplica replica("s", &standby_store);

  const std::string f0 = Wal::encode_frame(WalRecord::Type::kRecord, "a");
  const std::string f1 = Wal::encode_frame(WalRecord::Type::kRecord, "b");
  const std::string f2 = Wal::encode_frame(WalRecord::Type::kRecord, "c");

  AppendBatch first;
  first.stream = "s";
  first.epoch = 1;
  first.base_seq = 0;
  first.records = 2;
  first.bytes = f0 + f1;
  first.crc = crc32(first.bytes);
  ASSERT_TRUE(replica.apply_append(first).is_ok());

  // Exact duplicate: no-op, same ack.
  auto dup = replica.apply_append(first);
  ASSERT_TRUE(dup.is_ok());
  EXPECT_EQ(dup.value().next_seq, 2u);

  // Overlap: frames [0..3) where [0..2) are already applied.
  AppendBatch overlap;
  overlap.stream = "s";
  overlap.epoch = 1;
  overlap.base_seq = 0;
  overlap.records = 3;
  overlap.bytes = f0 + f1 + f2;
  overlap.crc = crc32(overlap.bytes);
  auto ack = replica.apply_append(overlap);
  ASSERT_TRUE(ack.is_ok());
  EXPECT_EQ(ack.value().next_seq, 3u);
  EXPECT_EQ(standby_store.bytes(), f0 + f1 + f2);  // nothing doubled
}

TEST(Replication, CorruptBatchAndGapAreRejected) {
  MemoryWalStorage standby_store;
  StandbyReplica replica("s", &standby_store);

  AppendBatch batch;
  batch.stream = "s";
  batch.epoch = 1;
  batch.base_seq = 0;
  batch.records = 1;
  batch.bytes = Wal::encode_frame(WalRecord::Type::kRecord, "payload");
  batch.crc = crc32(batch.bytes);

  AppendBatch damaged = batch;
  damaged.bytes[damaged.bytes.size() - 1] ^= 0x01;
  EXPECT_EQ(replica.apply_append(damaged).status().code(),
            StatusCode::kInvalidArgument);

  AppendBatch wrong_crc = batch;
  wrong_crc.crc ^= 0xDEADBEEF;
  EXPECT_EQ(replica.apply_append(wrong_crc).status().code(),
            StatusCode::kInvalidArgument);

  AppendBatch gap = batch;
  gap.base_seq = 7;
  EXPECT_EQ(replica.apply_append(gap).status().code(),
            StatusCode::kFailedPrecondition);

  EXPECT_TRUE(standby_store.bytes().empty());  // nothing damaged got in
  EXPECT_TRUE(replica.apply_append(batch).is_ok());  // clean batch still lands
}

TEST(Replication, StaleEpochIsFencedWithLeaderHint) {
  MemoryWalStorage standby_store;
  StandbyReplica replica("jobmon", &standby_store);

  AppendBatch newer;
  newer.stream = "jobmon";
  newer.epoch = 2;
  newer.base_seq = 0;
  newer.records = 1;
  newer.bytes = Wal::encode_frame(WalRecord::Type::kRecord, "new-reign");
  newer.crc = crc32(newer.bytes);
  newer.leader_host = "10.0.0.2";
  newer.leader_port = 8443;
  ASSERT_TRUE(replica.apply_append(newer).is_ok());

  AppendBatch stale;
  stale.stream = "jobmon";
  stale.epoch = 1;
  stale.base_seq = 1;
  stale.records = 1;
  stale.bytes = Wal::encode_frame(WalRecord::Type::kRecord, "zombie");
  stale.crc = crc32(stale.bytes);
  const auto rejected = replica.apply_append(stale);
  EXPECT_EQ(rejected.status().code(), StatusCode::kNotPrimary);
  EXPECT_NE(rejected.status().message().find("leader=10.0.0.2:8443"),
            std::string::npos);
  EXPECT_EQ(replica.stale_epoch_rejections(), 1u);
  EXPECT_EQ(standby_store.bytes(), newer.bytes);  // zombie write kept out
}

TEST(Replication, DeposedShipperStopsAcceptingWrites) {
  MemoryWalStorage standby_store;
  StandbyReplica replica("s", &standby_store);
  LocalShipperTransport transport(&replica);
  LogShipper shipper("s", {});
  shipper.add_standby(&transport);
  shipper.set_epoch(1);

  bool deposed_fired = false;
  shipper.set_on_deposed([&] { deposed_fired = true; });

  ASSERT_TRUE(
      shipper.ship_append(Wal::encode_frame(WalRecord::Type::kRecord, "ok")).is_ok());
  ASSERT_TRUE(replica.promote(2).is_ok());  // a new primary took over

  const Status fenced =
      shipper.ship_append(Wal::encode_frame(WalRecord::Type::kRecord, "zombie"));
  EXPECT_EQ(fenced.code(), StatusCode::kNotPrimary);
  EXPECT_TRUE(shipper.deposed());
  EXPECT_TRUE(deposed_fired);
  // Every later write is refused locally, before even reaching a standby.
  EXPECT_EQ(shipper.ship_append(Wal::encode_frame(WalRecord::Type::kRecord, "again"))
                .code(),
            StatusCode::kNotPrimary);
}

TEST(Replication, ReplicationLagGaugeTracksUnackedTail) {
  telemetry::MetricsRegistry metrics;
  MemoryWalStorage standby_store;
  StandbyReplica replica("est", &standby_store);
  LocalShipperTransport transport(&replica);
  ShipperOptions options;
  options.mode = ReplicationMode::kAsync;
  options.batch_max_records = 100;
  options.metrics = &metrics;
  LogShipper shipper("est", options);
  shipper.add_standby(&transport);
  shipper.set_epoch(3);

  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(shipper.ship_append(Wal::encode_frame(WalRecord::Type::kRecord, "x"))
                    .is_ok());
  }
  auto snap = metrics.snapshot();
  EXPECT_EQ(snap.gauges.at("ha.est.replication_lag"), 4);
  EXPECT_EQ(snap.gauges.at("ha.est.epoch"), 3);

  ASSERT_TRUE(shipper.flush().is_ok());
  snap = metrics.snapshot();
  EXPECT_EQ(snap.gauges.at("ha.est.replication_lag"), 0);
}

TEST(Replication, SteeringJournalLinesSurviveFailover) {
  steering::MemoryJournalSink primary_sink;
  MemoryWalStorage standby_store;
  StandbyReplica replica("steering", &standby_store);
  LocalShipperTransport transport(&replica);
  LogShipper shipper("steering", {});
  shipper.add_standby(&transport);
  shipper.set_epoch(1);
  ha::ReplicatedJournalSink replicated(&primary_sink, &shipper);

  std::vector<std::string> lines = {
      "v1 watch task=t1 site=site-a",
      "v1 place task=t1 site=site-a node=n0",
      "v1 move task=t1 from=site-a to=site-b",
  };
  for (const auto& line : lines) ASSERT_TRUE(replicated.append(line).is_ok());

  // The primary's own sink saw every line...
  EXPECT_EQ(primary_sink.lines(), lines);
  // ...and the standby log decodes back to the identical sequence.
  auto recovered = ha::journal_lines_from_log(standby_store.bytes());
  ASSERT_TRUE(recovered.is_ok());
  EXPECT_EQ(recovered.value(), lines);
  // The recovered lines parse as journal records (what restore_from_journal
  // folds over on the promoted standby).
  auto parsed = steering::parse_journal(recovered.value());
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(parsed.value().size(), lines.size());
}

// The flagship: kill the jobmon primary mid-workload with replication over
// live TCP, and drive detector -> supervisor -> promotion on a virtual
// clock. The promoted standby must hold every acknowledged write (oracle
// byte-equality) within 2x the detector's death TTL, and the revived old
// primary must be fenced.
TEST(FailoverChaos, JobmonPrimaryKilledMidWorkloadOverLiveTcp) {
  WallClock wall;
  telemetry::MetricsRegistry metrics;

  // Standby host: serves ha.* over real TCP.
  MemoryWalStorage standby_store;
  StandbyReplica replica("jobmon", &standby_store);
  ha::StandbySet standbys;
  standbys.add(&replica);
  clarens::HostOptions standby_options;
  standby_options.require_auth = false;
  clarens::ClarensHost standby_host("standby", wall, standby_options);
  ha::register_ha_methods(standby_host, standbys);
  auto standby_port = standby_host.serve(0);
  ASSERT_TRUE(standby_port.is_ok());

  // Arbiter registry + supervision plane run on a virtual clock so the
  // failover timeline is deterministic.
  ManualClock arbiter_clock;
  const SimDuration beat = from_millis(150);
  const SimDuration death_ttl = 3 * beat;  // dead_after_missed * interval
  clarens::RegistryOptions registry_options;
  registry_options.default_ttl = death_ttl;
  clarens::ServiceRegistry registry("arbiter", &arbiter_clock, registry_options);

  // Primary: DBManager whose WAL replicates synchronously over TCP.
  auto primary_lease = registry.acquire_primary("jobmon", death_ttl);
  ASSERT_TRUE(primary_lease.is_ok());
  EXPECT_EQ(primary_lease.value().epoch, 1u);

  rpc::RpcClient ship_client("127.0.0.1", standby_port.value());
  ha::RpcShipperTransport transport(&ship_client, /*deadline_ms=*/5000);
  ShipperOptions ship_options;
  ship_options.mode = ReplicationMode::kSync;
  ship_options.leader_host = "127.0.0.1";
  ship_options.leader_port = 7001;  // the primary's (nominal) service port
  ship_options.metrics = &metrics;
  LogShipper shipper("jobmon", ship_options);
  shipper.add_standby(&transport);
  shipper.set_epoch(primary_lease.value().epoch);

  MemoryWalStorage primary_store;
  ReplicatedWalStorage replicated(&primary_store, &shipper);
  Wal primary_wal(&replicated);
  jobmon::DBManager primary(nullptr, &primary_wal);
  jobmon::DBManager oracle(nullptr, nullptr);  // mirrors acknowledged writes

  supervision::FailureDetectorOptions detector_options;
  detector_options.heartbeat_interval = beat;
  detector_options.suspect_after_missed = 1;
  detector_options.dead_after_missed = 3;
  supervision::FailureDetector detector(arbiter_clock, detector_options);
  detector.watch("jobmon-primary");

  supervision::SupervisorOptions supervisor_options;
  supervisor_options.restart_backoff =
      RetryPolicy{/*max_attempts=*/20, /*initial_backoff_ms=*/25,
                  /*backoff_multiplier=*/1.5, /*max_backoff_ms=*/100,
                  /*jitter_fraction=*/0.0, /*jitter_seed=*/1};
  supervision::Supervisor supervisor(arbiter_clock, supervisor_options);
  supervisor.attach(detector);

  // The promotion recipe the supervisor runs when the primary dies.
  Wal standby_wal(&standby_store);
  jobmon::DBManager standby_db(nullptr, &standby_wal);
  auto role = std::make_shared<ha::PrimaryRole>();
  ha::PromotionOptions promotion;
  promotion.registry = &registry;
  promotion.service = "jobmon";
  promotion.self.name = "jobmon";
  promotion.self.host = "127.0.0.1";
  promotion.self.port = standby_port.value();
  promotion.lease_ttl = death_ttl;
  promotion.replica = &replica;
  promotion.replay = [&] { return standby_db.recover(); };
  promotion.role = role;
  promotion.metrics = &metrics;
  promotion.clock = &arbiter_clock;
  bool promoted = false;
  supervisor.manage(ha::make_promotion_recipe("jobmon-primary", promotion,
                                              [&](const ha::Promotion&) {
                                                promoted = true;
                                              }));

  // Workload: 25 acknowledged updates, heartbeating as it goes.
  for (int i = 0; i < 25; ++i) {
    const std::string id = "t" + std::to_string(i);
    const auto info = make_task(id, 0.04 * i);
    primary.update(id, info, "site-a", from_seconds(i));
    oracle.update(id, info, "site-a", from_seconds(i));
    detector.heartbeat("jobmon-primary");
    arbiter_clock.advance_by(from_millis(40));
    ASSERT_TRUE(registry.renew_primary("jobmon", primary_lease.value().lease_id).is_ok());
  }
  ASSERT_EQ(shipper.acked_seq(), shipper.next_seq());  // sync: all durable

  // CRASH: the primary stops mid-workload (no more beats, no renewals).
  const SimTime crash_at = arbiter_clock.now();
  const SimDuration budget = 2 * death_ttl;  // promotion must land in this

  SimTime promoted_at = 0;
  while (arbiter_clock.now() - crash_at < budget) {
    arbiter_clock.advance_by(from_millis(25));
    detector.check();
    supervisor.tick();
    registry.sweep();
    if (promoted) {
      promoted_at = arbiter_clock.now();
      break;
    }
  }
  ASSERT_TRUE(promoted) << "standby not promoted within 2x detector TTL";
  EXPECT_LE(promoted_at - crash_at, budget);

  // Zero acknowledged writes lost: recovered state byte-equal to the oracle.
  EXPECT_EQ(standby_db.export_state(), oracle.export_state());
  EXPECT_EQ(standby_db.size(), 25u);
  EXPECT_EQ(registry.primary_epoch("jobmon"), 2u);
  EXPECT_TRUE(role->is_primary());
  EXPECT_EQ(role->epoch(), 2u);

  // Clients re-resolve to the standby's address.
  auto resolved = registry.lookup("jobmon");
  ASSERT_TRUE(resolved.is_ok());
  EXPECT_EQ(resolved.value().port, standby_port.value());

  // The revived old primary is fenced on every path:
  // 1. its replicated writes are rejected with NOT_PRIMARY...
  const std::size_t standby_bytes_before = standby_store.bytes().size();
  const Status zombie_write = shipper.ship_append(
      Wal::encode_frame(WalRecord::Type::kRecord, "zombie-after-failover"));
  EXPECT_EQ(zombie_write.code(), StatusCode::kNotPrimary);
  EXPECT_TRUE(shipper.deposed());
  EXPECT_GE(replica.stale_epoch_rejections(), 1u);
  EXPECT_EQ(standby_store.bytes().size(), standby_bytes_before);  // unchanged
  // 2. ...and its lease heartbeat fails (the lease moved on).
  EXPECT_FALSE(registry.renew_primary("jobmon", primary_lease.value().lease_id).is_ok());

  // Promotion telemetry landed.
  auto snap = metrics.snapshot();
  EXPECT_EQ(snap.histograms.at("ha.promotion_ms").count, 1u);
  EXPECT_EQ(snap.gauges.at("ha.jobmon.epoch"), 2);

  standby_host.stop();
}

// Estimator store failover over live TCP, including a mid-workload WAL
// compaction (snapshot shipment) and erases.
TEST(FailoverChaos, EstimatorStoreFailsOverByteEqual) {
  WallClock wall;
  MemoryWalStorage standby_store;
  StandbyReplica replica("estimates", &standby_store);
  ha::StandbySet standbys;
  standbys.add(&replica);
  clarens::HostOptions host_options;
  host_options.require_auth = false;
  clarens::ClarensHost standby_host("standby", wall, host_options);
  ha::register_ha_methods(standby_host, standbys);
  auto port = standby_host.serve(0);
  ASSERT_TRUE(port.is_ok());

  rpc::RpcClient ship_client("127.0.0.1", port.value());
  ha::RpcShipperTransport transport(&ship_client, 5000);
  LogShipper shipper("estimates", {});
  shipper.add_standby(&transport);
  shipper.set_epoch(1);

  MemoryWalStorage primary_store;
  ReplicatedWalStorage replicated(&primary_store, &shipper);
  Wal wal(&replicated);
  estimators::EstimateDatabase primary(&wal);
  estimators::EstimateDatabase oracle;

  for (int i = 0; i < 30; ++i) {
    const std::string id = "t" + std::to_string(i);
    primary.put(id, 3.5 * i);
    oracle.put(id, 3.5 * i);
    if (i == 15) {
      ASSERT_TRUE(primary.save_snapshot().is_ok());  // ships a snapshot
    }
    if (i % 7 == 0 && i > 0) {
      primary.erase("t" + std::to_string(i - 1));
      oracle.erase("t" + std::to_string(i - 1));
    }
  }

  // CRASH + promote: replay the standby's log.
  Wal standby_wal(&standby_store);
  estimators::EstimateDatabase promoted(&standby_wal);
  ASSERT_TRUE(promoted.recover().is_ok());
  EXPECT_EQ(promoted.export_state(), oracle.export_state());
  ASSERT_TRUE(replica.promote(2).is_ok());

  // The old primary's next put is refused end-to-end over TCP.
  const Status fenced =
      shipper.ship_append(Wal::encode_frame(WalRecord::Type::kRecord, "put zombie 1"));
  EXPECT_EQ(fenced.code(), StatusCode::kNotPrimary);

  standby_host.stop();
}

// A client holding the old primary's address follows the NOT_PRIMARY
// leader hint to the new primary without charging the breaker.
TEST(FailoverChaos, ClientFollowsNotPrimaryLeaderHintOverTcp) {
  WallClock wall;

  clarens::HostOptions open_host;
  open_host.require_auth = false;

  // New primary: answers kv.put.
  clarens::ClarensHost new_primary("new-primary", wall, open_host);
  auto new_role = std::make_shared<ha::PrimaryRole>();
  new_role->make_primary(2);
  ha::install_fencing(new_primary.dispatcher(), new_role, {"kv.put", "kv.del"});
  new_primary.dispatcher().register_method(
      "kv.put", [](const rpc::Array&, const rpc::CallContext&) -> Result<rpc::Value> {
        return rpc::Value(std::string("stored-by-new-primary"));
      });
  auto new_port = new_primary.serve(0);
  ASSERT_TRUE(new_port.is_ok());

  // Deposed old primary: same method, fenced, hinting at the new one.
  clarens::ClarensHost old_primary("old-primary", wall, open_host);
  auto old_role = std::make_shared<ha::PrimaryRole>();
  old_role->depose(ha::format_leader_hint("127.0.0.1", new_port.value()));
  ha::install_fencing(old_primary.dispatcher(), old_role, {"kv.put", "kv.del"});
  old_primary.dispatcher().register_method(
      "kv.put", [](const rpc::Array&, const rpc::CallContext&) -> Result<rpc::Value> {
        return rpc::Value(std::string("stored-by-old-primary"));
      });
  auto old_port = old_primary.serve(0);
  ASSERT_TRUE(old_port.is_ok());

  // Client still pointing at the old primary first.
  rpc::RpcClient client({{"127.0.0.1", old_port.value()},
                         {"127.0.0.1", new_port.value()}},
                        rpc::Protocol::kXmlRpc, {});
  auto result = client.call("kv.put", {rpc::Value("k"), rpc::Value("v")});
  ASSERT_TRUE(result.is_ok()) << result.status();
  EXPECT_EQ(result.value().as_string(), "stored-by-new-primary");
  EXPECT_EQ(client.stats().not_primary_redirects, 1u);
  EXPECT_EQ(client.stats().failed_calls, 0u);
  // The fault came from a healthy replica: no breaker was charged.
  for (std::size_t i = 0; i < client.endpoint_count(); ++i) {
    EXPECT_EQ(client.breaker_state(i), CircuitBreaker::State::kClosed);
  }

  // Read-only methods are not fenced on a standby.
  old_primary.dispatcher().register_method(
      "kv.get", [](const rpc::Array&, const rpc::CallContext&) -> Result<rpc::Value> {
        return rpc::Value(std::string("stale-but-served"));
      });
  rpc::RpcClient reader("127.0.0.1", old_port.value());
  auto read = reader.call("kv.get", {rpc::Value("k")});
  ASSERT_TRUE(read.is_ok());
  EXPECT_EQ(read.value().as_string(), "stale-but-served");

  // A fenced call with no hint surfaces NOT_PRIMARY to the caller.
  old_role->depose("");
  rpc::RpcClient hintless("127.0.0.1", old_port.value());
  EXPECT_EQ(hintless.call("kv.put", {rpc::Value("k")}).status().code(),
            StatusCode::kNotPrimary);

  old_primary.stop();
  new_primary.stop();
}

TEST(FailoverChaos, PromotionWaitsOutTheOldPrimaryLease) {
  ManualClock clock;
  clarens::RegistryOptions options;
  options.default_ttl = from_millis(500);
  clarens::ServiceRegistry registry("arbiter", &clock, options);

  auto old_lease = registry.acquire_primary("svc");
  ASSERT_TRUE(old_lease.is_ok());
  EXPECT_EQ(old_lease.value().epoch, 1u);

  // While the old lease is live, promotion is refused — that refusal IS the
  // fencing window.
  ha::PromotionOptions promotion;
  promotion.registry = &registry;
  promotion.service = "svc";
  promotion.self.name = "svc";
  promotion.self.host = "127.0.0.1";
  promotion.self.port = 9000;
  EXPECT_EQ(ha::promote_standby(promotion).status().code(),
            StatusCode::kAlreadyExists);

  clock.advance_by(from_millis(501));  // the old lease lapses
  auto won = ha::promote_standby(promotion);
  ASSERT_TRUE(won.is_ok());
  EXPECT_EQ(won.value().lease.epoch, 2u);
  // Epochs stay monotonic across arbitrary churn.
  ASSERT_TRUE(registry.release_primary("svc", won.value().lease.lease_id).is_ok());
  auto third = registry.acquire_primary("svc");
  ASSERT_TRUE(third.is_ok());
  EXPECT_EQ(third.value().epoch, 3u);
}

}  // namespace
}  // namespace gae
